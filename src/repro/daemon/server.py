"""The ``repro serve`` daemon: a persistent HTTP control plane.

One :class:`TuningDaemon` owns the expensive long-lived state — a
:class:`~repro.api.session.TuningSession`, one shared
:class:`~repro.service.cache.TuningCacheSet` every job warms for the
next, and one :class:`~repro.service.shm.SharedArrayStore` arena for
``process``-backend fleets — and exposes it through a stdlib
``ThreadingHTTPServer``:

=========================== ==========================================
``POST /v1/plans``          submit a plan (JSON or TOML body) -> job
``GET  /v1/jobs``           list jobs (``?tenant=``, ``?state=``)
``GET  /v1/jobs/{id}``      one job's status
``GET  /v1/jobs/{id}/events`` the job's event ledger as NDJSON;
                            ``?follow=1`` streams live (chunked) until
                            the job reaches a terminal state
``GET  /metrics``           Prometheus text exposition
``GET  /healthz``           liveness
``POST /v1/shutdown``       graceful drain + exit
=========================== ==========================================

Submissions pass through :class:`~repro.daemon.queue.TenantQueue`
admission (429 when a tenant's slice is full, 503 while draining) and a
single dispatcher thread executes jobs one at a time — the concurrency
knob is the *plan's* backend (thread/process fleets), not competing
sessions fighting over cores.

Durability: every accepted submission and state transition is fsynced
into the store manifest, and every job event is fsynced into the job's
own JSONL ledger *before* followers see it — so a SIGKILL loses at most
the in-flight campaign, and ``repro serve --resume auto`` restarts by
replaying finished jobs bit-identically and re-running only the cells
the kill lost (the partial ledger is the resume log).

Shutdown (SIGTERM/SIGINT or ``POST /v1/shutdown``) drains the in-flight
job through the service's crash-safe drain loop, leaves queued jobs in
the manifest for the next start, snapshots ``--cache-path`` if given,
and closes the shared-memory arena so ``/dev/shm`` is left clean.
"""

from __future__ import annotations

import dataclasses
import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.api.events import EventBus, JsonlRecorder, MetricsAggregator
from repro.api.plans import PlanError, plan_from_dict
from repro.daemon.jobs import JOB_STATES, JobStore
from repro.daemon.metrics_endpoint import render_metrics
from repro.daemon.queue import QueueDraining, QueueFull, TenantQueue
from repro.faults.plane import fire as _fire

__all__ = ["TuningDaemon"]

#: How long the dispatcher sleeps between queue polls while idle; also
#: bounds how quickly a stop request is noticed.
_POLL_SECONDS = 0.25

#: The HTTP accept loop's select timeout.  ``httpd.shutdown()`` blocks
#: until the loop next wakes, so this bounds stop latency; an idle
#: select wakeup this often costs nothing measurable.
_HTTP_POLL_SECONDS = 0.02


class TuningDaemon:
    """The long-lived service behind ``repro serve``.

    Parameters mirror the CLI flags: ``ledger_dir`` is where the
    manifest and per-job ledgers live (and what ``--resume auto``
    replays), ``cache_path`` optionally round-trips the shared cache
    plane through a snapshot across daemon restarts, and ``port=0``
    binds an ephemeral port (read :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        ledger_dir: str | Path = "daemon-ledger",
        max_queue_depth: int = 16,
        cache_path: str | None = None,
        resume: str | None = None,
        fsync: bool = True,
        use_shm: bool = True,
        spool_dir: "str | Path | None" = None,
    ) -> None:
        from repro.service.cache import TuningCacheSet

        self.host = host
        self._requested_port = port
        self.ledger_dir = Path(ledger_dir)
        self.cache_path = cache_path
        self.resume = resume
        self.fsync = fsync
        #: Default shared work spool for ``backend="distributed"`` plans
        #: submitted without their own ``spool_dir`` — the daemon then
        #: dispatches them to whatever worker agents drain it.
        self.spool_dir = None if spool_dir is None else str(spool_dir)
        self.store = JobStore(self.ledger_dir, fsync=fsync)
        self.queue = TenantQueue(max_depth=max_queue_depth)
        self.metrics = MetricsAggregator()
        if cache_path is not None and Path(cache_path).exists():
            self.caches = TuningCacheSet.load(cache_path)
        else:
            self.caches = TuningCacheSet()
        self.shm_store = None
        if use_shm:
            from repro.service.shm import SharedArrayStore

            self.shm_store = SharedArrayStore()
        from repro.api.session import TuningSession

        self.session = TuningSession(
            caches=self.caches, shm_store=self.shm_store
        )
        self._admission = threading.Lock()
        self._stop = threading.Event()
        self._started_at: float | None = None
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self._dispatcher: threading.Thread | None = None
        self._stopped = False

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Recover the ledger (``--resume auto``), bind, begin serving."""
        if self.resume == "auto":
            for job in self.store.recover():
                self.store.mark(job, "queued")
                self.queue.push(job, force=True)
        self._started_at = time.monotonic()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": _HTTP_POLL_SECONDS},
            name="repro-serve-http",
            daemon=True,
        )
        self._http_thread.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    def request_stop(self) -> None:
        """Ask the daemon to drain and exit; safe from signal handlers."""
        self._stop.set()

    def stop(self) -> None:
        """Drain the in-flight job, stop serving, release every resource.

        Idempotent.  Queued-but-never-started jobs stay recorded as
        ``queued`` in the manifest — the next ``--resume auto`` start
        re-enqueues them.
        """
        if self._stopped:
            return
        self._stopped = True
        self._stop.set()
        self.queue.close()
        if self._dispatcher is not None:
            self._dispatcher.join()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
        if self.cache_path is not None:
            self.caches.save(self.cache_path)
        if self.shm_store is not None:
            self.shm_store.close()

    def serve(self, on_ready=None) -> None:
        """Run until SIGTERM/SIGINT (or ``POST /v1/shutdown``), then drain.

        The blocking CLI entry point.  Signal handlers only set a flag —
        the drain/teardown sequence runs here on the main thread, never
        inside a handler frame.  ``on_ready(daemon)`` fires once the
        socket is bound (the CLI prints the resolved URL there).
        """
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(
                    signum, lambda *_: self.request_stop()
                )
            except ValueError:  # not the main thread (embedded use)
                pass
        self.start()
        if on_ready is not None:
            on_ready(self)
        try:
            while not self._stop.wait(timeout=_POLL_SECONDS):
                pass
        finally:
            self.stop()
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    # -- dispatch -------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.pop(timeout=_POLL_SECONDS)
            if job is None:
                continue
            if self._stop.is_set():
                # Popped in the race with shutdown: leave it for the next
                # start — its manifest state is still "queued".
                break
            self._run_job(job)

    def _run_job(self, job) -> None:
        from repro.service import CampaignExecutionError

        self.store.mark(job, "running")
        recorder = JsonlRecorder(job.ledger_path, fsync=self.fsync)

        def buffer_line(event) -> None:
            # The exact bytes the recorder just fsynced (same dump call),
            # so live followers and post-restart replays read identical
            # lines.
            self.store.append_event(
                job, json.dumps(event.to_dict(), sort_keys=True)
            )

        bus = EventBus(recorder, buffer_line, self.metrics)
        try:
            self.session.run(job.plan, bus=bus, resume=job.resume)
        except CampaignExecutionError as error:
            self.store.mark(job, "failed", error=str(error))
        except Exception as error:  # noqa: BLE001 — job isolation: the
            # daemon outlives any single plan's failure.
            self.store.mark(job, "failed", error=f"{type(error).__name__}: {error}")
        else:
            self.store.mark(job, "finished")
        finally:
            recorder.close()

    # -- submissions ----------------------------------------------------

    def submit(self, plan_data: dict, tenant: str = "default", priority: int = 0):
        """Validate, record and enqueue one plan; return its :class:`Job`.

        Raises :class:`~repro.api.plans.PlanError` (bad plan),
        :class:`~repro.daemon.queue.QueueFull` (tenant over its slice) or
        :class:`~repro.daemon.queue.QueueDraining` (shutting down).
        """
        plan = plan_from_dict(plan_data)
        if (
            self.spool_dir is not None
            and getattr(plan, "backend", None) == "distributed"
            and getattr(plan, "spool_dir", None) is None
        ):
            # Distributed jobs without a spool of their own execute on
            # the daemon's standing fleet.
            plan = dataclasses.replace(plan, spool_dir=self.spool_dir)
        with self._admission:
            if self.queue.draining or self._stop.is_set():
                raise QueueDraining()
            depth = self.queue.depth(tenant)
            if depth >= self.queue.max_depth:
                raise QueueFull(tenant, depth)
            job = self.store.submit(plan, plan_data, tenant, priority)
            self.queue.push(job, force=True)  # admission held the lock
        return job

    # -- observability --------------------------------------------------

    def metrics_snapshot(self) -> dict:
        from repro.service.cache import merge_cache_stats

        counts = self.metrics.counts
        return {
            "jobs": self.store.counts_by_state(),
            "queue_depths": self.queue.depths(),
            "tenants_submitted": dict(self.store.submitted_per_tenant),
            "campaigns_finished": counts.get("CampaignFinished", 0),
            "campaigns_failed": counts.get("CampaignFailed", 0),
            "steps": sum(self.metrics.steps.values()),
            "reconfigurations": sum(self.metrics.reconfigurations.values()),
            "events": self.metrics.n_events,
            "cache_stats": merge_cache_stats(self.caches.stats()),
            "uptime_seconds": (
                time.monotonic() - self._started_at
                if self._started_at is not None else 0.0
            ),
        }


# ----------------------------------------------------------------------
# the HTTP surface
# ----------------------------------------------------------------------

def _make_handler(daemon: TuningDaemon):
    """A request-handler class bound to one daemon instance."""

    class Handler(BaseHTTPRequestHandler):
        # HTTP/1.1 buys keep-alive and, crucially, chunked transfer
        # encoding for the live event stream.
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        def log_message(self, fmt, *args):  # noqa: A003 — quiet by design
            pass

        # -- plumbing ---------------------------------------------------

        def _json(self, status: int, payload: dict, headers=()) -> None:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in headers:
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _text(self, status: int, body: str, content_type: str) -> None:
            raw = body.encode()
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)

        def _error(self, status: int, message: str) -> None:
            self._json(status, {"error": message})

        def _read_body(self) -> bytes:
            length = int(self.headers.get("Content-Length") or 0)
            return self.rfile.read(length) if length else b""

        # -- routes -----------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 — http.server API
            url = urlsplit(self.path)
            query = parse_qs(url.query)
            parts = [part for part in url.path.split("/") if part]
            if url.path == "/healthz":
                self._json(200, {
                    "status": "draining" if daemon.queue.draining else "ok",
                    "jobs": daemon.store.counts_by_state(),
                })
            elif url.path == "/metrics":
                self._text(
                    200, render_metrics(daemon.metrics_snapshot()),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif parts[:2] == ["v1", "jobs"] and len(parts) == 2:
                self._list_jobs(query)
            elif parts[:2] == ["v1", "jobs"] and len(parts) == 3:
                self._job_status(parts[2])
            elif (
                parts[:2] == ["v1", "jobs"]
                and len(parts) == 4
                and parts[3] == "events"
            ):
                self._job_events(parts[2], query)
            else:
                self._error(404, f"no such resource: {url.path}")

        def do_POST(self) -> None:  # noqa: N802 — http.server API
            url = urlsplit(self.path)
            if url.path == "/v1/plans":
                self._submit_plan(url)
            elif url.path == "/v1/shutdown":
                daemon.request_stop()
                self._json(202, {"status": "draining"})
            else:
                self._error(404, f"no such resource: {url.path}")

        # -- route bodies -----------------------------------------------

        def _submit_plan(self, url) -> None:
            query = parse_qs(url.query)
            tenant = query.get("tenant", ["default"])[0]
            try:
                priority = int(query.get("priority", ["0"])[0])
            except ValueError:
                self._error(400, "priority must be an integer")
                return
            body = self._read_body()
            content_type = (self.headers.get("Content-Type") or "").lower()
            try:
                if "toml" in content_type:
                    import tomllib

                    data = tomllib.loads(body.decode())
                else:
                    data = json.loads(body.decode())
            except Exception as error:  # noqa: BLE001 — operator input
                self._error(400, f"unparseable plan body: {error}")
                return
            if not isinstance(data, dict):
                self._error(400, "plan body must be a JSON/TOML object")
                return
            try:
                job = daemon.submit(data, tenant=tenant, priority=priority)
            except PlanError as error:
                self._error(400, str(error))
            except QueueFull as error:
                self._error(429, str(error))
            except QueueDraining as error:
                self._error(503, str(error))
            else:
                self._json(
                    201, job.to_dict(),
                    headers=(("Location", f"/v1/jobs/{job.id}"),),
                )

        def _list_jobs(self, query) -> None:
            tenant = query.get("tenant", [None])[0]
            state = query.get("state", [None])[0]
            if state is not None and state not in JOB_STATES:
                self._error(
                    400, f"state must be one of {list(JOB_STATES)}"
                )
                return
            jobs = [
                job.to_dict()
                for job in daemon.store.jobs()
                if (tenant is None or job.tenant == tenant)
                and (state is None or job.state == state)
            ]
            self._json(200, {"jobs": jobs})

        def _job_status(self, job_id: str) -> None:
            job = daemon.store.get(job_id)
            if job is None:
                self._error(404, f"no such job: {job_id}")
            else:
                self._json(200, job.to_dict())

        def _job_events(self, job_id: str, query) -> None:
            job = daemon.store.get(job_id)
            if job is None:
                self._error(404, f"no such job: {job_id}")
                return
            follow = query.get("follow", ["0"])[0] not in ("0", "", "false")
            if not follow:
                with job.condition:
                    lines = list(job.events)
                body = "".join(line + "\n" for line in lines)
                self._text(200, body, "application/x-ndjson")
                return
            # Live stream: chunked NDJSON until the job goes terminal.
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            sent = 0
            try:
                while True:
                    with job.condition:
                        while len(job.events) <= sent and not job.terminal:
                            job.condition.wait(timeout=_POLL_SECONDS)
                            if daemon._stop.is_set() and not job.terminal:
                                break
                        fresh = job.events[sent:]
                        terminal = job.terminal
                        stopping = daemon._stop.is_set()
                    for line in fresh:
                        # An injected ConnectionResetError lands in the
                        # handler below exactly like a real mid-stream
                        # hang-up: the follower drops, the job survives.
                        _fire("daemon.server.stream.drop")
                        payload = (line + "\n").encode()
                        self.wfile.write(
                            f"{len(payload):X}\r\n".encode()
                            + payload + b"\r\n"
                        )
                    sent += len(fresh)
                    if fresh:
                        self.wfile.flush()
                    if (terminal or stopping) and sent >= len(job.events):
                        break
                self.wfile.write(b"0\r\n\r\n")
            except (BrokenPipeError, ConnectionResetError):
                pass  # the follower hung up; the job keeps running

    return Handler
