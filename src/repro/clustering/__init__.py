"""GED-based clustering of dataflow DAGs (paper §IV-C).

K-means over graph edit distance with *similarity center* updates
(Definition 2) accelerated by AStar+-LSa threshold verification, plus the
elbow method (§V-A) for choosing the number of clusters.
"""

from repro.clustering.center import similarity_center
from repro.clustering.kmeans import ClusteringResult, GEDKMeans
from repro.clustering.elbow import choose_k_elbow
from repro.clustering.quality import (
    ClusterSummaryRow,
    cluster_summary,
    mean_silhouette,
    silhouette_scores,
    within_cluster_dispersion,
)

__all__ = [
    "ClusterSummaryRow",
    "ClusteringResult",
    "GEDKMeans",
    "choose_k_elbow",
    "cluster_summary",
    "mean_silhouette",
    "silhouette_scores",
    "similarity_center",
    "within_cluster_dispersion",
]
