"""Elbow method for choosing k (paper §V-A, citing Ketchen & Shook).

Runs GED k-means for k = 1..k_max, records inertia, and picks the elbow as
the point of maximum distance to the chord between the curve's endpoints
(a standard parameter-free formulation of the visual elbow heuristic).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.clustering.center import DEFAULT_TAU
from repro.clustering.kmeans import GEDKMeans
from repro.ged.search import GEDCache


def choose_k_elbow(
    graphs: Sequence,
    k_max: int = 8,
    tau: float = DEFAULT_TAU,
    seed: int | None = None,
    cache: GEDCache | None = None,
) -> tuple[int, list[float]]:
    """Return (best k, inertia curve for k = 1..k_max)."""
    if k_max < 1:
        raise ValueError("k_max must be >= 1")
    cache = cache if cache is not None else GEDCache()
    inertias: list[float] = []
    upper = min(k_max, len({g.structural_signature() for g in graphs}))
    for k in range(1, upper + 1):
        result = GEDKMeans(k, tau=tau, seed=seed, cache=cache).fit(graphs)
        inertias.append(result.inertia)
    if len(inertias) <= 2:
        return len(inertias), inertias

    curve = np.asarray(inertias, dtype=float)
    ks = np.arange(1, len(curve) + 1, dtype=float)
    # Normalise both axes, then measure distance to the first-last chord.
    span = curve[0] - curve[-1]
    if span <= 0:
        return 1, inertias
    x = (ks - ks[0]) / (ks[-1] - ks[0])
    y = (curve - curve[-1]) / span
    # Chord from (0, 1) to (1, 0): distance ~ |x + y - 1| / sqrt(2).
    distances = np.abs(x + y - 1.0)
    best_k = int(np.argmax(distances)) + 1
    return best_k, inertias
