"""K-means over dataflow DAGs with GED distances (paper §IV-C).

The three textbook steps — random initialisation, nearest-centroid
assignment, centroid update — with the paper's twist: graphs cannot be
averaged, so the update step recomputes each cluster's *similarity center*
(Definition 2) via AStar+-LSa-backed similarity search.

Execution histories contain many structurally identical DAGs (the same
query deployed repeatedly), so the implementation deduplicates by
structural signature and clusters weighted unique graphs; results are
mapped back to the full input.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.clustering.center import DEFAULT_TAU, similarity_center
from repro.ged.search import GEDCache
from repro.utils.rng import seeded_rng


@dataclass
class ClusteringResult:
    """Outcome of GED k-means over a set of dataflow DAGs."""

    graphs: list                     # the original input graphs
    assignments: list[int]           # cluster id per input graph
    center_graphs: list              # one representative DAG per cluster
    inertia: float                   # sum of squared GED to assigned center
    n_iterations: int
    cache: GEDCache

    @property
    def n_clusters(self) -> int:
        return len(self.center_graphs)

    def members(self, cluster: int) -> list[int]:
        """Indices of input graphs in ``cluster``."""
        return [i for i, c in enumerate(self.assignments) if c == cluster]

    def predict(self, graph) -> int:
        """Nearest cluster for a new DAG (Algorithm 2, line 1).

        Delegates to the cache's bound-pruned ``nearest`` when it has one
        (:class:`~repro.ged.search.GEDCache` and the service's shared cache
        both do): admissible lower bounds skip the exact A*-LSa search for
        centers that provably cannot win, and the result is bit-identical
        to the exhaustive argmin below.
        """
        nearest = getattr(self.cache, "nearest", None)
        if nearest is not None:
            return nearest(graph, self.center_graphs)
        distances = [
            self.cache.distance(graph, center) for center in self.center_graphs
        ]
        return min(range(len(distances)), key=distances.__getitem__)


class GEDKMeans:
    """K-means clustering of dataflow DAGs under graph edit distance."""

    def __init__(
        self,
        n_clusters: int,
        tau: float = DEFAULT_TAU,
        max_iterations: int = 20,
        n_init: int = 3,
        seed: int | None = None,
        cache: GEDCache | None = None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        self.n_clusters = n_clusters
        self.tau = tau
        self.max_iterations = max_iterations
        self.n_init = n_init
        self._rng = seeded_rng(seed)
        self.cache = cache if cache is not None else GEDCache()

    def fit(self, graphs: Sequence) -> ClusteringResult:
        """Cluster ``graphs``: best of ``n_init`` random restarts."""
        if not graphs:
            raise ValueError("cannot cluster an empty dataset")
        best: ClusteringResult | None = None
        for _ in range(self.n_init):
            candidate = self._fit_once(graphs)
            if best is None or candidate.inertia < best.inertia:
                best = candidate
        assert best is not None
        return best

    def _fit_once(self, graphs: Sequence) -> ClusteringResult:
        unique, weights, back_refs = self._deduplicate(graphs)
        k = min(self.n_clusters, len(unique))

        center_ids = list(
            self._rng.choice(len(unique), size=k, replace=False)
        )
        assignments = [0] * len(unique)
        n_iterations = 0
        for n_iterations in range(1, self.max_iterations + 1):
            assignments = self._assign(unique, center_ids)
            new_center_ids = self._update_centers(
                unique, weights, assignments, center_ids
            )
            if sorted(new_center_ids) == sorted(center_ids):
                center_ids = new_center_ids
                break
            center_ids = new_center_ids

        assignments = self._assign(unique, center_ids)
        inertia = 0.0
        for index, cluster in enumerate(assignments):
            distance = self.cache.distance(unique[index], unique[center_ids[cluster]])
            inertia += weights[index] * distance * distance

        full_assignments = [assignments[back_refs[i]] for i in range(len(graphs))]
        return ClusteringResult(
            graphs=list(graphs),
            assignments=full_assignments,
            center_graphs=[unique[c] for c in center_ids],
            inertia=inertia,
            n_iterations=n_iterations,
            cache=self.cache,
        )

    # ------------------------------------------------------------------
    # k-means internals
    # ------------------------------------------------------------------

    def _deduplicate(self, graphs: Sequence) -> tuple[list, list[float], list[int]]:
        """Collapse structurally identical graphs into weighted uniques."""
        unique: list = []
        weights: list[float] = []
        index_of: dict[str, int] = {}
        back_refs: list[int] = []
        for graph in graphs:
            signature = graph.structural_signature()
            position = index_of.get(signature)
            if position is None:
                position = len(unique)
                index_of[signature] = position
                unique.append(graph)
                weights.append(0.0)
            weights[position] += 1.0
            back_refs.append(position)
        return unique, weights, back_refs

    def _assign(self, unique: list, center_ids: list[int]) -> list[int]:
        centers = [unique[center] for center in center_ids]
        nearest = getattr(self.cache, "nearest", None)
        if nearest is not None:
            # Bound-pruned assignment: identical cluster ids, fewer exact
            # GED searches (see ClusteringResult.predict).
            return [nearest(graph, centers) for graph in unique]
        assignments = []
        for graph in unique:
            distances = [self.cache.distance(graph, center) for center in centers]
            assignments.append(min(range(len(distances)), key=distances.__getitem__))
        return assignments

    def _update_centers(
        self,
        unique: list,
        weights: list[float],
        assignments: list[int],
        center_ids: list[int],
    ) -> list[int]:
        new_centers: list[int] = []
        for cluster in range(len(center_ids)):
            member_ids = [i for i, c in enumerate(assignments) if c == cluster]
            if not member_ids:
                new_centers.append(self._reseed(unique, assignments, center_ids))
                continue
            members = [unique[i] for i in member_ids]
            member_weights = [weights[i] for i in member_ids]
            local = similarity_center(
                members, tau=self.tau, weights=member_weights, cache=self.cache
            )
            new_centers.append(member_ids[local])
        return new_centers

    def _reseed(self, unique: list, assignments: list[int], center_ids: list[int]) -> int:
        """Replace an empty cluster with the graph farthest from its center."""
        worst_index = 0
        worst_distance = -1.0
        for index, cluster in enumerate(assignments):
            distance = self.cache.distance(unique[index], unique[center_ids[cluster]])
            if distance > worst_distance:
                worst_distance = distance
                worst_index = index
        return worst_index
