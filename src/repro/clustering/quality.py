"""Cluster-quality diagnostics over GED space (extension).

The paper selects k with the elbow method over within-cluster distance;
these diagnostics complete the toolbox a practitioner needs to trust a
clustering before pre-training one encoder per cluster:

* :func:`silhouette_scores` / :func:`mean_silhouette` — the classic
  cohesion-versus-separation score, computed directly on GED (a proper
  metric here, so the silhouette's assumptions hold).
* :func:`within_cluster_dispersion` — mean member-to-center distance per
  cluster, the quantity the elbow method tracks.
* :func:`cluster_summary` — one row per cluster (size, dispersion,
  silhouette) for reports and the CLI.

All functions accept a :class:`~repro.ged.search.GEDCache` so repeated
structures (ubiquitous in execution histories) are measured once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ged.search import GEDCache


def _pairwise(cache: GEDCache, graphs, i: int, j: int) -> float:
    return cache.distance(graphs[i], graphs[j])


def silhouette_scores(
    graphs,
    assignments: list[int],
    cache: GEDCache | None = None,
) -> np.ndarray:
    """Per-graph silhouette values in [-1, 1].

    ``s(i) = (b(i) - a(i)) / max(a(i), b(i))`` with ``a`` the mean GED to
    the graph's own cluster and ``b`` the smallest mean GED to any other
    cluster.  Singleton clusters score 0 by convention.
    """
    if len(graphs) != len(assignments):
        raise ValueError("graphs and assignments must align")
    if len(graphs) == 0:
        raise ValueError("cannot score an empty clustering")
    cache = cache or GEDCache()
    labels = sorted(set(assignments))
    if len(labels) < 2:
        return np.zeros(len(graphs))
    members: dict[int, list[int]] = {label: [] for label in labels}
    for index, label in enumerate(assignments):
        members[label].append(index)

    scores = np.zeros(len(graphs))
    for i, own_label in enumerate(assignments):
        own = [j for j in members[own_label] if j != i]
        if not own:
            scores[i] = 0.0
            continue
        a = float(np.mean([_pairwise(cache, graphs, i, j) for j in own]))
        b = min(
            float(np.mean([_pairwise(cache, graphs, i, j) for j in members[label]]))
            for label in labels
            if label != own_label and members[label]
        )
        denominator = max(a, b)
        scores[i] = 0.0 if denominator == 0 else (b - a) / denominator
    return scores


def mean_silhouette(
    graphs, assignments: list[int], cache: GEDCache | None = None
) -> float:
    """Mean silhouette across all graphs (higher = crisper clustering)."""
    return float(silhouette_scores(graphs, assignments, cache).mean())


def within_cluster_dispersion(
    graphs,
    assignments: list[int],
    centers,
    cache: GEDCache | None = None,
) -> dict[int, float]:
    """Mean member-to-center GED per cluster (the elbow's y-axis)."""
    if len(graphs) != len(assignments):
        raise ValueError("graphs and assignments must align")
    cache = cache or GEDCache()
    sums: dict[int, float] = {}
    counts: dict[int, int] = {}
    for graph, label in zip(graphs, assignments):
        if not 0 <= label < len(centers):
            raise ValueError(f"assignment {label} has no center")
        sums[label] = sums.get(label, 0.0) + cache.distance(graph, centers[label])
        counts[label] = counts.get(label, 0) + 1
    return {label: sums[label] / counts[label] for label in sorted(sums)}


@dataclass(frozen=True)
class ClusterSummaryRow:
    """Quality report line for one cluster."""

    cluster: int
    size: int
    dispersion: float
    silhouette: float


def cluster_summary(
    graphs,
    assignments: list[int],
    centers,
    cache: GEDCache | None = None,
) -> list[ClusterSummaryRow]:
    """Size, dispersion and mean silhouette per cluster."""
    cache = cache or GEDCache()
    dispersion = within_cluster_dispersion(graphs, assignments, centers, cache)
    scores = silhouette_scores(graphs, assignments, cache)
    rows = []
    for label in sorted(dispersion):
        member_scores = [
            scores[i] for i, assigned in enumerate(assignments) if assigned == label
        ]
        rows.append(
            ClusterSummaryRow(
                cluster=label,
                size=len(member_scores),
                dispersion=dispersion[label],
                silhouette=float(np.mean(member_scores)),
            )
        )
    return rows
