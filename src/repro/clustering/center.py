"""Similarity center of a DAG cluster (paper Definition 2).

The true median graph minimises total GED to the cluster but needs all
pairwise exact distances.  The paper's approximation: run a graph
similarity search (Definition 1) from every member and pick the graph that
appears most often in the result sets,

    C_g = sum_{g'} I(g in Sim_{g', tau}),      G_sc = argmax_g C_g.

With symmetric costs ``g in Sim_{g', tau}`` iff ``ged(g, g') <= tau``, so
the appearance count is the number of cluster members within ``tau`` of
``g`` — computable with cheap threshold verifications instead of exact
distances.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.ged.search import GEDCache, similarity_search

#: Paper §V-A: "the distance threshold tau is set to 5".
DEFAULT_TAU = 5.0


def appearance_counts(
    graphs: Sequence,
    tau: float = DEFAULT_TAU,
    weights: Sequence[float] | None = None,
    cache: GEDCache | None = None,
    use_lsa: bool = True,
) -> list[float]:
    """Definition 2 appearance count C_g for every graph of the cluster.

    ``weights`` lets callers collapse duplicate structures (weight = the
    multiplicity of a deduplicated graph); the count of graph g then sums
    the weights of the members whose similarity search returns g.
    """
    if weights is None:
        weights = [1.0] * len(graphs)
    if len(weights) != len(graphs):
        raise ValueError("weights must align with graphs")
    counts = [0.0] * len(graphs)
    for query_index, query in enumerate(graphs):
        matches = similarity_search(query, graphs, tau, cache=cache, use_lsa=use_lsa)
        for match in matches:
            counts[match] += weights[query_index]
    return counts


def similarity_center(
    graphs: Sequence,
    tau: float = DEFAULT_TAU,
    weights: Sequence[float] | None = None,
    cache: GEDCache | None = None,
    use_lsa: bool = True,
) -> int:
    """Index of the cluster's similarity center (argmax appearance count).

    Ties break toward the lower index for determinism.
    """
    if not graphs:
        raise ValueError("cannot compute the center of an empty cluster")
    counts = appearance_counts(graphs, tau, weights=weights, cache=cache, use_lsa=use_lsa)
    best_index = 0
    for index, count in enumerate(counts):
        if count > counts[best_index]:
            best_index = index
    return best_index
