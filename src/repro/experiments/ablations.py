"""Extended ablations beyond the paper's Fig. 11 (DESIGN.md §6).

The paper ablates the prediction layer (Fig. 11a) and the similarity-center
search (Fig. 11b).  DESIGN.md calls out four further load-bearing choices
that this module quantifies, plus the §VII unseen-operator study:

* :func:`run_fuse_ablation` — FUSE placement: parallelism injected once
  after the readout (default) versus at every message-passing step (the
  literal Eq. 3 reading).
* :func:`run_clustering_ablation` — GED clustering versus the §VII
  global-encoder bypass (k = 1).
* :func:`run_warmup_ablation` — Algorithm 2's warm-up dataset T on/off.
* :func:`run_threshold_sweep` — sensitivity to the conservative decision
  threshold of the fine-tuned layer.
* :func:`run_model_zoo` — the Fig. 11a comparison extended with the
  isotonic k-NN model (monotone by construction).
* :func:`run_encoder_ablation` — one-hot versus semantic (embedding-based)
  operator features on an operator kind *held out* of pre-training.

Every study returns plain dataclass rows and has a ``format_*`` printer,
mirroring the per-figure experiment modules.  All use deliberately small
sub-scales: ablations compare variants under identical budgets, so the
budget itself only needs to be large enough to separate them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.history import ExecutionRecord
from repro.core.pretrain import PretrainedStreamTune, pretrain
from repro.core.tuner import StreamTuneTuner
from repro.dataflow.embeddings import SemanticFeatureEncoder
from repro.dataflow.features import FeatureEncoder
from repro.dataflow.operators import OperatorType
from repro.experiments import context
from repro.experiments.campaigns import run_campaign
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.utils.tables import format_table
from repro.utils.timer import Timer

#: Records used by ablation pre-training (kept small on purpose).
ABLATION_HISTORY = {"smoke": 500, "default": 1200, "paper": 3000}

#: Encoder epochs per ablation variant.
ABLATION_EPOCHS = {"smoke": 8, "default": 20, "paper": 40}

#: Rate multipliers driven through ablation tuning trials.
ABLATION_MULTIPLIERS = {"smoke": [3, 10], "default": [3, 7, 10], "paper": [3, 7, 4, 2, 10]}

#: Decision thresholds swept by :func:`run_threshold_sweep`.
THRESHOLDS = (0.2, 0.35, 0.5)

#: Operator kind held out of pre-training by :func:`run_encoder_ablation`.
#: The incremental join appears in only ~2 of 61 corpus queries, so
#: censoring it keeps pre-training representative while its behavioural
#: neighbours (window join, window aggregate) stay abundant — the setting
#: where §VII's semantic transfer can actually be observed.
HELDOUT_TYPE = OperatorType.JOIN


def _ablation_history(scale: ExperimentScale) -> list[ExecutionRecord]:
    limit = ABLATION_HISTORY[scale.name]
    return context.history("flink", scale)[:limit]


def _holdout_split(
    records: list[ExecutionRecord], fraction: float = 0.8
) -> tuple[list[ExecutionRecord], list[ExecutionRecord]]:
    cut = max(1, int(len(records) * fraction))
    return records[:cut], records[cut:]


def _pretrain_variant(
    scale: ExperimentScale,
    records: list[ExecutionRecord],
    *,
    n_clusters: int,
    fuse_per_step: bool = False,
    feature_encoder: FeatureEncoder | None = None,
    seed_offset: int = 0,
) -> PretrainedStreamTune:
    return pretrain(
        records,
        max_parallelism=context.make_engine("flink", scale).max_parallelism,
        n_clusters=n_clusters,
        epochs=ABLATION_EPOCHS[scale.name],
        seed=scale.seed + 40 + seed_offset,
        feature_encoder=feature_encoder,
        fuse_per_step=fuse_per_step,
    )


def _holdout_accuracy(
    model: PretrainedStreamTune, holdout: list[ExecutionRecord]
) -> float:
    """Accuracy of each record's assigned-cluster encoder on that record."""
    n_correct = 0
    n_total = 0
    for record in holdout:
        _, encoder = model.encoder_for(record.flow)
        sample = model.sample_for(record)
        if sample.n_labelled == 0:
            continue
        probabilities = encoder.predict_probabilities(sample, parallelism_aware=True)
        predictions = (probabilities > 0.5)[sample.mask]
        truth = sample.labels[sample.mask] == 1
        n_correct += int((predictions == truth).sum())
        n_total += sample.n_labelled
    return n_correct / max(n_total, 1)


# ----------------------------------------------------------------------
# FUSE placement
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FuseAblationRow:
    variant: str
    train_accuracy: float
    holdout_accuracy: float
    train_seconds: float


def run_fuse_ablation(scale: ExperimentScale | None = None) -> list[FuseAblationRow]:
    """Post-readout FUSE (default) versus per-step FUSE (literal Eq. 3)."""
    scale = scale or resolve_scale()
    train, holdout = _holdout_split(_ablation_history(scale))
    rows = []
    for variant, per_step in (("post-readout", False), ("per-step", True)):
        with Timer() as timer:
            model = _pretrain_variant(
                scale, train, n_clusters=1, fuse_per_step=per_step, seed_offset=1
            )
        rows.append(
            FuseAblationRow(
                variant=variant,
                train_accuracy=model.reports[0].final_accuracy,
                holdout_accuracy=_holdout_accuracy(model, holdout),
                train_seconds=timer.elapsed,
            )
        )
    return rows


# ----------------------------------------------------------------------
# clustering versus global encoder
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ClusteringAblationRow:
    variant: str
    n_clusters: int
    holdout_accuracy: float
    avg_reconfigurations: float
    backpressure_events: int


def run_clustering_ablation(
    scale: ExperimentScale | None = None,
) -> list[ClusteringAblationRow]:
    """GED-clustered encoders versus the §VII single global encoder.

    Both variants pre-train on the same records and then tune the same
    PQP linear query through the same rate changes.
    """
    scale = scale or resolve_scale()
    train, holdout = _holdout_split(_ablation_history(scale))
    query = context.evaluation_queries("flink", scale)["linear"][0]
    multipliers = ABLATION_MULTIPLIERS[scale.name]
    rows = []
    clustered_k = scale.n_clusters or 3
    for variant, k in (("global (k=1)", 1), (f"clustered (k={clustered_k})", clustered_k)):
        model = _pretrain_variant(scale, train, n_clusters=k, seed_offset=2)
        engine = context.make_engine("flink", scale)
        tuner = StreamTuneTuner(engine, model, seed=scale.seed + 5)
        result = run_campaign(engine, tuner, query, multipliers)
        rows.append(
            ClusteringAblationRow(
                variant=variant,
                n_clusters=model.n_clusters,
                holdout_accuracy=_holdout_accuracy(model, holdout),
                avg_reconfigurations=result.average_reconfigurations,
                backpressure_events=result.total_backpressure_events,
            )
        )
    return rows


# ----------------------------------------------------------------------
# warm-up dataset
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WarmupAblationRow:
    variant: str
    warmup_rows: int
    avg_reconfigurations: float
    backpressure_events: int
    final_parallelism: float


def run_warmup_ablation(scale: ExperimentScale | None = None) -> list[WarmupAblationRow]:
    """Algorithm 2's warm-up dataset on versus off.

    Without warm-up, M_f starts from nothing each campaign and the first
    recommendations lean on the distilled prior alone.
    """
    scale = scale or resolve_scale()
    train, _ = _holdout_split(_ablation_history(scale))
    model = _pretrain_variant(scale, train, n_clusters=1, seed_offset=3)
    query = context.evaluation_queries("flink", scale)["2-way-join"][0]
    multipliers = ABLATION_MULTIPLIERS[scale.name]
    rows = []
    for variant, warmup_rows in (("no warm-up", 0), ("warm-up (default)", 300)):
        engine = context.make_engine("flink", scale)
        tuner = StreamTuneTuner(
            engine, model, warmup_rows=warmup_rows, seed=scale.seed + 6
        )
        result = run_campaign(engine, tuner, query, multipliers)
        rows.append(
            WarmupAblationRow(
                variant=variant,
                warmup_rows=warmup_rows,
                avg_reconfigurations=result.average_reconfigurations,
                backpressure_events=result.total_backpressure_events,
                final_parallelism=result.final_parallelism_at(multipliers[-1]),
            )
        )
    return rows


# ----------------------------------------------------------------------
# decision-threshold sensitivity
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ThresholdRow:
    threshold: float
    final_parallelism: float
    avg_reconfigurations: float
    backpressure_events: int


def run_threshold_sweep(scale: ExperimentScale | None = None) -> list[ThresholdRow]:
    """Sweep M_f's decision threshold (default 0.35).

    Lower thresholds demand stronger evidence of safety before accepting a
    degree, trading extra parallelism for backpressure robustness.
    """
    scale = scale or resolve_scale()
    train, _ = _holdout_split(_ablation_history(scale))
    model = _pretrain_variant(scale, train, n_clusters=1, seed_offset=4)
    query = context.evaluation_queries("flink", scale)["linear"][0]
    multipliers = ABLATION_MULTIPLIERS[scale.name]
    rows = []
    for threshold in THRESHOLDS:
        engine = context.make_engine("flink", scale)
        tuner = StreamTuneTuner(
            engine, model, probability_threshold=threshold, seed=scale.seed + 7
        )
        result = run_campaign(engine, tuner, query, multipliers)
        rows.append(
            ThresholdRow(
                threshold=threshold,
                final_parallelism=result.final_parallelism_at(multipliers[-1]),
                avg_reconfigurations=result.average_reconfigurations,
                backpressure_events=result.total_backpressure_events,
            )
        )
    return rows


# ----------------------------------------------------------------------
# prediction-layer zoo (Fig. 11a extended)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ModelZooRow:
    model_kind: str
    monotone: bool
    avg_reconfigurations: float
    backpressure_events: int


def run_model_zoo(scale: ExperimentScale | None = None) -> list[ModelZooRow]:
    """SVM / XGBoost / isotonic k-NN / plain NN as the fine-tuning layer."""
    scale = scale or resolve_scale()
    train, _ = _holdout_split(_ablation_history(scale))
    model = _pretrain_variant(scale, train, n_clusters=1, seed_offset=5)
    query = context.evaluation_queries("flink", scale)["q5"][0]
    multipliers = ABLATION_MULTIPLIERS[scale.name]
    rows = []
    for model_kind, monotone in (
        ("svm", True),
        ("xgboost", True),
        ("isotonic", True),
        ("nn", False),
    ):
        engine = context.make_engine("flink", scale)
        tuner = StreamTuneTuner(
            engine, model, model_kind=model_kind, seed=scale.seed + 8
        )
        result = run_campaign(engine, tuner, query, multipliers)
        rows.append(
            ModelZooRow(
                model_kind=model_kind,
                monotone=monotone,
                avg_reconfigurations=result.average_reconfigurations,
                backpressure_events=result.total_backpressure_events,
            )
        )
    return rows


# ----------------------------------------------------------------------
# unseen-operator encoder study (§VII)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class EncoderAblationRow:
    encoder: str
    heldout_accuracy: float
    heldout_bce: float
    heldout_auc: float
    n_heldout_operators: int


def ranking_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve (probability a positive outranks a negative).

    Algorithm 2 consumes the prediction through a threshold search, so
    *ranking* quality — not absolute calibration — is what decides the
    recommended degrees.  Returns NaN when one class is absent.
    """
    positives = scores[labels == 1]
    negatives = scores[labels == 0]
    if len(positives) == 0 or len(negatives) == 0:
        return float("nan")
    wins = 0.0
    for positive in positives:
        wins += float(np.sum(positive > negatives))
        wins += 0.5 * float(np.sum(positive == negatives))
    return wins / (len(positives) * len(negatives))


#: Stress-sweep grid for the held-out evaluation set.
HELDOUT_SWEEP_MULTIPLIERS = (2, 4, 6, 8, 10)
HELDOUT_SWEEP_DEGREES = (1, 2, 3, 4, 6)
#: Degree given to every operator that is *not* of the held-out kind, so
#: saturation (and Algorithm 1's attribution) lands on the held-out kind.
HELDOUT_SUPPORT_DEGREE = 16


def _contains_heldout(record: ExecutionRecord) -> bool:
    return any(spec.op_type is HELDOUT_TYPE for spec in record.flow)


def heldout_evaluation_records(
    scale: ExperimentScale, seed_offset: int = 77
) -> list[ExecutionRecord]:
    """Labelled stress runs of the held-out-kind queries.

    Random histories over-provision most operators, so held-out kinds are
    rarely labelled 1 and any encoder scores well by predicting "safe".
    The evaluation set therefore *sweeps* the held-out operators' degree
    across a low grid while every other operator gets a generous degree —
    the saturation (and Algorithm 1's bottleneck attribution) can only
    land on the held-out kind, producing both label classes by design.
    """
    from repro.core.labeling import label_operators

    queries = [
        query
        for query in context.corpus("flink")
        if any(spec.op_type is HELDOUT_TYPE for spec in query.flow)
    ]
    if not queries:
        raise ValueError("corpus contains no held-out-kind queries")
    engine = context.make_engine("flink", scale)
    records: list[ExecutionRecord] = []
    for query in queries:
        for multiplier in HELDOUT_SWEEP_MULTIPLIERS:
            for degree in HELDOUT_SWEEP_DEGREES:
                source_rates = query.rates_at(multiplier)
                parallelisms = {
                    spec.name: (
                        degree
                        if spec.op_type is HELDOUT_TYPE
                        else HELDOUT_SUPPORT_DEGREE
                    )
                    for spec in query.flow
                }
                deployment = engine.deploy(query.flow, parallelisms, source_rates)
                telemetry = engine.measure(deployment)
                labels = label_operators(query.flow, telemetry, engine.name)
                records.append(
                    ExecutionRecord(
                        flow=query.flow,
                        source_rates=source_rates,
                        parallelisms=parallelisms,
                        labels=labels,
                        engine_name=engine.name,
                        has_backpressure=telemetry.has_backpressure,
                        job_latency_seconds=telemetry.job_latency_seconds,
                        query_name=query.name,
                        cpu_loads={
                            name: metrics.cpu_load
                            for name, metrics in telemetry.operators.items()
                        },
                    )
                )
                engine.stop(deployment)
    del seed_offset   # the sweep is deterministic; kept for API stability
    return records


def _heldout_scores(
    model: PretrainedStreamTune, records: list[ExecutionRecord]
) -> tuple[np.ndarray, np.ndarray]:
    """Probabilities and labels for held-out-kind operators only."""
    scores: list[float] = []
    labels: list[int] = []
    for record in records:
        _, encoder = model.encoder_for(record.flow)
        sample = model.sample_for(record)
        probabilities = encoder.predict_probabilities(sample, parallelism_aware=True)
        for index, name in enumerate(sample.node_names):
            spec = record.flow.operator(name)
            if spec.op_type is not HELDOUT_TYPE:
                continue
            label = record.labels.get(name, -1)
            if label < 0:
                continue
            scores.append(float(probabilities[index]))
            labels.append(int(label))
    return np.asarray(scores), np.asarray(labels, dtype=np.float64)


def run_encoder_ablation(
    scale: ExperimentScale | None = None,
) -> list[EncoderAblationRow]:
    """One-hot versus semantic features on a held-out operator kind.

    Pre-training sees no dataflow containing :data:`HELDOUT_TYPE`;
    evaluation scores only operators of that kind.  The one-hot encoder's
    column for the kind is untrained; the semantic encoder places the kind
    between its behavioural neighbours (``window_join``,
    ``window_aggregate``), so its bottleneck surface extends to it.

    Report both calibration (BCE) and ranking (AUC): the tuner's
    threshold search depends on ranking, and an interesting *negative*
    result is possible — Table I's shared features (window config, tuple
    widths, rates) may already carry most of the transfer, leaving little
    headroom for the semantic block (see EXPERIMENTS.md).
    """
    scale = scale or resolve_scale()
    records = _ablation_history(scale)
    train = [record for record in records if not _contains_heldout(record)]
    heldout = heldout_evaluation_records(scale)
    if not heldout:
        raise ValueError("ablation history contains no held-out-kind records")
    rows = []
    for name, feature_encoder in (
        ("one-hot", FeatureEncoder()),
        ("semantic", SemanticFeatureEncoder()),
    ):
        model = _pretrain_variant(
            scale,
            train,
            n_clusters=1,
            feature_encoder=feature_encoder,
            seed_offset=6,
        )
        scores, labels = _heldout_scores(model, heldout)
        clipped = np.clip(scores, 1e-9, 1 - 1e-9)
        bce = float(
            -np.mean(labels * np.log(clipped) + (1 - labels) * np.log(1 - clipped))
        )
        accuracy = float(((scores > 0.5) == (labels == 1)).mean())
        rows.append(
            EncoderAblationRow(
                encoder=name,
                heldout_accuracy=accuracy,
                heldout_bce=bce,
                heldout_auc=ranking_auc(scores, labels),
                n_heldout_operators=len(labels),
            )
        )
    return rows


# ----------------------------------------------------------------------
# printers
# ----------------------------------------------------------------------

def main(scale: ExperimentScale | None = None) -> dict[str, list]:
    """Run every extended ablation and print one table per study."""
    scale = scale or resolve_scale()
    results: dict[str, list] = {}

    results["fuse"] = run_fuse_ablation(scale)
    print(
        format_table(
            ["FUSE placement", "train acc", "holdout acc", "train (s)"],
            [
                (r.variant, f"{r.train_accuracy:.3f}", f"{r.holdout_accuracy:.3f}",
                 f"{r.train_seconds:.1f}")
                for r in results["fuse"]
            ],
            title="Ablation - FUSE placement (Eq. 3 reading)",
        )
    )

    results["clustering"] = run_clustering_ablation(scale)
    print()
    print(
        format_table(
            ["variant", "k", "holdout acc", "avg reconfigs", "backpressure"],
            [
                (r.variant, r.n_clusters, f"{r.holdout_accuracy:.3f}",
                 f"{r.avg_reconfigurations:.2f}", r.backpressure_events)
                for r in results["clustering"]
            ],
            title="Ablation - GED clustering vs global encoder (SVII)",
        )
    )

    results["warmup"] = run_warmup_ablation(scale)
    print()
    print(
        format_table(
            ["variant", "rows", "avg reconfigs", "backpressure", "final ||ism"],
            [
                (r.variant, r.warmup_rows, f"{r.avg_reconfigurations:.2f}",
                 r.backpressure_events, f"{r.final_parallelism:.0f}")
                for r in results["warmup"]
            ],
            title="Ablation - warm-up dataset",
        )
    )

    results["threshold"] = run_threshold_sweep(scale)
    print()
    print(
        format_table(
            ["threshold", "final ||ism", "avg reconfigs", "backpressure"],
            [
                (f"{r.threshold:.2f}", f"{r.final_parallelism:.0f}",
                 f"{r.avg_reconfigurations:.2f}", r.backpressure_events)
                for r in results["threshold"]
            ],
            title="Ablation - decision-threshold sensitivity",
        )
    )

    results["zoo"] = run_model_zoo(scale)
    print()
    print(
        format_table(
            ["model", "monotone", "avg reconfigs", "backpressure"],
            [
                (r.model_kind, "yes" if r.monotone else "no",
                 f"{r.avg_reconfigurations:.2f}", r.backpressure_events)
                for r in results["zoo"]
            ],
            title="Ablation - prediction-layer zoo (Fig. 11a extended)",
        )
    )

    results["encoder"] = run_encoder_ablation(scale)
    print()
    print(
        format_table(
            ["features", "holdout acc", "holdout BCE", "holdout AUC", "# operators"],
            [
                (r.encoder, f"{r.heldout_accuracy:.3f}", f"{r.heldout_bce:.3f}",
                 f"{r.heldout_auc:.3f}", r.n_heldout_operators)
                for r in results["encoder"]
            ],
            title="Ablation - unseen operator kind (SVII): one-hot vs semantic",
        )
    )
    return results


if __name__ == "__main__":
    main()
