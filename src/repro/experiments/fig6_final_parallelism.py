"""Fig. 6 — final parallelism recommendations at 10 x Wu on Flink.

For every evaluated query the paper reports the total operator parallelism
each method settles on once the source rate reaches 10 Wu.  ZeroTune is
PQP-only (its zero-shot model family was built for that workload).

Expected shape: StreamTune <= ContTune <= DS2 << ZeroTune, with the gap
widening on structurally complex queries (Q5, PQP joins).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import context
from repro.experiments.campaigns import averaged, campaign
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.utils.tables import format_table

#: Query groups in the paper's plotting order.
FLINK_GROUPS = ("q1", "q2", "q3", "q5", "q8", "linear", "2-way-join", "3-way-join")
PQP_GROUPS = ("linear", "2-way-join", "3-way-join")
METHODS = ("DS2", "ContTune", "StreamTune")

#: Paper's reported totals for reference (Fig. 6 bar labels).
PAPER_FIG6 = {
    ("q1", "DS2"): 13, ("q1", "ContTune"): 12, ("q1", "StreamTune"): 12,
    ("q2", "DS2"): 13, ("q2", "ContTune"): 13, ("q2", "StreamTune"): 13,
    ("q3", "DS2"): 14, ("q3", "ContTune"): 14, ("q3", "StreamTune"): 14,
    ("q5", "DS2"): 15, ("q5", "ContTune"): 14, ("q5", "StreamTune"): 13,
    ("q8", "DS2"): 12, ("q8", "ContTune"): 12, ("q8", "StreamTune"): 12,
    ("linear", "DS2"): 13, ("linear", "ContTune"): 13,
    ("linear", "StreamTune"): 9, ("linear", "ZeroTune"): 46,
    ("2-way-join", "DS2"): 39, ("2-way-join", "ContTune"): 36,
    ("2-way-join", "StreamTune"): 33, ("2-way-join", "ZeroTune"): 53,
    ("3-way-join", "DS2"): 59, ("3-way-join", "ContTune"): 55,
    ("3-way-join", "StreamTune"): 52, ("3-way-join", "ZeroTune"): 60,
}


@dataclass(frozen=True)
class Fig6Row:
    group: str
    method: str
    measured_total: float
    paper_total: int | None


def run(scale: ExperimentScale | None = None) -> list[Fig6Row]:
    scale = scale or resolve_scale()
    rows: list[Fig6Row] = []
    for group in FLINK_GROUPS:
        methods = METHODS + (("ZeroTune",) if group in PQP_GROUPS else ())
        for method in methods:
            results = campaign("flink", method, group, scale)
            total = averaged(
                results, "average_reconfigurations"
            )  # touch to materialise
            del total
            measured = sum(
                result.final_parallelism_at(10) for result in results
            ) / len(results)
            rows.append(
                Fig6Row(
                    group=group,
                    method=method,
                    measured_total=measured,
                    paper_total=PAPER_FIG6.get((group, method)),
                )
            )
    return rows


def main() -> list[Fig6Row]:
    rows = run()
    table = [
        (
            row.group,
            row.method,
            f"{row.measured_total:.1f}",
            row.paper_total if row.paper_total is not None else "-",
        )
        for row in rows
    ]
    print(
        format_table(
            ["query", "method", "final parallelism (measured)", "paper"],
            table,
            title="Fig. 6 - Final Parallelism at 10xWu (Flink)",
        )
    )
    return rows


if __name__ == "__main__":
    main()
