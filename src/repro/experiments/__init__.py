"""Paper experiment harness: one module per table/figure.

Every module exposes ``run(scale) -> rows`` and ``main()`` which prints the
same rows/series the paper reports.  Modules share expensive artifacts
(histories, pre-trained encoders, tuning campaigns) through
:mod:`repro.experiments.context`, so running several experiments in one
process pays the pre-training cost once.

Scales (:mod:`repro.experiments.scale`): ``smoke`` for CI, ``default`` for
a laptop-minutes run, ``paper`` for the full 120-rate-change campaigns.
Select with the ``REPRO_SCALE`` environment variable.
"""

from repro.experiments.scale import ExperimentScale, resolve_scale

__all__ = ["ExperimentScale", "resolve_scale"]
