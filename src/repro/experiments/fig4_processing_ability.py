"""Fig. 4 — relationship between parallelism and processing ability.

The paper's motivating measurement: a two-operator job (filter -> sliding
window aggregate) from the ZeroTune workload, fixed source rate, sweeping
one operator's parallelism while pinning the other.  Both PA curves grow
monotonically and cross a *bottleneck threshold* — parallelism 14 for the
filter and 10 for the window operator — below which the operator causes
backpressure.

The experiment reproduces the sweep on the simulated Flink engine: the PA
series (records/s sustained) and the measured thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.graph import LogicalDataflow
from repro.dataflow.operators import (
    AggregateFunction,
    KeyClass,
    OperatorSpec,
    OperatorType,
    WindowPolicy,
    WindowType,
)
from repro.api.components import build_engine
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.utils.tables import format_table

#: Fixed source rate of the sweep (records/s).
SOURCE_RATE = 2.0e6

#: Paper-calibrated per-operator cost factors (see DESIGN.md §5): place the
#: filter threshold at 14 and the window threshold at 10 under SOURCE_RATE.
FILTER_COST_FACTOR = 9.2
WINDOW_COST_FACTOR = 0.97
FILTER_SELECTIVITY = 0.8

#: Parallelism sweep range (paper plots 1..25).
SWEEP = tuple(range(1, 26))


def build_job() -> LogicalDataflow:
    """The filter -> sliding-window job of Fig. 4."""
    flow = LogicalDataflow("fig4_job")
    flow.chain(
        OperatorSpec(
            name="source",
            op_type=OperatorType.SOURCE,
            tuple_width_in=64.0,
            tuple_width_out=64.0,
        ),
        OperatorSpec(
            name="filter",
            op_type=OperatorType.FILTER,
            tuple_width_in=64.0,
            tuple_width_out=64.0,
            selectivity=FILTER_SELECTIVITY,
            cost_factor=FILTER_COST_FACTOR,
        ),
        OperatorSpec(
            name="window",
            op_type=OperatorType.WINDOW_AGGREGATE,
            window_type=WindowType.SLIDING,
            window_policy=WindowPolicy.TIME,
            window_length=60.0,
            sliding_length=10.0,
            aggregate_class=KeyClass.INT,
            aggregate_key_class=KeyClass.INT,
            aggregate_function=AggregateFunction.COUNT,
            tuple_width_in=64.0,
            tuple_width_out=48.0,
            selectivity=0.2,
            cost_factor=WINDOW_COST_FACTOR,
        ),
    )
    flow.validate()
    return flow


@dataclass(frozen=True)
class Fig4Result:
    """PA curves and measured bottleneck thresholds."""

    parallelism: tuple[int, ...]
    filter_pa: tuple[float, ...]
    window_pa: tuple[float, ...]
    filter_threshold: int
    window_threshold: int


def run(scale: ExperimentScale | None = None) -> Fig4Result:
    """Sweep each operator's parallelism; find the bottleneck thresholds."""
    del scale  # Fig. 4 is scale-independent
    engine = build_engine("flink", seed=4)
    flow = build_job()
    filter_spec = flow.operator("filter")
    window_spec = flow.operator("window")

    filter_pa = tuple(
        engine.perf.processing_ability(filter_spec, p) for p in SWEEP
    )
    window_pa = tuple(
        engine.perf.processing_ability(window_spec, p) for p in SWEEP
    )

    def threshold(target: str, pinned: dict[str, int]) -> int:
        for p in SWEEP:
            parallelisms = {"source": 4, **pinned, target: p}
            deployment = engine.deploy(flow, parallelisms, {"source": SOURCE_RATE})
            truth = engine.ground_truth(deployment)
            engine.stop(deployment)
            if not truth[target].saturated:
                return p
        return SWEEP[-1]

    filter_threshold = threshold("filter", {"window": 25})
    window_threshold = threshold("window", {"filter": 25})
    return Fig4Result(
        parallelism=SWEEP,
        filter_pa=filter_pa,
        window_pa=window_pa,
        filter_threshold=filter_threshold,
        window_threshold=window_threshold,
    )


def main() -> Fig4Result:
    result = run()
    rows = [
        (
            p,
            f"{result.filter_pa[i] / 1e6:.2f}",
            f"{result.window_pa[i] / 1e6:.2f}",
        )
        for i, p in enumerate(result.parallelism)
    ]
    print(
        format_table(
            ["parallelism", "filter PA (x1e6 rec/s)", "window PA (x1e6 rec/s)"],
            rows,
            title="Fig. 4 - Parallelism vs Processing Ability",
        )
    )
    print(
        f"\nbottleneck thresholds: filter={result.filter_threshold} "
        f"(paper: 14), window={result.window_threshold} (paper: 10)"
    )
    return result


if __name__ == "__main__":
    main()
