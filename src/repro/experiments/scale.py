"""Experiment scale presets.

The paper's campaigns are long (120 source-rate changes per query, up to
15k pre-training DAGs).  The harness reproduces shape, not wall-clock, so
each experiment accepts an :class:`ExperimentScale`:

* ``smoke``   — seconds; sanity in CI and pytest-benchmark runs,
* ``default`` — minutes on a laptop; the scale EXPERIMENTS.md reports,
* ``paper``   — the §V-A numbers (hours in this simulator).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

_ENV_VAR = "REPRO_SCALE"


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by all experiments."""

    name: str
    n_history_records: int        # pre-training dataset size
    gnn_epochs: int               # per-cluster encoder training epochs
    n_clusters: int | None        # None = elbow method
    n_permutations: int           # rate pattern: 20 changes per permutation
    n_rate_changes: int           # campaign length (<= 20 * n_permutations)
    queries_per_template: int     # PQP queries evaluated per template
    n_latency_epochs: int         # Timely per-epoch latency samples
    zerotune_epochs: int          # ZeroTune cost-model training epochs
    zerotune_history: int         # records for ZeroTune's cost model
    seed: int = 20250711

    def __post_init__(self) -> None:
        if self.n_history_records < 10:
            raise ValueError("n_history_records must be >= 10")
        if self.n_permutations < 1:
            raise ValueError("n_permutations must be >= 1")
        if not 1 <= self.n_rate_changes <= 20 * self.n_permutations:
            raise ValueError("n_rate_changes must fit inside the pattern")


SMOKE = ExperimentScale(
    name="smoke",
    n_history_records=2500,
    gnn_epochs=25,
    n_clusters=3,
    n_permutations=1,
    n_rate_changes=8,
    queries_per_template=1,
    n_latency_epochs=60,
    zerotune_epochs=4,
    zerotune_history=250,
)

DEFAULT = ExperimentScale(
    name="default",
    n_history_records=6000,
    gnn_epochs=40,
    n_clusters=4,
    n_permutations=1,
    n_rate_changes=20,
    queries_per_template=2,
    n_latency_epochs=200,
    zerotune_epochs=8,
    zerotune_history=1200,
)

PAPER = ExperimentScale(
    name="paper",
    n_history_records=15000,
    gnn_epochs=60,
    n_clusters=None,
    n_permutations=6,
    n_rate_changes=120,
    queries_per_template=8,
    n_latency_epochs=500,
    zerotune_epochs=15,
    zerotune_history=4000,
)

_PRESETS = {scale.name: scale for scale in (SMOKE, DEFAULT, PAPER)}


def resolve_scale(name: str | None = None) -> ExperimentScale:
    """Resolve a preset by name, falling back to ``$REPRO_SCALE``/default."""
    if name is None:
        name = os.environ.get(_ENV_VAR, "default")
    key = name.lower()
    if key not in _PRESETS:
        raise KeyError(f"unknown scale {name!r}; have {sorted(_PRESETS)}")
    return _PRESETS[key]
