"""Shared experiment artifacts with in-process caching.

Histories, pre-trained StreamTune models, and tuning campaigns are
expensive; several figures consume the same ones (Fig. 6, Fig. 7a,
Table III and Fig. 10 are all views over one campaign grid).  This module
builds each artifact once per (scale, engine) and caches it for the
lifetime of the process.
"""

from __future__ import annotations

import threading

from repro.api.components import (
    TunerResources,
    build_engine,
    build_tuner,
    engine_family,
)
from repro.core import HistoryGenerator, PretrainedStreamTune, pretrain
from repro.core.history import ExecutionRecord
from repro.engines import EngineCluster
from repro.experiments.scale import ExperimentScale
from repro.workloads import StreamingQuery, nexmark_queries, pqp_query_set

#: Methods available to campaign-based experiments.
METHOD_NAMES = ("DS2", "ContTune", "StreamTune", "ZeroTune", "Oracle")

_CACHE: dict = {}

#: Reentrant because builders nest (pretraining builds the history first);
#: held across the build so concurrent sessions (AsyncTuningSession.run_all
#: drives this module from worker threads) share one artifact instead of
#: each paying the minutes-scale construction.
_CACHE_LOCK = threading.RLock()


def _cached(key, builder):
    with _CACHE_LOCK:
        if key not in _CACHE:
            _CACHE[key] = builder()
        return _CACHE[key]


def clear_cache() -> None:
    """Drop every cached artifact (tests use this for isolation)."""
    _CACHE.clear()


# ----------------------------------------------------------------------
# engines and query corpora
# ----------------------------------------------------------------------

def make_engine(engine_name: str, scale: ExperimentScale) -> EngineCluster:
    """A fresh engine cluster (not cached: engines carry deployment state).

    Resolution goes through the :data:`repro.api.ENGINES` registry, so any
    registered engine — including ``timely-scheduled`` and
    ``flink-faulty`` — is available to every experiment by name.
    """
    return build_engine(engine_name, seed=scale.seed)


def corpus(engine_name: str) -> list[StreamingQuery]:
    """The full training corpus for an engine (Fig. 5 distribution).

    Engine *variants* (``flink-faulty``, ``timely-scheduled``) train on
    their base family's corpus — same queries, same rate units.
    """
    family = engine_family(engine_name)
    if family == "flink":
        return nexmark_queries("flink") + [
            query for queries in pqp_query_set().values() for query in queries
        ]
    if family == "timely":
        return nexmark_queries("timely")
    raise KeyError(f"engine {engine_name!r} has no workload corpus")


def evaluation_queries(
    engine_name: str, scale: ExperimentScale
) -> dict[str, list[StreamingQuery]]:
    """Queries per evaluation group, as reported in the paper's tables.

    Flink: the five Nexmark queries plus ``queries_per_template`` samples
    of each PQP template.  Timely: Nexmark Q3/Q5/Q8 (§V-F: the other
    queries run fine at parallelism 1).
    """
    if engine_family(engine_name) == "timely":
        timely = {q.name.split("_")[1]: q for q in nexmark_queries("timely")}
        return {key: [timely[key]] for key in ("q3", "q5", "q8")}
    groups: dict[str, list[StreamingQuery]] = {}
    for query in nexmark_queries("flink"):
        groups[query.name.split("_")[1]] = [query]
    for template, queries in pqp_query_set().items():
        groups[template] = queries[: scale.queries_per_template]
    return groups


# ----------------------------------------------------------------------
# histories and pre-training
# ----------------------------------------------------------------------

def history(engine_name: str, scale: ExperimentScale) -> list[ExecutionRecord]:
    """Synthetic execution history for pre-training (cached)."""

    def build() -> list[ExecutionRecord]:
        engine = make_engine(engine_name, scale)
        generator = HistoryGenerator(engine, seed=scale.seed + 1)
        return generator.generate(corpus(engine_name), scale.n_history_records)

    return _cached(("history", engine_name, scale.name), build)


def pretrained_model(engine_name: str, scale: ExperimentScale) -> PretrainedStreamTune:
    """Clustered, pre-trained StreamTune artifact (cached)."""

    def build() -> PretrainedStreamTune:
        engine = make_engine(engine_name, scale)
        return pretrain(
            history(engine_name, scale),
            max_parallelism=engine.max_parallelism,
            n_clusters=scale.n_clusters,
            epochs=scale.gnn_epochs,
            seed=scale.seed + 2,
        )

    return _cached(("pretrained", engine_name, scale.name), build)


# ----------------------------------------------------------------------
# tuner factory
# ----------------------------------------------------------------------

def make_tuner(method: str, engine: EngineCluster, scale: ExperimentScale):
    """Instantiate a tuning method bound to ``engine``.

    ``method`` is any :data:`repro.api.TUNERS` registry name (one of
    :data:`METHOD_NAMES`), or ``StreamTune-<model>`` for the Fig. 11a
    prediction-layer ablation (svm/xgboost/nn).  The registry factories
    pull whatever shared artifacts they need — the pre-trained model for
    StreamTune, history records for ZeroTune — lazily from this module's
    cache, with the scale's seed conventions applied inside the factory.
    """
    resources = TunerResources(
        scale=scale,
        pretrained=lambda: pretrained_model(engine.name, scale),
        history=lambda limit: history(engine.name, scale)[:limit],
    )
    return build_tuner(method, engine, resources)
