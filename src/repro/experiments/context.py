"""Shared experiment artifacts with in-process caching.

Histories, pre-trained StreamTune models, and tuning campaigns are
expensive; several figures consume the same ones (Fig. 6, Fig. 7a,
Table III and Fig. 10 are all views over one campaign grid).  This module
builds each artifact once per (scale, engine) and caches it for the
lifetime of the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import ContTuneTuner, DS2Tuner, OracleTuner, ZeroTuneTuner
from repro.core import HistoryGenerator, PretrainedStreamTune, StreamTuneTuner, pretrain
from repro.core.history import ExecutionRecord
from repro.engines import EngineCluster, FlinkCluster, TimelyCluster
from repro.experiments.scale import ExperimentScale
from repro.workloads import StreamingQuery, nexmark_queries, pqp_query_set

#: Methods available to campaign-based experiments.
METHOD_NAMES = ("DS2", "ContTune", "StreamTune", "ZeroTune", "Oracle")

_CACHE: dict = {}


def _cached(key, builder):
    if key not in _CACHE:
        _CACHE[key] = builder()
    return _CACHE[key]


def clear_cache() -> None:
    """Drop every cached artifact (tests use this for isolation)."""
    _CACHE.clear()


# ----------------------------------------------------------------------
# engines and query corpora
# ----------------------------------------------------------------------

def make_engine(engine_name: str, scale: ExperimentScale) -> EngineCluster:
    """A fresh engine cluster (not cached: engines carry deployment state)."""
    if engine_name == "flink":
        return FlinkCluster(seed=scale.seed)
    if engine_name == "timely":
        return TimelyCluster(seed=scale.seed)
    raise KeyError(f"unknown engine {engine_name!r}")


def corpus(engine_name: str) -> list[StreamingQuery]:
    """The full training corpus for an engine (Fig. 5 distribution)."""
    if engine_name == "flink":
        return nexmark_queries("flink") + [
            query for queries in pqp_query_set().values() for query in queries
        ]
    if engine_name == "timely":
        return nexmark_queries("timely")
    raise KeyError(f"unknown engine {engine_name!r}")


def evaluation_queries(
    engine_name: str, scale: ExperimentScale
) -> dict[str, list[StreamingQuery]]:
    """Queries per evaluation group, as reported in the paper's tables.

    Flink: the five Nexmark queries plus ``queries_per_template`` samples
    of each PQP template.  Timely: Nexmark Q3/Q5/Q8 (§V-F: the other
    queries run fine at parallelism 1).
    """
    if engine_name == "timely":
        timely = {q.name.split("_")[1]: q for q in nexmark_queries("timely")}
        return {key: [timely[key]] for key in ("q3", "q5", "q8")}
    groups: dict[str, list[StreamingQuery]] = {}
    for query in nexmark_queries("flink"):
        groups[query.name.split("_")[1]] = [query]
    for template, queries in pqp_query_set().items():
        groups[template] = queries[: scale.queries_per_template]
    return groups


# ----------------------------------------------------------------------
# histories and pre-training
# ----------------------------------------------------------------------

def history(engine_name: str, scale: ExperimentScale) -> list[ExecutionRecord]:
    """Synthetic execution history for pre-training (cached)."""

    def build() -> list[ExecutionRecord]:
        engine = make_engine(engine_name, scale)
        generator = HistoryGenerator(engine, seed=scale.seed + 1)
        return generator.generate(corpus(engine_name), scale.n_history_records)

    return _cached(("history", engine_name, scale.name), build)


def pretrained_model(engine_name: str, scale: ExperimentScale) -> PretrainedStreamTune:
    """Clustered, pre-trained StreamTune artifact (cached)."""

    def build() -> PretrainedStreamTune:
        engine = make_engine(engine_name, scale)
        return pretrain(
            history(engine_name, scale),
            max_parallelism=engine.max_parallelism,
            n_clusters=scale.n_clusters,
            epochs=scale.gnn_epochs,
            seed=scale.seed + 2,
        )

    return _cached(("pretrained", engine_name, scale.name), build)


# ----------------------------------------------------------------------
# tuner factory
# ----------------------------------------------------------------------

def make_tuner(method: str, engine: EngineCluster, scale: ExperimentScale):
    """Instantiate a tuning method bound to ``engine``.

    ``method`` is one of :data:`METHOD_NAMES`, or ``StreamTune-<model>``
    for the Fig. 11a prediction-layer ablation (svm/xgboost/nn).
    """
    key = method.lower()
    if key == "ds2":
        return DS2Tuner(engine)
    if key == "conttune":
        return ContTuneTuner(engine)
    if key == "oracle":
        return OracleTuner(engine)
    if key == "zerotune":
        records = history(engine.name, scale)[: scale.zerotune_history]
        return ZeroTuneTuner(
            engine, records, epochs=scale.zerotune_epochs, seed=scale.seed + 3
        )
    if key.startswith("streamtune"):
        _, _, model_kind = key.partition("-")
        return StreamTuneTuner(
            engine,
            pretrained_model(engine.name, scale),
            model_kind=model_kind or "svm",
            seed=scale.seed + 4,
        )
    raise KeyError(f"unknown tuning method {method!r}")
