"""Fig. 5 — node-count distribution of the pre-training dataflow DAGs.

The paper plots what share of the pre-training corpus has 2..10 logical
operators.  Our corpus (5 Nexmark + 56 PQP queries) is constructed to
reproduce the published ratios exactly (see the PQP module docstring); the
experiment also reports the realised distribution of a generated history,
which matches in expectation because queries are drawn uniformly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.experiments import context
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.utils.tables import format_table

#: Fig. 5's published percentages by node count.
PAPER_DISTRIBUTION = {
    2: 6.56,
    3: 8.20,
    4: 8.20,
    5: 11.48,
    6: 13.11,
    7: 16.39,
    8: 19.67,
    9: 13.11,
    10: 3.28,
}


@dataclass(frozen=True)
class Fig5Result:
    corpus_percentages: dict[int, float]
    history_percentages: dict[int, float]


def run(scale: ExperimentScale | None = None) -> Fig5Result:
    scale = scale or resolve_scale()
    corpus = context.corpus("flink")
    corpus_counts = Counter(len(query.flow) for query in corpus)
    corpus_pct = {
        n: 100.0 * corpus_counts.get(n, 0) / len(corpus)
        for n in PAPER_DISTRIBUTION
    }
    records = context.history("flink", scale)
    history_counts = Counter(len(record.flow) for record in records)
    history_pct = {
        n: 100.0 * history_counts.get(n, 0) / len(records)
        for n in PAPER_DISTRIBUTION
    }
    return Fig5Result(corpus_percentages=corpus_pct, history_percentages=history_pct)


def main() -> Fig5Result:
    result = run()
    rows = [
        (
            n,
            f"{PAPER_DISTRIBUTION[n]:.2f}%",
            f"{result.corpus_percentages[n]:.2f}%",
            f"{result.history_percentages[n]:.2f}%",
        )
        for n in sorted(PAPER_DISTRIBUTION)
    ]
    print(
        format_table(
            ["# DAG nodes", "paper", "corpus (this repo)", "generated history"],
            rows,
            title="Fig. 5 - Distribution of Pre-trained Dataflow DAGs",
        )
    )
    return result


if __name__ == "__main__":
    main()
