"""Run every paper experiment and print the full report.

Usage::

    python -m repro.experiments            # default scale
    REPRO_SCALE=smoke python -m repro.experiments
"""

from __future__ import annotations

import sys

from repro.experiments import (
    fig4_processing_ability,
    fig5_history_distribution,
    fig6_final_parallelism,
    fig7_reconfigurations,
    fig8_timely,
    fig9_overhead,
    fig10_cpu_utilisation,
    fig11_ablation,
    table3_backpressure,
)
from repro.experiments.scale import resolve_scale

EXPERIMENTS = (
    ("Fig. 4", fig4_processing_ability.main),
    ("Fig. 5", fig5_history_distribution.main),
    ("Fig. 6", fig6_final_parallelism.main),
    ("Fig. 7", fig7_reconfigurations.main),
    ("Table III", table3_backpressure.main),
    ("Fig. 8", fig8_timely.main),
    ("Fig. 9", fig9_overhead.main),
    ("Fig. 10", fig10_cpu_utilisation.main),
    ("Fig. 11", fig11_ablation.main),
)


def main() -> int:
    scale = resolve_scale()
    print(f"# StreamTune reproduction - all experiments (scale: {scale.name})\n")
    for label, runner in EXPERIMENTS:
        print(f"\n{'=' * 70}\n## {label}\n{'=' * 70}")
        runner()
    return 0


if __name__ == "__main__":
    sys.exit(main())
