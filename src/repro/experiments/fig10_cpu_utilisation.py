"""Fig. 10 — CPU utilisation trends during the tuning process.

The paper plots capacity-weighted CPU utilisation of the job across
StreamTune's reconfiguration iterations for Nexmark Q2, PQP Linear and PQP
2-way-join; vertical marks show where the periodic source rate changes.
Utilisation swings as the tuner explores degrees and settles mid-range once
tuned (neither starved nor saturated).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.campaigns import campaign
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.utils.tables import format_table

GROUPS = ("q2", "linear", "2-way-join")


@dataclass(frozen=True)
class Fig10Series:
    group: str
    utilisation: tuple[float, ...]      # one value per reconfiguration step
    rate_change_marks: tuple[int, ...]  # step indices of source-rate changes


def run(scale: ExperimentScale | None = None) -> list[Fig10Series]:
    scale = scale or resolve_scale()
    series = []
    for group in GROUPS:
        result = campaign("flink", "StreamTune", group, scale)[0]
        series.append(
            Fig10Series(
                group=group,
                utilisation=tuple(result.cpu_trace()),
                rate_change_marks=tuple(result.process_boundaries()),
            )
        )
    return series


def main() -> list[Fig10Series]:
    series = run()
    for item in series:
        marks = set(item.rate_change_marks)
        rows = [
            (i, f"{value * 100:.1f}%", "<- rate change" if i in marks else "")
            for i, value in enumerate(item.utilisation)
        ]
        print(
            format_table(
                ["iteration", "CPU utilisation", ""],
                rows[:40],
                title=f"Fig. 10 - CPU Utilisation During Tuning ({item.group})",
            )
        )
        print()
    return series


if __name__ == "__main__":
    main()
