"""Table III — frequency of backpressure occurrences during tuning.

Counts, over the whole campaign, how often a method's own redeployment left
the job backpressured.  Paper result: DS2 and ContTune trigger backpressure
increasingly often as query complexity grows (useful-time overestimation),
ZeroTune and StreamTune stay at zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.campaigns import campaign
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.utils.tables import format_table

GROUPS = ("q1", "q2", "q3", "q5", "q8", "linear", "2-way-join", "3-way-join")
PQP_GROUPS = ("linear", "2-way-join", "3-way-join")
METHODS = ("DS2", "ContTune", "ZeroTune", "StreamTune")

#: Table III reference counts (120 tuning processes per query).
PAPER_TABLE3 = {
    "DS2": {"q1": 0, "q2": 0, "q3": 1, "q5": 2, "q8": 1,
            "linear": 3, "2-way-join": 8, "3-way-join": 12},
    "ContTune": {"q1": 0, "q2": 0, "q3": 2, "q5": 5, "q8": 1,
                 "linear": 4, "2-way-join": 11, "3-way-join": 9},
    "ZeroTune": {"linear": 0, "2-way-join": 0, "3-way-join": 0},
    "StreamTune": {"q1": 0, "q2": 0, "q3": 0, "q5": 0, "q8": 0,
                   "linear": 0, "2-way-join": 0, "3-way-join": 0},
}


@dataclass(frozen=True)
class Table3Row:
    method: str
    group: str
    measured_events: int
    paper_events: int | None


def run(scale: ExperimentScale | None = None) -> list[Table3Row]:
    scale = scale or resolve_scale()
    rows = []
    for method in METHODS:
        for group in GROUPS:
            if method == "ZeroTune" and group not in PQP_GROUPS:
                continue
            results = campaign("flink", method, group, scale)
            measured = sum(result.total_backpressure_events for result in results)
            rows.append(
                Table3Row(
                    method=method,
                    group=group,
                    measured_events=measured,
                    paper_events=PAPER_TABLE3.get(method, {}).get(group),
                )
            )
    return rows


def main() -> list[Table3Row]:
    rows = run()
    table = [
        (
            row.method,
            row.group,
            row.measured_events,
            row.paper_events if row.paper_events is not None else "-",
        )
        for row in rows
    ]
    print(
        format_table(
            ["method", "query", "backpressure events (measured)", "paper"],
            table,
            title="Table III - Frequency of Backpressure Occurrences",
        )
    )
    return rows


if __name__ == "__main__":
    main()
