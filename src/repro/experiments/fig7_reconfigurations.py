"""Fig. 7 — reconfiguration efficiency and adaptation time.

(a) Average number of reconfigurations per tuning process over the
periodic rate pattern (paper: DS2 needs clearly more than ContTune and
StreamTune; StreamTune wins on the complex PQP templates, e.g. -29.6% on
PQP Linear).

(b) Case study: an *unseen* 2-way-join query (held out of pre-training) is
tuned through the basic rate cycle; the tuning time per rate change —
model inference plus the 10-minute stabilisation wait per reconfiguration
— fluctuates between roughly 10 and 40 minutes (paper average ~27).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import StreamTuneTuner
from repro.engines.base import STABILIZATION_MINUTES
from repro.experiments import context
from repro.experiments.campaigns import averaged, campaign, run_campaign
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.utils.tables import format_table
from repro.workloads.rates import BASIC_CYCLE
from repro.workloads.pqp import pqp_queries

GROUPS = ("q1", "q2", "q3", "q5", "q8", "linear", "2-way-join", "3-way-join")
METHODS = ("DS2", "ContTune", "StreamTune")

#: Fig. 7a reference values.
PAPER_FIG7A = {
    ("q1", "DS2"): 2.17, ("q1", "ContTune"): 1.18, ("q1", "StreamTune"): 1.20,
    ("q2", "DS2"): 2.23, ("q2", "ContTune"): 1.53, ("q2", "StreamTune"): 1.45,
    ("q3", "DS2"): 1.58, ("q3", "ContTune"): 1.24, ("q3", "StreamTune"): 1.30,
    ("q5", "DS2"): 3.45, ("q5", "ContTune"): 1.51, ("q5", "StreamTune"): 1.25,
    ("q8", "DS2"): 3.27, ("q8", "ContTune"): 1.48, ("q8", "StreamTune"): 1.53,
    ("linear", "DS2"): 2.30, ("linear", "ContTune"): 1.71,
    ("linear", "StreamTune"): 1.62,
    ("2-way-join", "DS2"): 3.87, ("2-way-join", "ContTune"): 2.03,
    ("2-way-join", "StreamTune"): 1.73,
    ("3-way-join", "DS2"): 4.12, ("3-way-join", "ContTune"): 2.12,
    ("3-way-join", "StreamTune"): 1.77,
}


@dataclass(frozen=True)
class Fig7aRow:
    group: str
    method: str
    measured_avg_reconfigurations: float
    paper_value: float | None


@dataclass(frozen=True)
class Fig7bResult:
    multipliers: tuple[int, ...]
    tuning_minutes: tuple[float, ...]

    @property
    def average_minutes(self) -> float:
        return sum(self.tuning_minutes) / len(self.tuning_minutes)


def run_fig7a(scale: ExperimentScale | None = None) -> list[Fig7aRow]:
    scale = scale or resolve_scale()
    rows = []
    for group in GROUPS:
        for method in METHODS:
            results = campaign("flink", method, group, scale)
            rows.append(
                Fig7aRow(
                    group=group,
                    method=method,
                    measured_avg_reconfigurations=averaged(
                        results, "average_reconfigurations"
                    ),
                    paper_value=PAPER_FIG7A.get((group, method)),
                )
            )
    return rows


def run_fig7b(scale: ExperimentScale | None = None) -> Fig7bResult:
    """Case study: tune a 2-way-join held out of the pre-training corpus."""
    scale = scale or resolve_scale()
    # Query index beyond queries_per_template is never part of the tuned
    # evaluation set; more importantly we exclude its records from warm-up
    # by regenerating an unseen variant with a shifted seed.
    unseen = pqp_queries("2-way-join", seed=987_654_321)[7]
    engine = context.make_engine("flink", scale)
    tuner = StreamTuneTuner(
        engine,
        context.pretrained_model("flink", scale),
        seed=scale.seed + 9,
    )
    result = run_campaign(engine, tuner, unseen, list(BASIC_CYCLE))
    minutes = tuple(
        process.tuning_minutes(STABILIZATION_MINUTES)
        for process in result.processes
    )
    return Fig7bResult(multipliers=tuple(BASIC_CYCLE), tuning_minutes=minutes)


def main() -> tuple[list[Fig7aRow], Fig7bResult]:
    rows = run_fig7a()
    table = [
        (
            row.group,
            row.method,
            f"{row.measured_avg_reconfigurations:.2f}",
            f"{row.paper_value:.2f}" if row.paper_value is not None else "-",
        )
        for row in rows
    ]
    print(
        format_table(
            ["query", "method", "avg reconfigs (measured)", "paper"],
            table,
            title="Fig. 7a - Average Reconfigurations per Tuning Process (Flink)",
        )
    )
    case = run_fig7b()
    case_rows = [
        (m, f"{minutes:.1f}")
        for m, minutes in zip(case.multipliers, case.tuning_minutes)
    ]
    print()
    print(
        format_table(
            ["source rate (xWu)", "tuning time (min)"],
            case_rows,
            title="Fig. 7b - Case Study: Unseen 2-way-join Query",
        )
    )
    print(f"\naverage tuning time: {case.average_minutes:.1f} min (paper: ~27)")
    return rows, case


if __name__ == "__main__":
    main()
