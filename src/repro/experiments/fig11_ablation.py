"""Fig. 11 — ablation studies.

(a) Prediction-layer choice: SVM and XGBoost (both monotone) against a
plain neural network.  The NN violates the monotonic constraint, breaking
Algorithm 2's binary search; it needs clearly more reconfigurations on
Nexmark Q3/Q5/Q8 (paper: 2.49/3.13/4.59 vs ~1.3-1.6).

(b) Similarity-center computation: direct exact GED for every pair versus
the AStar+-LSa threshold search (paper: -99.65% at 400 DAGs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.center import similarity_center
from repro.experiments.campaigns import averaged, campaign
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.utils.rng import seeded_rng
from repro.utils.tables import format_table
from repro.utils.timer import Timer
from repro.workloads.pqp import pqp_queries

ABLATION_GROUPS = ("q3", "q5", "q8")
ABLATION_METHODS = ("StreamTune-nn", "StreamTune-svm", "StreamTune-xgboost")

#: Fig. 11a reference values.
PAPER_FIG11A = {
    ("q3", "StreamTune-nn"): 2.49, ("q5", "StreamTune-nn"): 3.13,
    ("q8", "StreamTune-nn"): 4.59,
    ("q3", "StreamTune-svm"): 1.30, ("q5", "StreamTune-svm"): 1.25,
    ("q8", "StreamTune-svm"): 1.53,
    ("q3", "StreamTune-xgboost"): 1.46, ("q5", "StreamTune-xgboost"): 1.39,
    ("q8", "StreamTune-xgboost"): 1.58,
}

#: Dataset sizes for the similarity-center timing curve, per scale preset.
CENTER_SIZES = {"smoke": (20, 40), "default": (50, 100, 150, 200), "paper": (100, 200, 300, 400)}

#: Similarity-search threshold (paper §V-A: tau = 5).
TAU = 5.0


@dataclass(frozen=True)
class Fig11aRow:
    group: str
    method: str
    measured_avg_reconfigurations: float
    paper_value: float | None


@dataclass(frozen=True)
class Fig11bRow:
    n_graphs: int
    direct_seconds: float
    lsa_seconds: float

    @property
    def reduction_percent(self) -> float:
        if self.direct_seconds <= 0:
            return 0.0
        return 100.0 * (1.0 - self.lsa_seconds / self.direct_seconds)


def run_fig11a(scale: ExperimentScale | None = None) -> list[Fig11aRow]:
    scale = scale or resolve_scale()
    rows = []
    for group in ABLATION_GROUPS:
        for method in ABLATION_METHODS:
            results = campaign("flink", method, group, scale)
            rows.append(
                Fig11aRow(
                    group=group,
                    method=method,
                    measured_avg_reconfigurations=averaged(
                        results, "average_reconfigurations"
                    ),
                    paper_value=PAPER_FIG11A.get((group, method)),
                )
            )
    return rows


def _center_dataset(n_graphs: int, seed: int) -> list:
    """``n_graphs`` structurally diverse DAGs (regenerated PQP variants)."""
    rng = seeded_rng(seed)
    graphs = []
    variant = 0
    while len(graphs) < n_graphs:
        template = ["linear", "2-way-join", "3-way-join"][variant % 3]
        queries = pqp_queries(template, seed=seed + 17 * variant)
        for query in queries:
            graphs.append(query.flow)
            if len(graphs) == n_graphs:
                break
        variant += 1
    order = rng.permutation(len(graphs))
    return [graphs[i] for i in order]


def run_fig11b(scale: ExperimentScale | None = None) -> list[Fig11bRow]:
    scale = scale or resolve_scale()
    rows = []
    for n_graphs in CENTER_SIZES[scale.name]:
        graphs = _center_dataset(n_graphs, seed=scale.seed + 11)
        with Timer() as direct_timer:
            direct_center = similarity_center(graphs, tau=TAU, use_lsa=False)
        with Timer() as lsa_timer:
            lsa_center = similarity_center(graphs, tau=TAU, use_lsa=True)
        assert direct_center == lsa_center, "methods must agree on the center"
        rows.append(
            Fig11bRow(
                n_graphs=n_graphs,
                direct_seconds=direct_timer.elapsed,
                lsa_seconds=lsa_timer.elapsed,
            )
        )
    return rows


def main() -> tuple[list[Fig11aRow], list[Fig11bRow]]:
    rows_a = run_fig11a()
    print(
        format_table(
            ["query", "prediction layer", "avg reconfigs (measured)", "paper"],
            [
                (
                    r.group,
                    r.method.split("-")[1].upper(),
                    f"{r.measured_avg_reconfigurations:.2f}",
                    f"{r.paper_value:.2f}" if r.paper_value is not None else "-",
                )
                for r in rows_a
            ],
            title="Fig. 11a - Effect of Classification Models",
        )
    )
    rows_b = run_fig11b()
    print()
    print(
        format_table(
            ["# DAGs", "direct GED (s)", "AStar+-LSa (s)", "reduction"],
            [
                (
                    r.n_graphs,
                    f"{r.direct_seconds:.2f}",
                    f"{r.lsa_seconds:.2f}",
                    f"{r.reduction_percent:.1f}%",
                )
                for r in rows_b
            ],
            title="Fig. 11b - Similarity Center Computation Time",
        )
    )
    return rows_a, rows_b


if __name__ == "__main__":
    main()
