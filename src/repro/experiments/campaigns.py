"""Tuning campaigns: the §V-A evaluation protocol.

A campaign drives one (query, method) pair through the periodic source-rate
pattern — each rate change triggers one tuning process.  Campaign results
feed Fig. 6 (final parallelism), Fig. 7a (reconfigurations), Table III
(backpressure occurrences), Fig. 9a (recommendation time) and Fig. 10 (CPU
utilisation), so the grid is computed once per (engine, scale) and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.api import TuningResult
from repro.experiments import context
from repro.experiments.scale import ExperimentScale
from repro.scenarios.library import periodic_multipliers
from repro.workloads.query import StreamingQuery


@dataclass
class CampaignResult:
    """All tuning processes of one (query, method) campaign."""

    query_name: str
    method: str
    multipliers: list[int] = field(default_factory=list)
    processes: list[TuningResult] = field(default_factory=list)

    @property
    def n_processes(self) -> int:
        return len(self.processes)

    @property
    def average_reconfigurations(self) -> float:
        if not self.processes:
            return 0.0
        return float(
            np.mean([process.n_reconfigurations for process in self.processes])
        )

    @property
    def total_backpressure_events(self) -> int:
        return sum(process.n_backpressure_events for process in self.processes)

    @property
    def average_recommendation_seconds(self) -> float:
        if not self.processes:
            return 0.0
        return float(
            np.mean([process.recommendation_seconds for process in self.processes])
        )

    def final_parallelism_at(self, multiplier: int) -> float:
        """Mean final total parallelism over processes targeting ``multiplier``."""
        totals = [
            process.final_total_parallelism
            for m, process in zip(self.multipliers, self.processes)
            if m == multiplier
        ]
        if not totals:
            raise ValueError(f"campaign never visited multiplier {multiplier}")
        return float(np.mean(totals))

    def final_parallelisms_at(self, multiplier: int) -> dict[str, int]:
        """Final per-operator map of the *last* process at ``multiplier``."""
        for m, process in zip(reversed(self.multipliers), reversed(self.processes)):
            if m == multiplier:
                return process.final_parallelisms
        raise ValueError(f"campaign never visited multiplier {multiplier}")

    def cpu_trace(self) -> list[float]:
        """Concatenated CPU utilisation across every reconfiguration step."""
        trace: list[float] = []
        for process in self.processes:
            trace.extend(process.cpu_trace())
        return trace

    def process_boundaries(self) -> list[int]:
        """Iteration indices where a new rate change begins (Fig. 10 marks)."""
        boundaries = []
        position = 0
        for process in self.processes:
            boundaries.append(position)
            position += len(process.steps)
        return boundaries


def iter_campaign(
    engine,
    tuner,
    query: StreamingQuery,
    multipliers: list[int],
    *,
    chaos=None,
    chaos_sink=None,
):
    """The canonical campaign loop, one tuning process at a time.

    A generator yielding ``(index, multiplier, process)`` after each
    source-rate change and returning the full :class:`CampaignResult`
    (via ``StopIteration.value``).  Every execution path — the blocking
    :func:`run_campaign`, the streaming session, the service's campaign
    workers — drives this one loop, so they cannot drift apart.

    ``chaos`` is an optional :class:`~repro.scenarios.ChaosSpec`: its
    scheduled effects are injected deterministically before each step's
    tuning process, and the resulting
    :class:`~repro.api.events.ChaosInjected` events go to ``chaos_sink``
    (a callable taking one event) when one is given.
    """
    result = CampaignResult(query_name=query.name, method=tuner.name)
    tuner.prepare(query)
    initial = dict.fromkeys(query.flow.operator_names, 1)
    deployment = engine.deploy(query.flow, initial, query.rates_at(multipliers[0]))
    injector = None
    if chaos is not None and not chaos.is_noop:
        from repro.scenarios.chaos import ChaosInjector

        injector = ChaosInjector(chaos)
    for index, multiplier in enumerate(multipliers):
        if injector is not None:
            for event in injector.begin_step(
                engine, deployment, index, campaign=query.name
            ):
                if chaos_sink is not None:
                    chaos_sink(event)
            # Trace dropouts rewrite the workload itself: the tuner, the
            # recorded multipliers and the events all see the post-outage
            # rate, identically on every backend.
            multiplier = injector.effective_multiplier(index, multiplier)
        process = tuner.tune(deployment, query.rates_at(multiplier))
        if injector is not None:
            injector.end_step(engine)
        result.multipliers.append(multiplier)
        result.processes.append(process)
        yield index, multiplier, process
    engine.stop(deployment)
    return result


def run_campaign(
    engine,
    tuner,
    query: StreamingQuery,
    multipliers: list[int],
) -> CampaignResult:
    """Drive ``query`` through ``multipliers``, tuning after each change."""
    iterator = iter_campaign(engine, tuner, query, multipliers)
    while True:
        try:
            next(iterator)
        except StopIteration as stop:
            return stop.value


def campaign(
    engine_name: str,
    method: str,
    group: str,
    scale: ExperimentScale,
) -> list[CampaignResult]:
    """Cached campaigns for one evaluation group (e.g. 'q5', '2-way-join').

    Returns one :class:`CampaignResult` per query in the group (PQP groups
    evaluate ``scale.queries_per_template`` queries; Nexmark groups one).
    """
    key = ("campaign", engine_name, method, group, scale.name)
    if key in context._CACHE:
        return context._CACHE[key]

    queries = context.evaluation_queries(engine_name, scale)[group]
    multipliers = periodic_multipliers(
        n_permutations=scale.n_permutations, seed=scale.seed
    )[: scale.n_rate_changes]
    results = []
    for query in queries:
        engine = context.make_engine(engine_name, scale)
        tuner = context.make_tuner(method, engine, scale)
        results.append(run_campaign(engine, tuner, query, multipliers))
    context._CACHE[key] = results
    return results


def averaged(results: list[CampaignResult], attribute: str) -> float:
    """Mean of a CampaignResult property across a query group."""
    values = [getattr(result, attribute) for result in results]
    return float(np.mean(values))


def service_campaigns(
    engine_name: str,
    groups: list[str],
    scale: ExperimentScale,
    backend: str = "thread",
    max_workers: int | None = None,
    on_event=None,
) -> dict[str, list[CampaignResult]]:
    """StreamTune campaigns for many query groups via the tuning service.

    The concurrent counterpart of calling :func:`campaign` per group: every
    query of every group becomes one :class:`~repro.service.CampaignSpec`
    and the whole fleet runs through a single
    :class:`~repro.service.TuningService` (shared GED/embedding caches,
    backpressure-first dispatch).  The fleet executes through the
    service's event stream; ``on_event`` (any callable or an
    :class:`~repro.api.events.EventBus`'s ``publish``) observes campaigns
    as they complete instead of waiting for the barrier.  Results are
    cached under dedicated ``service-campaign`` keys — the service's
    deduplicated fitting path is deterministic but not bit-identical to
    the sequential figures grid, so the two grids never mix.
    """
    from repro.api.events import CampaignFailed, CampaignFinished
    from repro.service import CampaignExecutionError, CampaignSpec, TuningService

    key = ("service-campaign", engine_name, tuple(groups), scale.name, backend)
    if key in context._CACHE:
        return context._CACHE[key]

    evaluation = context.evaluation_queries(engine_name, scale)
    multipliers = tuple(
        periodic_multipliers(n_permutations=scale.n_permutations, seed=scale.seed)[
            : scale.n_rate_changes
        ]
    )
    specs = []
    for group in groups:
        for query in evaluation[group]:
            specs.append(
                CampaignSpec(
                    query=query,
                    multipliers=multipliers,
                    engine=engine_name,
                    engine_seed=scale.seed,
                    seed=scale.seed + 4,
                )
            )
    service = TuningService(
        context.pretrained_model(engine_name, scale),
        backend=backend,
        max_workers=max_workers,
    )
    outcomes = {}
    outcomes_by_index = {}
    failures = []
    for event in service.stream(specs):
        if on_event is not None:
            on_event(event)
        if isinstance(event, CampaignFinished):
            outcomes[event.campaign] = event.outcome
            outcomes_by_index[event.index] = event.outcome
        elif isinstance(event, CampaignFailed):
            failures.append(event)
    if failures:
        # The experiment grid is only cacheable when complete; surface the
        # failure (with its worker traceback) instead of a partial grid.
        raise CampaignExecutionError(failures, outcomes_by_index)
    results: dict[str, list[CampaignResult]] = {
        group: [outcomes[query.name].result for query in evaluation[group]]
        for group in groups
    }
    context._CACHE[key] = results
    return results
