"""Fig. 9 — computational cost of StreamTune.

(a) Average online recommendation time per tuning process across the PQP
templates: DS2 is near-instant (closed form), StreamTune is stable as
query complexity grows, ContTune's per-operator Gaussian processes climb
steeply with operator count and accumulated observations.

(b) Offline pre-training wall time versus history size: super-linear
growth, dominated by per-cluster GNN training plus GED clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import pretrain
from repro.experiments import context
from repro.experiments.campaigns import averaged, campaign
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.utils.tables import format_table
from repro.utils.timer import Timer

PQP_GROUPS = ("linear", "2-way-join", "3-way-join")
METHODS = ("StreamTune", "DS2", "ContTune")

#: History sizes for the pre-training cost curve, scaled per preset.
CURVE_FRACTIONS = (0.15, 0.3, 0.6, 1.0)


@dataclass(frozen=True)
class Fig9aRow:
    group: str
    method: str
    avg_recommendation_seconds: float


@dataclass(frozen=True)
class Fig9bRow:
    n_records: int
    training_seconds: float


def run_fig9a(scale: ExperimentScale | None = None) -> list[Fig9aRow]:
    scale = scale or resolve_scale()
    rows = []
    for group in PQP_GROUPS:
        for method in METHODS:
            results = campaign("flink", method, group, scale)
            rows.append(
                Fig9aRow(
                    group=group,
                    method=method,
                    avg_recommendation_seconds=averaged(
                        results, "average_recommendation_seconds"
                    ),
                )
            )
    return rows


def run_fig9b(scale: ExperimentScale | None = None) -> list[Fig9bRow]:
    scale = scale or resolve_scale()
    records = context.history("flink", scale)
    engine = context.make_engine("flink", scale)
    rows = []
    for fraction in CURVE_FRACTIONS:
        subset = records[: max(20, int(len(records) * fraction))]
        with Timer() as timer:
            pretrain(
                subset,
                max_parallelism=engine.max_parallelism,
                n_clusters=scale.n_clusters,
                epochs=scale.gnn_epochs,
                seed=scale.seed + 2,
            )
        rows.append(Fig9bRow(n_records=len(subset), training_seconds=timer.elapsed))
    return rows


def main() -> tuple[list[Fig9aRow], list[Fig9bRow]]:
    rows_a = run_fig9a()
    print(
        format_table(
            ["query", "method", "avg recommendation time (s)"],
            [
                (r.group, r.method, f"{r.avg_recommendation_seconds:.3f}")
                for r in rows_a
            ],
            title="Fig. 9a - Online Recommendation Time",
        )
    )
    rows_b = run_fig9b()
    print()
    print(
        format_table(
            ["# history records", "pre-training time (s)"],
            [(r.n_records, f"{r.training_seconds:.1f}") for r in rows_b],
            title="Fig. 9b - Offline Pre-training Cost",
        )
    )
    return rows_a, rows_b


if __name__ == "__main__":
    main()
