"""Fig. 8 — generality evaluation on Timely Dataflow.

(a) Final total parallelism recommended for Nexmark Q3/Q5/Q8 at 10 x Wu:
StreamTune needs dramatically fewer workers (up to -83.3% on Q8 vs DS2)
because rate-based tuners divide observed rates by Timely's *inflated*
busy time (spinning workers) and over-provision, while StreamTune's
bottleneck labels come from data rates.

(b-d) CDFs of per-epoch latencies under each method's final configuration:
despite the lower parallelism, StreamTune's latency distribution remains
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments import context
from repro.experiments.campaigns import campaign
from repro.experiments.scale import ExperimentScale, resolve_scale
from repro.utils.tables import format_table

GROUPS = ("q3", "q5", "q8")
METHODS = ("DS2", "ContTune", "StreamTune")

#: Fig. 8a reference totals.
PAPER_FIG8A = {
    ("q3", "DS2"): 14, ("q3", "ContTune"): 13, ("q3", "StreamTune"): 7,
    ("q5", "DS2"): 3, ("q5", "ContTune"): 3, ("q5", "StreamTune"): 2,
    ("q8", "DS2"): 6, ("q8", "ContTune"): 5, ("q8", "StreamTune"): 1,
}

#: CDF percentiles reported for the latency comparison.
PERCENTILES = (10, 25, 50, 75, 90, 99)


@dataclass(frozen=True)
class Fig8aRow:
    group: str
    method: str
    measured_total: float
    paper_total: int | None


@dataclass(frozen=True)
class Fig8LatencyRow:
    group: str
    method: str
    percentiles: dict[int, float]


def run_fig8a(scale: ExperimentScale | None = None) -> list[Fig8aRow]:
    scale = scale or resolve_scale()
    rows = []
    for group in GROUPS:
        for method in METHODS:
            results = campaign("timely", method, group, scale)
            measured = sum(
                result.final_parallelism_at(10) for result in results
            ) / len(results)
            rows.append(
                Fig8aRow(
                    group=group,
                    method=method,
                    measured_total=measured,
                    paper_total=PAPER_FIG8A.get((group, method)),
                )
            )
    return rows


def run_latency_cdfs(scale: ExperimentScale | None = None) -> list[Fig8LatencyRow]:
    """Fig. 8b-d: per-epoch latency distribution at each final config."""
    scale = scale or resolve_scale()
    rows = []
    for group in GROUPS:
        for method in METHODS:
            results = campaign("timely", method, group, scale)
            query = context.evaluation_queries("timely", scale)[group][0]
            parallelisms = results[0].final_parallelisms_at(10)
            engine = context.make_engine("timely", scale)
            deployment = engine.deploy(
                query.flow, parallelisms, query.rates_at(10)
            )
            latencies = engine.sample_epoch_latencies(
                deployment, n_epochs=scale.n_latency_epochs
            )
            engine.stop(deployment)
            rows.append(
                Fig8LatencyRow(
                    group=group,
                    method=method,
                    percentiles={
                        p: float(np.percentile(latencies, p)) for p in PERCENTILES
                    },
                )
            )
    return rows


def main() -> tuple[list[Fig8aRow], list[Fig8LatencyRow]]:
    rows = run_fig8a()
    table = [
        (
            row.group,
            row.method,
            f"{row.measured_total:.1f}",
            row.paper_total if row.paper_total is not None else "-",
        )
        for row in rows
    ]
    print(
        format_table(
            ["query", "method", "final parallelism (measured)", "paper"],
            table,
            title="Fig. 8a - Final Parallelism at 10xWu (Timely Dataflow)",
        )
    )
    latency_rows = run_latency_cdfs()
    table = [
        (row.group, row.method)
        + tuple(f"{row.percentiles[p]:.2f}" for p in PERCENTILES)
        for row in latency_rows
    ]
    print()
    print(
        format_table(
            ["query", "method"] + [f"p{p} (s)" for p in PERCENTILES],
            table,
            title="Fig. 8b-d - Per-Epoch Latency Percentiles (Timely)",
        )
    )
    return rows, latency_rows


if __name__ == "__main__":
    main()
