"""Fig. 9 bench — online recommendation time and offline pre-training cost.

These are genuine timing benchmarks: 9a times one StreamTune recommendation
step against DS2's closed form and ContTune's GP pipeline; 9b measures
pre-training wall time as the history grows (super-linear, as in the
paper).
"""

from __future__ import annotations

import pytest

from repro.experiments import context, fig9_overhead as fig9
from repro.experiments.campaigns import campaign
from repro.workloads.rates import periodic_multipliers


@pytest.mark.parametrize("method", ["DS2", "ContTune", "StreamTune"])
def test_fig9a_single_recommendation(benchmark, scale, flink_pretrained, method):
    """Time one full tuning process on a 2-way-join query."""
    query = context.evaluation_queries("flink", scale)["2-way-join"][0]
    engine = context.make_engine("flink", scale)
    tuner = context.make_tuner(method, engine, scale)
    tuner.prepare(query)
    deployment = engine.deploy(
        query.flow, dict.fromkeys(query.flow.operator_names, 1), query.rates_at(3)
    )
    tuner.tune(deployment, query.rates_at(3))
    multipliers = iter(periodic_multipliers(n_permutations=6, seed=1))

    def one_process():
        return tuner.tune(deployment, query.rates_at(next(multipliers)))

    result = benchmark.pedantic(one_process, rounds=5, iterations=1)
    assert result.steps


def test_fig9a_campaign_averages(benchmark, flink_campaign_grid):
    scale = flink_campaign_grid
    rows = benchmark.pedantic(fig9.run_fig9a, args=(scale,), rounds=1, iterations=1)
    by_key = {(r.group, r.method): r.avg_recommendation_seconds for r in rows}
    # DS2's closed form is the cheapest online recommender everywhere.
    for group in fig9.PQP_GROUPS:
        assert by_key[(group, "DS2")] <= by_key[(group, "StreamTune")]
    print()


def test_fig9b_pretraining_cost(benchmark, scale):
    rows = benchmark.pedantic(fig9.run_fig9b, args=(scale,), rounds=1, iterations=1)
    sizes = [row.n_records for row in rows]
    times = [row.training_seconds for row in rows]
    assert sizes == sorted(sizes)
    # Cost grows with dataset size (the paper shows a super-linear curve).
    assert times[-1] > times[0]
    print()
    for row in rows:
        print(f"  {row.n_records} records -> {row.training_seconds:.1f}s")
