"""Fig. 10 bench — CPU utilisation dynamics during tuning."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig10_cpu_utilisation as fig10


def test_fig10_cpu_utilisation(benchmark, flink_campaign_grid):
    scale = flink_campaign_grid
    series = benchmark(fig10.run, scale)
    for item in series:
        trace = np.asarray(item.utilisation)
        assert len(trace) >= scale.n_rate_changes   # >= one step per change
        assert np.all((trace >= 0.0) & (trace <= 1.0))
        # The trace genuinely moves as rates change and tuning explores.
        assert np.ptp(trace) > 0.1, item.group
        assert len(item.rate_change_marks) == scale.n_rate_changes
    print()
