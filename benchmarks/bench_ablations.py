"""Extended ablation benches (DESIGN.md §6 + paper §VII).

Covers the design decisions the paper does not itself ablate: FUSE
placement, GED clustering versus a global encoder, the warm-up dataset,
the decision threshold, the extended prediction-layer zoo, and the
unseen-operator encoder study.  Shape assertions are deliberately loose —
ablations compare variants under identical small budgets.
"""

from __future__ import annotations

from repro.experiments import ablations


def test_fuse_ablation(benchmark, scale):
    rows = benchmark(ablations.run_fuse_ablation, scale)
    by_variant = {row.variant: row for row in rows}
    assert set(by_variant) == {"post-readout", "per-step"}
    for row in rows:
        assert 0.5 <= row.train_accuracy <= 1.0, row


def test_clustering_ablation(benchmark, scale):
    rows = benchmark(ablations.run_clustering_ablation, scale)
    assert len(rows) == 2
    global_row = next(row for row in rows if row.n_clusters == 1)
    clustered_row = next(row for row in rows if row.n_clusters > 1)
    # Both variants must tune successfully; clustering should not be
    # dramatically worse than the global bypass on its own history.
    assert clustered_row.holdout_accuracy >= global_row.holdout_accuracy - 0.15


def test_warmup_ablation(benchmark, scale):
    rows = benchmark(ablations.run_warmup_ablation, scale)
    by_variant = {row.warmup_rows: row for row in rows}
    assert set(by_variant) == {0, 300}
    # The warm-up should never hurt convergence badly.
    assert (
        by_variant[300].avg_reconfigurations
        <= by_variant[0].avg_reconfigurations + 1.5
    )


def test_threshold_sweep(benchmark, scale):
    rows = benchmark(ablations.run_threshold_sweep, scale)
    assert [row.threshold for row in rows] == list(ablations.THRESHOLDS)
    # More conservative thresholds can only need >= as much parallelism
    # (within one task of noise).
    conservative, default, permissive = rows
    assert conservative.final_parallelism >= permissive.final_parallelism - 1


def test_model_zoo(benchmark, scale):
    rows = benchmark(ablations.run_model_zoo, scale)
    by_kind = {row.model_kind: row for row in rows}
    assert set(by_kind) == {"svm", "xgboost", "isotonic", "nn"}
    monotone_bp = min(
        by_kind[kind].backpressure_events for kind in ("svm", "xgboost", "isotonic")
    )
    # The unconstrained NN must not beat every monotone model on
    # backpressure avoidance (the paper's Fig. 11a story).
    assert by_kind["nn"].backpressure_events >= monotone_bp


def test_encoder_ablation(benchmark, scale):
    rows = benchmark(ablations.run_encoder_ablation, scale)
    by_encoder = {row.encoder: row for row in rows}
    assert set(by_encoder) == {"one-hot", "semantic"}
    assert by_encoder["semantic"].n_heldout_operators > 0
    # What the tuner consumes is the ranking: both encoders must order
    # bottleneck configurations above safe ones on the unseen kind.  (The
    # *calibration* comparison is an honest negative result — Table I's
    # shared features already transfer; see EXPERIMENTS.md.)
    for row in rows:
        assert row.heldout_auc >= 0.6, row
    assert (
        by_encoder["semantic"].heldout_auc
        >= by_encoder["one-hot"].heldout_auc - 0.3
    )
