"""Table III bench — backpressure occurrences during tuning."""

from __future__ import annotations

from repro.experiments import table3_backpressure as table3


def test_table3_backpressure(benchmark, flink_campaign_grid):
    scale = flink_campaign_grid
    rows = benchmark(table3.run, scale)
    events = {(r.method, r.group): r.measured_events for r in rows}
    n_processes = scale.n_rate_changes

    # ZeroTune over-provisions and so stays essentially backpressure-free.
    for group in table3.PQP_GROUPS:
        assert events[("ZeroTune", group)] <= max(3, n_processes // 3)
    # StreamTune stays near zero per query (paper: exactly zero at the
    # full 120-process scale; small scales see first-visit misses).
    for group in table3.GROUPS:
        assert events[("StreamTune", group)] <= max(3, n_processes // 2), group
    # Rate-based methods trigger backpressure more overall.
    ds2_total = sum(events[("DS2", g)] for g in table3.GROUPS)
    streamtune_total = sum(events[("StreamTune", g)] for g in table3.GROUPS)
    assert streamtune_total <= ds2_total + 2

    print()
    table3.main()
