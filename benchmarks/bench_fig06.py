"""Fig. 6 bench — final parallelism recommendations at 10 x Wu (Flink).

Shape assertions follow the paper: StreamTune never needs more resources
than DS2 (within noise), and ZeroTune dwarfs everyone on PQP.
"""

from __future__ import annotations

from repro.experiments import fig6_final_parallelism as fig6


def test_fig6_final_parallelism(benchmark, flink_campaign_grid):
    scale = flink_campaign_grid
    rows = benchmark(fig6.run, scale)
    by_key = {(row.group, row.method): row.measured_total for row in rows}

    for group in fig6.FLINK_GROUPS:
        assert by_key[(group, "StreamTune")] <= by_key[(group, "DS2")] * 1.35, group
    for group in fig6.PQP_GROUPS:
        assert by_key[(group, "ZeroTune")] > 1.3 * by_key[(group, "StreamTune")], group

    print()
    fig6.main()
