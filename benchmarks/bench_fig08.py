"""Fig. 8 bench — Timely Dataflow generality evaluation."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig8_timely as fig8


def test_fig8a_final_parallelism(benchmark, timely_campaign_grid):
    scale = timely_campaign_grid
    rows = benchmark(fig8.run_fig8a, scale)
    by_key = {(r.group, r.method): r.measured_total for r in rows}

    # Paper: StreamTune needs fewer resources on Timely, with the largest
    # gap on Q8 (up to -83.3% vs DS2).  At small scales Q3/Q5 can tie, so
    # the per-group check allows a margin while Q8's gap must be real.
    for group in fig8.GROUPS:
        ceiling = 1.4 * max(by_key[(group, "DS2")], by_key[(group, "ContTune")])
        assert by_key[(group, "StreamTune")] <= ceiling, group
    assert by_key[("q8", "StreamTune")] <= 0.7 * by_key[("q8", "DS2")]

    print()


def test_fig8_latency_cdfs(benchmark, timely_campaign_grid):
    scale = timely_campaign_grid
    rows = benchmark.pedantic(
        fig8.run_latency_cdfs, args=(scale,), rounds=1, iterations=1
    )
    medians = {(r.group, r.method): r.percentiles[50] for r in rows}
    # Despite lower parallelism, StreamTune stays usable: far from the
    # 200 s saturation cap (the paper's CDFs overlap; our dead-band
    # occupancy makes the gap wider but bounded).
    for group in fig8.GROUPS:
        assert medians[(group, "StreamTune")] < 60.0, group

    print()
    fig8.main()
