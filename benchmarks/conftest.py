"""Benchmark fixtures: scale selection and shared expensive artifacts.

Benchmarks default to the ``smoke`` scale so the whole suite finishes in
minutes; set ``REPRO_SCALE=default`` (or ``paper``) for the scales that
EXPERIMENTS.md reports.  Campaign grids and pre-trained models are session
fixtures: the pytest-benchmark timings then measure the per-figure
computation, not artifact warm-up.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import context
from repro.experiments.scale import resolve_scale


@pytest.fixture(scope="session")
def scale():
    return resolve_scale(os.environ.get("REPRO_SCALE", "smoke"))


@pytest.fixture(scope="session")
def flink_pretrained(scale):
    return context.pretrained_model("flink", scale)


@pytest.fixture(scope="session")
def timely_pretrained(scale):
    return context.pretrained_model("timely", scale)


@pytest.fixture(scope="session")
def flink_campaign_grid(scale, flink_pretrained):
    """Materialise every Flink campaign the figure benches read."""
    from repro.experiments.campaigns import campaign

    groups = ("q1", "q2", "q3", "q5", "q8", "linear", "2-way-join", "3-way-join")
    for group in groups:
        for method in ("DS2", "ContTune", "StreamTune"):
            campaign("flink", method, group, scale)
    for group in ("linear", "2-way-join", "3-way-join"):
        campaign("flink", "ZeroTune", group, scale)
    return scale


@pytest.fixture(scope="session")
def timely_campaign_grid(scale, timely_pretrained):
    from repro.experiments.campaigns import campaign

    for group in ("q3", "q5", "q8"):
        for method in ("DS2", "ContTune", "StreamTune"):
            campaign("timely", method, group, scale)
    return scale
