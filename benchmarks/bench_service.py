"""Tuning-service benchmark: concurrent campaigns vs. sequential tuning.

Runs the same 8-query campaign twice —

* **baseline**: the seed repository's sequential path (one plain
  :class:`StreamTuneTuner` per query, no shared caches, duplicated-row
  fitting), exactly what ``repro.experiments.campaigns.run_campaign``
  executes today;
* **service**: one :class:`repro.service.TuningService` run (worker pool,
  shared GED/assignment/warm-up/distillation/embedding caches,
  weighted-deduplicated warm-started fitting)

— and reports the wall-clock ratio.  It also verifies the service's
determinism contract: the concurrent run must be **bit-identical** (every
per-step parallelism map of every tuning process) to the same service
executed sequentially, i.e. concurrency must never change a
recommendation.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full: asserts >= 3x
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # CI-sized, no ratio gate

The speedup on a single-core machine comes from the service-only work
elimination (caches + weighted fitting); multi-core machines add pool
parallelism on top.  The two paths make near-identical tuning decisions
(the weighted fit optimises the same objective; last-ulp float drift can
move individual recommendations by one degree) — the final table compares
their quality metrics side by side.
"""

from __future__ import annotations

import argparse
import time

from repro.api.events import CampaignFinished, MetricsAggregator
from repro.experiments import context
from repro.experiments.campaigns import run_campaign
from repro.experiments.scale import resolve_scale
from repro.service import CampaignSpec, TuningService
from repro.utils.tables import format_table
from repro.workloads.rates import periodic_multipliers

FULL_GROUPS = ("q1", "q2", "q3", "q5", "q8", "linear", "2-way-join", "3-way-join")
SMOKE_GROUPS = ("q1", "q3", "linear", "2-way-join")


def _campaign_steps(result) -> list[list[dict[str, int]]]:
    return [[step.parallelisms for step in process.steps] for process in result.processes]


def _quality(results) -> tuple[int, int, int]:
    backpressure = sum(r.total_backpressure_events for r in results)
    converged = sum(1 for r in results for p in r.processes if p.converged)
    parallelism = sum(p.final_total_parallelism for r in results for p in r.processes)
    return backpressure, converged, parallelism


def run_bench(
    smoke: bool = False,
    backend: str = "thread",
    max_workers: int | None = None,
) -> dict:
    scale = resolve_scale("smoke")
    engine_name = "flink"
    groups = SMOKE_GROUPS if smoke else FULL_GROUPS
    n_rate_changes = 2 if smoke else 8
    evaluation = context.evaluation_queries(engine_name, scale)
    queries = [evaluation[group][0] for group in groups]
    multipliers = periodic_multipliers(n_permutations=1, seed=scale.seed)[:n_rate_changes]

    print(f"preparing pre-trained model ({scale.name} scale) ...", flush=True)
    pretrained = context.pretrained_model(engine_name, scale)

    # -- baseline: the sequential seed path --------------------------------
    started = time.perf_counter()
    baseline = []
    for query in queries:
        engine = context.make_engine(engine_name, scale)
        tuner = context.make_tuner("StreamTune", engine, scale)
        baseline.append(run_campaign(engine, tuner, query, multipliers))
    baseline_seconds = time.perf_counter() - started

    # -- service: concurrent + cached + deduplicated fitting ---------------
    specs = [
        CampaignSpec(
            query=query,
            multipliers=tuple(multipliers),
            engine=engine_name,
            engine_seed=scale.seed,
            seed=scale.seed + 4,
        )
        for query in queries
    ]
    # The service path runs through the observable event stream (run() is a
    # thin wrapper over the same stream); the aggregator doubles as a check
    # that streaming a fleet costs nothing measurable over running it blind.
    service = TuningService(pretrained, backend=backend, max_workers=max_workers)
    metrics = MetricsAggregator()
    concurrent_by_index: dict[int, object] = {}
    started = time.perf_counter()
    for event in service.stream(specs):
        metrics(event)
        if isinstance(event, CampaignFinished):
            concurrent_by_index[event.index] = event.outcome
    service_seconds = time.perf_counter() - started
    concurrent = [concurrent_by_index[index] for index in range(len(specs))]

    # -- determinism: concurrency must not change any recommendation -------
    reference = TuningService(pretrained, backend="sequential").run(specs)
    concurrent_steps = [_campaign_steps(o.result) for o in concurrent]
    reference_steps = [_campaign_steps(o.result) for o in reference]
    identical = concurrent_steps == reference_steps

    speedup = baseline_seconds / service_seconds if service_seconds > 0 else float("inf")
    base_bp, base_conv, base_par = _quality(baseline)
    svc_bp, svc_conv, svc_par = _quality([o.result for o in concurrent])
    n_processes = sum(len(r.processes) for r in baseline)

    print()
    print(
        format_table(
            ["path", "wall", "bp events", "converged", "sum final parallelism"],
            [
                ("sequential baseline", f"{baseline_seconds:.2f}s",
                 base_bp, f"{base_conv}/{n_processes}", base_par),
                (f"service ({backend})", f"{service_seconds:.2f}s",
                 svc_bp, f"{svc_conv}/{n_processes}", svc_par),
            ],
            title=f"{len(queries)}-query campaign, {len(multipliers)} rate changes each",
        )
    )
    print(f"speedup: {speedup:.2f}x")
    print(f"concurrent == sequential service (bit-identical steps): {identical}")
    summary = metrics.summary()
    print(
        f"event stream: {metrics.n_events} events "
        f"({summary['steps']} steps, {summary['reconfigurations']} reconfigs "
        f"across {summary['campaigns']} campaigns)"
    )
    stats = service.cache_stats()
    print(
        "cache hits/misses — "
        + ", ".join(
            f"{kind}: {v.get('hits', 0)}h/{v.get('misses', 0)}m"
            for kind, v in stats.items()
        )
    )

    assert identical, "concurrent service diverged from its sequential execution"
    assert metrics.counts.get("CampaignStarted") == len(specs), metrics.counts
    assert metrics.counts.get("CampaignFinished") == len(specs), metrics.counts
    assert summary["steps"] == len(specs) * len(multipliers), summary
    # Recommendation parity with the plain baseline: the weighted fit solves
    # the same optimisation problem, so per-query tuning outcomes must agree
    # on everything decision-relevant (convergence, backpressure burden,
    # provisioned capacity) even where float-level drift moves an individual
    # degree by one.
    assert svc_conv == base_conv, (
        f"convergence changed: baseline {base_conv}, service {svc_conv}"
    )
    assert abs(svc_bp - base_bp) <= max(3, base_bp // 4), (
        f"backpressure events diverged: baseline {base_bp}, service {svc_bp}"
    )
    assert abs(svc_par - base_par) <= 0.05 * base_par, (
        f"final parallelism diverged: baseline {base_par}, service {svc_par}"
    )
    if not smoke:
        assert speedup >= 3.0, (
            f"service speedup {speedup:.2f}x is below the required 3x"
        )
    return {
        "speedup": speedup,
        "identical": identical,
        "baseline_seconds": baseline_seconds,
        "service_seconds": service_seconds,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run (4 queries, 2 rate changes, no speedup gate)",
    )
    parser.add_argument(
        "--backend", choices=("thread", "process"), default="thread"
    )
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args()
    run_bench(smoke=args.smoke, backend=args.backend, max_workers=args.workers)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
