"""Fig. 11 bench — prediction-layer ablation and GED acceleration.

11b is the headline micro-benchmark: AStar+-LSa similarity search versus
directly computing exact GED for every pair (paper: -99.65% at 400 DAGs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.center import similarity_center
from repro.experiments import fig11_ablation as fig11


def test_fig11a_model_ablation(benchmark, scale, flink_pretrained):
    rows = benchmark.pedantic(fig11.run_fig11a, args=(scale,), rounds=1, iterations=1)
    by_key = {(r.group, r.method): r.measured_avg_reconfigurations for r in rows}
    nn_avg = np.mean([by_key[(g, "StreamTune-nn")] for g in fig11.ABLATION_GROUPS])
    svm_avg = np.mean([by_key[(g, "StreamTune-svm")] for g in fig11.ABLATION_GROUPS])
    xgb_avg = np.mean([by_key[(g, "StreamTune-xgboost")] for g in fig11.ABLATION_GROUPS])
    # Paper: the monotone layers beat the unconstrained NN.  The short
    # smoke campaigns resolve this against the *best* monotone layer only
    # (the two monotone layers are statistically tied with each other);
    # larger scales must reproduce the full ordering.
    assert nn_avg >= min(svm_avg, xgb_avg)
    if scale.name != "smoke":
        assert nn_avg >= svm_avg
        assert nn_avg >= xgb_avg
    print(f"\navg reconfigs: NN={nn_avg:.2f} SVM={svm_avg:.2f} XGB={xgb_avg:.2f}")


@pytest.mark.parametrize("n_graphs", [40, 80])
def test_fig11b_center_direct_vs_lsa(benchmark, n_graphs):
    graphs = fig11._center_dataset(n_graphs, seed=123)

    lsa = benchmark(similarity_center, graphs, fig11.TAU, None, None, True)
    direct = similarity_center(graphs, tau=fig11.TAU, use_lsa=False)
    assert lsa == direct


def test_fig11b_speedup_table(benchmark, scale):
    rows = benchmark.pedantic(fig11.run_fig11b, args=(scale,), rounds=1, iterations=1)
    for row in rows:
        # LSa must be dramatically faster than direct exact GED.
        assert row.lsa_seconds < row.direct_seconds
        assert row.reduction_percent > 50.0
    print()
    for row in rows:
        print(
            f"  {row.n_graphs} DAGs: direct {row.direct_seconds:.2f}s, "
            f"LSa {row.lsa_seconds:.2f}s ({row.reduction_percent:.1f}% faster)"
        )
