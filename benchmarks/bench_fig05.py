"""Fig. 5 bench — node-count distribution of the pre-training DAGs."""

from __future__ import annotations

import pytest

from repro.experiments import fig5_history_distribution as fig5


def test_fig5_distribution(benchmark, scale):
    result = benchmark(fig5.run, scale)
    # The constructed corpus reproduces the published ratios exactly.
    for n, paper_pct in fig5.PAPER_DISTRIBUTION.items():
        assert result.corpus_percentages[n] == pytest.approx(paper_pct, abs=0.01)
    # The generated history tracks the corpus distribution.
    for n in fig5.PAPER_DISTRIBUTION:
        assert result.history_percentages[n] == pytest.approx(
            result.corpus_percentages[n], abs=5.0
        )
    print()
    fig5.main()
