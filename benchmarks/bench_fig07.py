"""Fig. 7 bench — reconfiguration counts and the unseen-query case study."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig7_reconfigurations as fig7


def test_fig7a_reconfigurations(benchmark, flink_campaign_grid):
    scale = flink_campaign_grid
    rows = benchmark(fig7.run_fig7a, scale)
    by_key = {(r.group, r.method): r.measured_avg_reconfigurations for r in rows}

    ds2_avg = np.mean([by_key[(g, "DS2")] for g in fig7.GROUPS])
    streamtune_avg = np.mean([by_key[(g, "StreamTune")] for g in fig7.GROUPS])
    # Paper: DS2 needs clearly more reconfigurations on average.
    assert ds2_avg >= streamtune_avg
    # Paper: StreamTune beats ContTune on the complex PQP templates.
    pqp = ("2-way-join", "3-way-join")
    assert np.mean([by_key[(g, "StreamTune")] for g in pqp]) <= np.mean(
        [by_key[(g, "ContTune")] for g in pqp]
    ) * 1.25

    print()


def test_fig7b_case_study(benchmark, scale, flink_pretrained):
    case = benchmark.pedantic(fig7.run_fig7b, args=(scale,), rounds=1, iterations=1)
    # Tuning time per change = inference + 10-minute stabilisation waits;
    # the paper observes roughly 10-40 minutes.
    assert all(5.0 <= minutes <= 90.0 for minutes in case.tuning_minutes)
    print(f"\naverage tuning time: {case.average_minutes:.1f} min (paper ~27)")
