"""Fig. 4 bench — parallelism vs processing ability sweep.

Regenerates the paper's motivating measurement: both PA curves and the
bottleneck thresholds (paper: filter = 14, window = 10).
"""

from __future__ import annotations

from repro.experiments import fig4_processing_ability as fig4


def test_fig4_processing_ability(benchmark):
    result = benchmark(fig4.run)
    assert result.filter_threshold == 14
    assert result.window_threshold == 10
    assert all(b > a for a, b in zip(result.filter_pa, result.filter_pa[1:]))
    assert all(b > a for a, b in zip(result.window_pa, result.window_pa[1:]))
    print()
    fig4.main()
