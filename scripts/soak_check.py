"""Soak-episode assertions over `repro soak` report files (CI helper).

Two subcommands:

* ``verify REPORT`` — assert one soak report upholds the standing
  contract: the episode finished without error, every cell completed
  exactly once with status ``ok``, zero invariant or stream violations,
  every scheduled kill was executed, and (with ``--kills-per-worker``)
  every worker slot was killed at least that many times.
* ``identical REPORT_A REPORT_B`` — assert two same-seed episodes
  rendered the identical deterministic view (schedule, kills, statuses,
  verdicts), i.e. the soak is replayable bit-for-bit.

Exit status 0 when the contract holds, 1 with a diff summary otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

#: Report fields the host's scheduler may perturb; everything else must
#: replay bit-for-bit across same-seed episodes.
NONDETERMINISTIC_FIELDS = (
    "restarts",
    "unplanned_respawns",
    "swept_leases",
    "wall_seconds",
    "record_path",
    "reference_path",
)


def _load(path: str) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _deterministic_view(report: dict) -> dict:
    return {
        key: value
        for key, value in report.items()
        if key not in NONDETERMINISTIC_FIELDS
    }


def _verify(args: argparse.Namespace) -> int:
    report = _load(args.report)
    failures = []
    if report.get("error") is not None:
        failures.append(f"episode errored: {report['error']}")
    if not report.get("ok", False):
        failures.append("report verdict is not ok")
    for failure in report.get("invariant_failures", []):
        failures.append(f"invariant violated: {failure}")
    stream = report.get("stream_failures")
    if stream is None:
        failures.append("no sequential reference comparison was run")
    else:
        for failure in stream:
            failures.append(f"stream mismatch: {failure}")
    if report.get("shm_leaked"):
        failures.append(f"/dev/shm leak(s): {report['shm_leaked']}")
    statuses = report.get("statuses", {})
    bad = {cell: s for cell, s in statuses.items() if s != "ok"}
    if bad:
        failures.append(f"non-ok cell status(es): {bad}")
    if len(statuses) != report.get("n_cells"):
        failures.append(
            f"{len(statuses)} completed cell(s), expected {report.get('n_cells')}"
        )
    schedule = report.get("schedule", [])
    kills = report.get("kills", [])
    if kills != schedule:
        failures.append(
            f"executed kills differ from the schedule: "
            f"{len(kills)} kill(s) vs {len(schedule)} scheduled"
        )
    if args.kills_per_worker is not None:
        per_slot = Counter(kill["slot"] for kill in kills)
        for slot in range(report.get("workers", 0)):
            if per_slot.get(slot, 0) < args.kills_per_worker:
                failures.append(
                    f"worker slot {slot} was killed {per_slot.get(slot, 0)} "
                    f"time(s), expected >= {args.kills_per_worker}"
                )
    if failures:
        for failure in failures:
            print(f"soak check FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"soak check ok: {report['n_cells']} cell(s) exactly-once across "
        f"{report['workers']} worker(s), {len(kills)} kill(s) executed, "
        "stream bit-identical to the sequential reference"
    )
    return 0


def _identical(args: argparse.Namespace) -> int:
    view_a = _deterministic_view(_load(args.report_a))
    view_b = _deterministic_view(_load(args.report_b))
    if view_a != view_b:
        keys = sorted(
            key
            for key in set(view_a) | set(view_b)
            if view_a.get(key) != view_b.get(key)
        )
        print(
            f"soak replay FAILED: deterministic views differ in {keys}",
            file=sys.stderr,
        )
        return 1
    print("soak replay ok: deterministic views are identical")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser(
        "verify", help="assert one soak report upholds the standing contract"
    )
    verify.add_argument("report")
    verify.add_argument(
        "--kills-per-worker", type=int, default=None, metavar="N",
        help="additionally require every worker slot was killed >= N times",
    )
    verify.set_defaults(func=_verify)

    identical = sub.add_parser(
        "identical",
        help="assert two same-seed reports rendered the same deterministic view",
    )
    identical.add_argument("report_a")
    identical.add_argument("report_b")
    identical.set_defaults(func=_identical)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
