"""Distributed-fleet smoke checks for recorded event logs (CI helper).

One subcommand over ``--record`` JSONL logs:

* ``compare SEQUENTIAL DISTRIBUTED`` — assert the distributed run
  executed the exact same campaign set as the single-host run, recorded
  no failures, stamped every campaign event with the ``distributed``
  backend, and produced result payloads bit-identical to the sequential
  run's (wall-clock fields excluded: ``wall_seconds`` and per-step
  ``recommendation_seconds`` measure the host, not the tuner).

Exit status 0 when the contract holds, 1 with a diff summary otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# The checks themselves live in the library (the soak supervisor asserts
# the same contract after every churn episode); this script is the thin
# CI shell.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults.invariants import (  # noqa: E402 — after the path bootstrap
    compare_event_streams,
    load_event_log,
)


def _compare(args: argparse.Namespace) -> int:
    sequential = load_event_log(args.sequential)
    distributed = load_event_log(args.distributed)
    failures = compare_event_streams(sequential, distributed)
    if failures:
        for failure in failures:
            print(f"distributed check FAILED: {failure}", file=sys.stderr)
        return 1
    finished = sum(1 for r in distributed if r["event"] == "CampaignFinished")
    print(
        f"distributed check ok: {finished} campaign(s) "
        "bit-identical to the sequential run"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser(
        "compare",
        help="assert SEQUENTIAL and DISTRIBUTED logs hold identical results",
    )
    compare.add_argument("sequential")
    compare.add_argument("distributed")
    compare.set_defaults(func=_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
