"""Distributed-fleet smoke checks for recorded event logs (CI helper).

One subcommand over ``--record`` JSONL logs:

* ``compare SEQUENTIAL DISTRIBUTED`` — assert the distributed run
  executed the exact same campaign set as the single-host run, recorded
  no failures, stamped every campaign event with the ``distributed``
  backend, and produced result payloads bit-identical to the sequential
  run's (wall-clock fields excluded: ``wall_seconds`` and per-step
  ``recommendation_seconds`` measure the host, not the tuner).

Exit status 0 when the contract holds, 1 with a diff summary otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _lines(path: Path) -> list[dict]:
    records = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def _deterministic_result(record: dict) -> dict:
    result = json.loads(json.dumps(record["result"]))   # deep copy
    for process in result["processes"]:
        for step in process["steps"]:
            step.pop("recommendation_seconds", None)
    return result


def _results_by_key(records: list[dict]) -> dict[str, dict]:
    results = {}
    for record in records:
        if record["event"] == "CampaignFinished":
            key = f"{record.get('scenario') or ''}/{record.get('cell_key') or record['campaign']}"
            results[key] = _deterministic_result(record)
    return results


def _compare(args: argparse.Namespace) -> int:
    sequential = _lines(Path(args.sequential))
    distributed = _lines(Path(args.distributed))
    failures = []

    if any(r["event"] == "CampaignFailed" for r in distributed):
        failures.append("distributed run recorded CampaignFailed event(s)")
    campaign_events = [
        r for r in distributed if r["event"].startswith("Campaign")
    ]
    off_backend = sorted({
        r["backend"] for r in campaign_events
        if r.get("backend") not in (None, "distributed")
    })
    if off_backend:
        failures.append(
            f"campaign events carry non-distributed backend(s): {off_backend}"
        )
    seqs = [r["seq"] for r in distributed]
    if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
        failures.append("distributed event seq is not strictly increasing")

    seq_results = _results_by_key(sequential)
    dist_results = _results_by_key(distributed)
    if set(seq_results) != set(dist_results):
        failures.append(
            "campaign sets differ: "
            f"only-sequential={sorted(set(seq_results) - set(dist_results))}, "
            f"only-distributed={sorted(set(dist_results) - set(seq_results))}"
        )
    else:
        for key in sorted(seq_results):
            if seq_results[key] != dist_results[key]:
                failures.append(f"result payload differs for {key}")

    if failures:
        for failure in failures:
            print(f"distributed check FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"distributed check ok: {len(dist_results)} campaign(s) "
        "bit-identical to the sequential run"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser(
        "compare",
        help="assert SEQUENTIAL and DISTRIBUTED logs hold identical results",
    )
    compare.add_argument("sequential")
    compare.add_argument("distributed")
    compare.set_defaults(func=_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
