"""Kill-and-resume smoke checks for recorded event logs (CI helper).

Two subcommands over ``--record`` JSONL logs:

* ``truncate SRC DST`` — keep the prefix of ``SRC`` up to and including
  its first ``CampaignFinished`` line (what a fleet killed after its
  first completed campaign leaves behind) and write it to ``DST``.
* ``compare FULL RESUMED --expect-skipped K`` — assert the resumed run's
  log records exactly ``K`` skipped campaigns, executed the rest, and
  that every campaign's result payload is bit-identical to the
  uninterrupted run's (wall-clock fields excluded: ``wall_seconds`` and
  per-step ``recommendation_seconds`` measure the host, not the tuner).

Exit status 0 when the contract holds, 1 with a diff summary otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _lines(path: Path) -> list[dict]:
    records = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def _truncate(args: argparse.Namespace) -> int:
    kept = []
    finished = 0
    for record in _lines(Path(args.source)):
        kept.append(record)
        if record["event"] == "CampaignFinished":
            finished = 1
            break
    if not finished:
        print(f"{args.source}: no CampaignFinished line to truncate after",
              file=sys.stderr)
        return 1
    with open(args.target, "w", encoding="utf-8") as handle:
        for record in kept:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"kept {len(kept)} line(s) of {args.source} -> {args.target}")
    return 0


def _deterministic_result(record: dict) -> dict:
    result = json.loads(json.dumps(record["result"]))   # deep copy
    for process in result["processes"]:
        for step in process["steps"]:
            step.pop("recommendation_seconds", None)
    return result


def _results_by_key(records: list[dict]) -> dict[str, dict]:
    results = {}
    for record in records:
        if record["event"] == "CampaignFinished":
            key = f"{record.get('scenario') or ''}/{record.get('cell_key') or record['campaign']}"
            results[key] = _deterministic_result(record)
    return results


def _compare(args: argparse.Namespace) -> int:
    full = _lines(Path(args.full))
    resumed = _lines(Path(args.resumed))
    failures = []

    n_skipped = sum(1 for r in resumed if r["event"] == "CampaignSkipped")
    if n_skipped != args.expect_skipped:
        failures.append(
            f"expected {args.expect_skipped} CampaignSkipped, got {n_skipped}"
        )
    n_campaigns = sum(1 for r in full if r["event"] == "CampaignFinished")
    n_started = sum(1 for r in resumed if r["event"] == "CampaignStarted")
    if n_started != n_campaigns - args.expect_skipped:
        failures.append(
            f"resumed run executed {n_started} campaign(s), expected "
            f"{n_campaigns - args.expect_skipped} (= {n_campaigns} total - "
            f"{args.expect_skipped} skipped)"
        )
    if any(r["event"] == "CampaignFailed" for r in resumed):
        failures.append("resumed run recorded CampaignFailed event(s)")

    full_results = _results_by_key(full)
    resumed_results = _results_by_key(resumed)
    if set(full_results) != set(resumed_results):
        failures.append(
            "campaign sets differ: "
            f"only-full={sorted(set(full_results) - set(resumed_results))}, "
            f"only-resumed={sorted(set(resumed_results) - set(full_results))}"
        )
    else:
        for key in sorted(full_results):
            if full_results[key] != resumed_results[key]:
                failures.append(f"result payload differs for {key}")

    if failures:
        for failure in failures:
            print(f"resume check FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"resume check ok: {len(full_results)} campaign(s) bit-identical, "
        f"{n_skipped} skipped, {n_started} re-executed"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    truncate = sub.add_parser(
        "truncate", help="keep SRC up to its first CampaignFinished"
    )
    truncate.add_argument("source")
    truncate.add_argument("target")
    truncate.set_defaults(func=_truncate)

    compare = sub.add_parser(
        "compare", help="assert FULL and RESUMED logs hold identical results"
    )
    compare.add_argument("full")
    compare.add_argument("resumed")
    compare.add_argument("--expect-skipped", type=int, default=1)
    compare.set_defaults(func=_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
