"""Benchmark-matrix report checks (CI helper).

Two subcommands over ``repro matrix`` summary reports:

* ``validate REPORT [--min-cells N] [--expect-chaos]`` — assert the
  report matches the ``repro.matrix/v1`` schema, covers at least ``N``
  cells, and (with ``--expect-chaos``) contains at least one
  chaos-enabled cell.
* ``compare A B`` — assert two reports of the same grid (e.g. thread vs
  distributed backends) are bit-identical in their deterministic view
  (backend and wall-clock fields excluded: they measure the host, not
  the tuner).

Exit status 0 when the contract holds, 1 with a diff summary otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scenarios import matrix_determinism_view, validate_matrix_report  # noqa: E402


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _cmd_validate(args: argparse.Namespace) -> int:
    report = _load(args.report)
    try:
        validate_matrix_report(report)
    except ValueError as error:
        print(f"matrix_check: {args.report}: {error}", file=sys.stderr)
        return 1
    if len(report["cells"]) < args.min_cells:
        print(
            f"matrix_check: {args.report} covers {len(report['cells'])} "
            f"cell(s), expected >= {args.min_cells}",
            file=sys.stderr,
        )
        return 1
    if args.expect_chaos:
        chaotic = [c for c in report["cells"] if c["chaos"] != "none"]
        if not chaotic:
            print(
                f"matrix_check: {args.report} has no chaos-enabled cells",
                file=sys.stderr,
            )
            return 1
    print(
        f"matrix_check: {args.report} ok — {report['n_scenarios']} "
        f"scenario(s), {report['n_campaigns']} campaign cell(s)"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    left, right = _load(args.a), _load(args.b)
    for path, report in ((args.a, left), (args.b, right)):
        try:
            validate_matrix_report(report)
        except ValueError as error:
            print(f"matrix_check: {path}: {error}", file=sys.stderr)
            return 1
    view_left = matrix_determinism_view(left)
    view_right = matrix_determinism_view(right)
    if view_left != view_right:
        for row_a, row_b in zip(view_left["cells"], view_right["cells"]):
            if row_a != row_b:
                diff = {
                    key: (row_a.get(key), row_b.get(key))
                    for key in sorted(set(row_a) | set(row_b))
                    if row_a.get(key) != row_b.get(key)
                }
                print(
                    f"matrix_check: cell {row_a.get('scenario')!r} "
                    f"differs: {diff}",
                    file=sys.stderr,
                )
        print(
            f"matrix_check: {args.a} and {args.b} disagree in their "
            "deterministic view",
            file=sys.stderr,
        )
        return 1
    print(
        f"matrix_check: {args.a} == {args.b} "
        f"({len(view_left['cells'])} cell(s), deterministic view)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="matrix_check")
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser("validate", help="schema-check one report")
    validate.add_argument("report")
    validate.add_argument("--min-cells", type=int, default=1)
    validate.add_argument("--expect-chaos", action="store_true")
    validate.set_defaults(func=_cmd_validate)

    compare = sub.add_parser(
        "compare", help="deterministic-view equality of two reports"
    )
    compare.add_argument("a")
    compare.add_argument("b")
    compare.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
