"""GED invariants: identity, cross-algorithm symmetry, cache bit-identity."""

from __future__ import annotations

import pytest

from repro.ged import GEDCache, astar_lsa_ged, beam_ged, exact_ged
from repro.service.cache import SharedGEDCache
from tests.conftest import build_diamond_flow, build_linear_flow, build_window_flow


FLOWS = {
    "linear": build_linear_flow,
    "diamond": build_diamond_flow,
    "window": build_window_flow,
}
ALGORITHMS = {
    "exact": exact_ged,
    "astar_lsa": astar_lsa_ged,
    "beam": lambda a, b: beam_ged(a, b, beam_width=64),
}


class TestIdentity:
    @pytest.mark.parametrize("flow_name", sorted(FLOWS))
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_self_distance_is_zero(self, flow_name, algorithm):
        flow = FLOWS[flow_name]()
        assert ALGORITHMS[algorithm](flow, flow) == 0.0

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_structural_copy_distance_is_zero(self, algorithm):
        # Same structure under different operator names is still identity.
        a = build_linear_flow("left_name")
        b = build_linear_flow("right_name")
        assert ALGORITHMS[algorithm](a, b) == 0.0


class TestSymmetry:
    PAIRS = [("linear", "diamond"), ("linear", "window"), ("diamond", "window")]

    @pytest.mark.parametrize("pair", PAIRS)
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_symmetric(self, pair, algorithm):
        a, b = FLOWS[pair[0]](), FLOWS[pair[1]]()
        forward = ALGORITHMS[algorithm](a, b)
        backward = ALGORITHMS[algorithm](b, a)
        assert forward == pytest.approx(backward)

    @pytest.mark.parametrize("pair", PAIRS)
    def test_algorithms_agree_on_small_graphs(self, pair):
        a, b = FLOWS[pair[0]](), FLOWS[pair[1]]()
        exact = exact_ged(a, b)
        assert astar_lsa_ged(a, b) == pytest.approx(exact)
        # Beam search is an upper bound that reaches exactness when wide.
        assert beam_ged(a, b, beam_width=64) == pytest.approx(exact)
        assert beam_ged(a, b, beam_width=1) >= exact - 1e-9


class TestCacheBitIdentity:
    def test_ged_cache_hit_equals_cold_computation(self):
        a, b = build_linear_flow(), build_diamond_flow()
        cache = GEDCache()
        cold = cache.distance(a, b)
        assert cache.misses == 1
        warm = cache.distance(a, b)
        assert cache.hits == 1
        # Bit-identical, not approximately equal.
        assert warm == cold
        assert astar_lsa_ged(a, b) == cold

    def test_shared_cache_matches_plain_cache(self):
        flows = [build_linear_flow(), build_diamond_flow(), build_window_flow()]
        plain, shared = GEDCache(), SharedGEDCache()
        for x in flows:
            for y in flows:
                assert shared.distance(x, y) == plain.distance(x, y)
        # Second sweep is all hits and returns the same bits.
        before = shared.misses
        for x in flows:
            for y in flows:
                assert shared.distance(x, y) == plain.distance(x, y)
        assert shared.misses == before

    def test_shared_cache_within_agrees_with_distance(self):
        a, b = build_linear_flow(), build_window_flow()
        shared = SharedGEDCache()
        distance = shared.distance(a, b)
        assert shared.within(a, b, distance)
        assert not shared.within(a, b, distance - 1.0)
        assert shared.within(a, a, 0.0)
