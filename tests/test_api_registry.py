"""Tests for the repro.api component registries."""

from __future__ import annotations

import pytest

from repro.api import (
    ENGINES,
    MODELS,
    TUNERS,
    WORKLOADS,
    ParamSpec,
    Registry,
    RegistryError,
    TunerResources,
    UnknownComponentError,
    build_engine,
    build_prediction_model,
    build_tuner,
    resolve_query,
)
from repro.baselines import ContTuneTuner, DS2Tuner, OracleTuner
from repro.engines import FlinkCluster, SchedulingAwareTimely, TimelyCluster
from repro.engines.faults import FaultInjectingFlink
from repro.models import MonotonicGBDT, MonotonicSVM, make_prediction_model


class TestRegistryMechanics:
    def _fresh(self) -> Registry:
        registry = Registry("widget")

        @registry.register(
            "gear",
            params=(
                ParamSpec("teeth", int, 8, help="tooth count"),
                ParamSpec("finish", str, "matte", choices=("matte", "gloss")),
            ),
            aliases=("cog",),
        )
        def _build(teeth=8, finish="matte"):
            """A gear."""
            return ("gear", teeth, finish)

        return registry

    def test_create_with_defaults_and_aliases(self):
        registry = self._fresh()
        assert registry.create("gear") == ("gear", 8, "matte")
        assert registry.create("cog", teeth=12) == ("gear", 12, "matte")
        assert "cog" in registry
        assert registry.names() == ("gear",)

    def test_unknown_name_lists_alternatives_and_suggests(self):
        registry = self._fresh()
        with pytest.raises(UnknownComponentError) as exc_info:
            registry.create("gearr")
        message = str(exc_info.value)
        assert "did you mean 'gear'" in message
        assert "cog" in message and "gear" in message

    def test_unknown_error_is_both_keyerror_and_valueerror(self):
        registry = self._fresh()
        with pytest.raises(KeyError):
            registry.entry("nope")
        with pytest.raises(ValueError):
            registry.entry("nope")

    def test_unknown_parameter_rejected_with_accepted_list(self):
        registry = self._fresh()
        with pytest.raises(RegistryError, match="teeth"):
            registry.create("gear", diameter=3)

    def test_parameter_type_checked(self):
        registry = self._fresh()
        with pytest.raises(RegistryError, match="expects int"):
            registry.create("gear", teeth="many")

    def test_choices_violation_suggests_alternatives(self):
        registry = self._fresh()
        with pytest.raises(UnknownComponentError, match="matte"):
            registry.create("gear", finish="glossy")

    def test_duplicate_registration_rejected(self):
        registry = self._fresh()
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("gear")(lambda: None)
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("cog")(lambda: None)

    def test_required_parameter_enforced(self):
        registry = Registry("thing")

        from repro.api import REQUIRED

        @registry.register("x", params=(ParamSpec("value", int, REQUIRED),))
        def _build(value):
            return value

        with pytest.raises(RegistryError, match="requires parameter 'value'"):
            registry.create("x")
        assert registry.create("x", value=3) == 3

    def test_describe_lists_components_and_params(self):
        text = self._fresh().describe()
        assert "gear" in text and "teeth" in text and "cog" in text


class TestEngineRegistry:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("flink", FlinkCluster),
            ("timely", TimelyCluster),
            ("timely-scheduled", SchedulingAwareTimely),
            ("scheduling-timely", SchedulingAwareTimely),
            ("flink-faulty", FaultInjectingFlink),
        ],
    )
    def test_known_engines(self, name, cls):
        engine = build_engine(name, seed=3)
        assert isinstance(engine, cls)

    def test_engine_parameters_forwarded(self):
        engine = build_engine("flink", seed=3, task_managers=4, slots_per_task_manager=3)
        assert engine.max_parallelism == 12
        timely = build_engine("timely", seed=3, max_parallelism=5)
        assert timely.max_parallelism == 5

    def test_unknown_engine_lists_alternatives(self):
        with pytest.raises(UnknownComponentError, match="flink"):
            ENGINES.create("spark")

    def test_seeded_engines_are_deterministic(self):
        a, b = build_engine("flink", seed=9), build_engine("flink", seed=9)
        assert a.max_parallelism == b.max_parallelism


class TestTunerRegistry:
    def test_baselines_need_no_resources(self, flink):
        assert isinstance(build_tuner("ds2", flink), DS2Tuner)
        assert isinstance(build_tuner("ContTune", flink), ContTuneTuner)
        assert isinstance(build_tuner("Oracle", flink), OracleTuner)

    def test_streamtune_via_resources(self, flink, tiny_pretrained):
        resources = TunerResources(pretrained=lambda: tiny_pretrained)
        tuner = build_tuner("streamtune", flink, resources, seed=5)
        assert tuner.name == "StreamTune"
        assert tuner.seed == 5
        assert tuner.model_kind == "svm"

    def test_streamtune_ablation_spelling_sets_model_kind(self, flink, tiny_pretrained):
        resources = TunerResources(pretrained=lambda: tiny_pretrained)
        tuner = build_tuner("StreamTune-xgboost", flink, resources, seed=5)
        assert tuner.model_kind == "xgboost"

    def test_streamtune_without_pretrained_is_actionable(self, flink):
        with pytest.raises(ValueError, match="pre-trained"):
            build_tuner("streamtune", flink, TunerResources(), seed=5)

    def test_streamtune_rejects_unknown_layer_early(self, flink, tiny_pretrained):
        resources = TunerResources(pretrained=lambda: tiny_pretrained)
        with pytest.raises(UnknownComponentError, match="svm"):
            build_tuner("streamtune", flink, resources, model_kind="forest")

    def test_unknown_tuner_lists_alternatives(self, flink):
        with pytest.raises(UnknownComponentError) as exc_info:
            TUNERS.create("ds3", flink)
        assert "ds2" in str(exc_info.value)


class TestWorkloadRegistry:
    def test_resolve_nexmark(self):
        assert resolve_query("q5", "flink").name == "nexmark_q5_flink"
        assert resolve_query("Q5", "timely").name == "nexmark_q5_timely"

    def test_resolve_pqp(self):
        assert resolve_query("2-way-join/3", "flink").name.startswith("pqp_2way")

    def test_unknown_template_is_keyerror_with_alternatives(self):
        with pytest.raises(KeyError, match="2-way-join"):
            resolve_query("4-way/0", "flink")

    def test_malformed_pqp_index(self):
        with pytest.raises(ValueError, match="integer index"):
            resolve_query("2-way-join/x", "flink")

    def test_pqp_index_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            WORKLOADS.create("pqp", template="linear", index=10_000)

    def test_unknown_nexmark_name_lists_queries(self):
        with pytest.raises(UnknownComponentError, match="q5"):
            resolve_query("q7", "flink")

    def test_engine_variants_resolve_their_family_workloads(self):
        from repro.api import engine_family

        assert engine_family("flink-faulty") == "flink"
        assert engine_family("scheduling-timely") == "timely"
        # Variant engines bind the base family's rate units.
        assert resolve_query("q5", "flink-faulty").name == "nexmark_q5_flink"
        assert resolve_query("q5", "timely-scheduled").name == "nexmark_q5_timely"


class TestModelRegistry:
    @pytest.mark.parametrize(
        "kind,cls", [("svm", MonotonicSVM), ("gbdt", MonotonicGBDT)]
    )
    def test_build_by_name(self, kind, cls):
        assert isinstance(build_prediction_model(kind, seed=3), cls)

    def test_legacy_factory_routes_through_registry(self):
        model = make_prediction_model("xgboost", seed=4)
        assert isinstance(model, MonotonicGBDT)
        with pytest.raises(ValueError):
            make_prediction_model("forest")

    def test_unknown_model_suggests(self):
        with pytest.raises(UnknownComponentError, match="did you mean 'svm'"):
            MODELS.create("svmm")
