"""Tests for the DS2, ContTune, ZeroTune and Oracle tuners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ContTuneTuner, DS2Tuner, OracleTuner, ZeroTuneTuner
from repro.baselines._demand import propagate_target_demand
from repro.baselines.api import TuningResult, TuningStep
from repro.engines.flink import FlinkCluster
from repro.engines.timely import TimelyCluster
from repro.workloads.nexmark import nexmark_query


@pytest.fixture
def q2():
    return nexmark_query("q2", "flink")


def cold_deployment(engine, query, multiplier=3):
    return engine.deploy(
        query.flow,
        dict.fromkeys(query.flow.operator_names, 1),
        query.rates_at(multiplier),
    )


class TestOracle:
    def test_one_shot_and_backpressure_free(self, q2):
        engine = FlinkCluster(seed=11)
        tuner = OracleTuner(engine)
        deployment = cold_deployment(engine, q2)
        result = tuner.tune(deployment, q2.rates_at(10))
        assert result.n_reconfigurations == 1
        assert result.converged
        assert not engine.ground_truth(deployment).has_backpressure

    def test_oracle_is_minimal(self, q2):
        """Dropping any operator by one degree must re-saturate the job."""
        engine = FlinkCluster(seed=11, noise_std=0.0)
        tuner = OracleTuner(engine)
        deployment = cold_deployment(engine, q2)
        tuner.tune(deployment, q2.rates_at(10))
        optimal = dict(deployment.parallelisms)
        for name in optimal:
            if optimal[name] == 1:
                continue
            reduced = dict(optimal)
            reduced[name] -= 1
            engine.reconfigure(deployment, reduced)
            assert engine.ground_truth(deployment).has_backpressure, name
            engine.reconfigure(deployment, optimal)


class TestDS2:
    def test_clears_backpressure(self, q2):
        engine = FlinkCluster(seed=12)
        tuner = DS2Tuner(engine)
        deployment = cold_deployment(engine, q2)
        result = tuner.tune(deployment, q2.rates_at(10))
        assert not engine.ground_truth(deployment).has_backpressure
        assert result.n_reconfigurations >= 1

    def test_near_oracle_total(self, q2):
        engine = FlinkCluster(seed=12)
        oracle_total = sum(
            OracleTuner(engine).optimal_parallelisms(
                cold_deployment(engine, q2), q2.rates_at(10)
            ).values()
        )
        tuner = DS2Tuner(engine)
        deployment = cold_deployment(engine, q2)
        result = tuner.tune(deployment, q2.rates_at(10))
        assert result.final_total_parallelism <= 2 * oracle_total

    def test_scales_down_after_rate_drop(self, q2):
        engine = FlinkCluster(seed=12)
        tuner = DS2Tuner(engine)
        deployment = cold_deployment(engine, q2)
        high = tuner.tune(deployment, q2.rates_at(10)).final_total_parallelism
        low = tuner.tune(deployment, q2.rates_at(2)).final_total_parallelism
        assert low < high

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            DS2Tuner(FlinkCluster(seed=1), max_iterations=0)

    def test_demand_propagation_uses_observed_selectivity(self, q2):
        engine = FlinkCluster(seed=12, noise_std=0.0)
        deployment = engine.deploy(
            q2.flow, {"src_bids": 2, "filter_auction": 30, "sink": 4},
            q2.rates_at(3),
        )
        telemetry = engine.measure(deployment)
        demand = propagate_target_demand(deployment, telemetry, q2.rates_at(10))
        assert demand["src_bids"] == pytest.approx(9e6)
        assert demand["filter_auction"] == pytest.approx(9e6, rel=1e-6)
        assert demand["sink"] == pytest.approx(0.2 * 9e6, rel=1e-3)


class TestContTune:
    def test_clears_backpressure(self, q2):
        engine = FlinkCluster(seed=13)
        tuner = ContTuneTuner(engine)
        deployment = cold_deployment(engine, q2)
        tuner.tune(deployment, q2.rates_at(10))
        assert not engine.ground_truth(deployment).has_backpressure

    def test_history_accumulates_across_processes(self, q2):
        engine = FlinkCluster(seed=13)
        tuner = ContTuneTuner(engine)
        deployment = cold_deployment(engine, q2)
        tuner.tune(deployment, q2.rates_at(3))
        count_after_first = tuner.observation_count(q2.flow.name, "filter_auction")
        tuner.tune(deployment, q2.rates_at(7))
        assert tuner.observation_count(q2.flow.name, "filter_auction") > count_after_first

    def test_prepare_resets_job_history(self, q2):
        engine = FlinkCluster(seed=13)
        tuner = ContTuneTuner(engine)
        deployment = cold_deployment(engine, q2)
        tuner.tune(deployment, q2.rates_at(3))
        tuner.prepare(q2)
        assert tuner.observation_count(q2.flow.name, "filter_auction") == 0

    def test_later_processes_lean_on_history(self, q2):
        """Revisiting a rate with a populated GP needs few reconfigs."""
        engine = FlinkCluster(seed=13)
        tuner = ContTuneTuner(engine)
        deployment = cold_deployment(engine, q2)
        tuner.tune(deployment, q2.rates_at(10))
        tuner.tune(deployment, q2.rates_at(3))
        again = tuner.tune(deployment, q2.rates_at(10)).n_reconfigurations
        assert again <= 2

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ContTuneTuner(FlinkCluster(seed=1), alpha=-1.0)


class TestZeroTune:
    @pytest.fixture
    def zerotune(self, tiny_history):
        engine = FlinkCluster(seed=14)
        return engine, ZeroTuneTuner(engine, tiny_history[:150], epochs=3, seed=15)

    def test_requires_history(self):
        with pytest.raises(ValueError):
            ZeroTuneTuner(FlinkCluster(seed=1), [])

    def test_fit_idempotent(self, zerotune):
        _, tuner = zerotune
        tuner.fit()
        model = tuner._model
        tuner.fit()
        assert tuner._model is model

    def test_single_reconfiguration(self, zerotune, q2):
        engine, tuner = zerotune
        deployment = cold_deployment(engine, q2)
        result = tuner.tune(deployment, q2.rates_at(5))
        assert result.n_reconfigurations <= 1
        assert len(result.steps) == 1

    def test_recommends_more_than_oracle(self, zerotune, q2):
        """No resource term in the objective -> over-provisioning."""
        engine, tuner = zerotune
        oracle_total = sum(
            OracleTuner(engine).optimal_parallelisms(
                cold_deployment(engine, q2), q2.rates_at(5)
            ).values()
        )
        deployment = cold_deployment(engine, q2)
        result = tuner.tune(deployment, q2.rates_at(5))
        assert result.final_total_parallelism > oracle_total


class TestTimelyOverprovisioningMechanism:
    def test_ds2_overprovisions_on_timely(self):
        """Spin inflation makes DS2 scale the bottleneck well above need."""
        query = nexmark_query("q8", "timely")
        engine = TimelyCluster(seed=16)
        oracle = OracleTuner(engine)
        deployment = cold_deployment(engine, query, multiplier=3)
        optimal = oracle.optimal_parallelisms(deployment, query.rates_at(10))
        ds2 = DS2Tuner(engine)
        result = ds2.tune(deployment, query.rates_at(10))
        # The windowed join is the binding operator: DS2's useful-time
        # deflation should roughly multiply its degree by the spin factor.
        assert result.final_parallelisms["win_join"] >= 1.5 * optimal["win_join"]
        assert result.final_total_parallelism >= sum(optimal.values())


class TestResultInvariants:
    def test_backpressure_events_subset_of_reconfigs(self, q2, tiny_history):
        engine = FlinkCluster(seed=17)
        for tuner in (DS2Tuner(engine), ContTuneTuner(engine), OracleTuner(engine)):
            deployment = cold_deployment(engine, q2)
            result = tuner.tune(deployment, q2.rates_at(8))
            assert result.n_backpressure_events <= result.n_reconfigurations
            engine.stop(deployment)

    def test_empty_result_raises_on_final(self):
        result = TuningResult(query_name="q", tuner_name="t")
        with pytest.raises(ValueError):
            _ = result.final_parallelisms

    def test_stabilize_deadband(self, q2):
        engine = FlinkCluster(seed=18)
        tuner = DS2Tuner(engine)
        current = {"a": 10, "b": 2}
        proposal = {"a": 11, "b": 2}
        assert tuner.stabilize(proposal, current, has_backpressure=False) == current
        jump = {"a": 15, "b": 2}
        assert tuner.stabilize(jump, current, has_backpressure=False) == jump
        assert tuner.stabilize(proposal, current, has_backpressure=True) == proposal
