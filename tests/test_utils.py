"""Unit tests for repro.utils (rng, timer, tables)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils.rng import seeded_rng, spawn_rng, stable_hash
from repro.utils.tables import format_table
from repro.utils.timer import Timer


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = seeded_rng(42).integers(0, 1000, size=10)
        b = seeded_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = seeded_rng(1).integers(0, 1_000_000, size=10)
        b = seeded_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_none_uses_library_default(self):
        a = seeded_rng(None).integers(0, 1_000_000, size=5)
        b = seeded_rng(None).integers(0, 1_000_000, size=5)
        assert np.array_equal(a, b)

    def test_spawn_rng_is_deterministic(self):
        parent1 = seeded_rng(9)
        parent2 = seeded_rng(9)
        child1 = spawn_rng(parent1, "metrics")
        child2 = spawn_rng(parent2, "metrics")
        assert child1.integers(1e9) == child2.integers(1e9)

    def test_spawn_rng_key_separates_streams(self):
        parent = seeded_rng(9)
        child_a = spawn_rng(parent, "a")
        parent_again = seeded_rng(9)
        child_b = spawn_rng(parent_again, "b")
        assert child_a.integers(1e9) != child_b.integers(1e9)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("nexmark_q5") == stable_hash("nexmark_q5")

    def test_respects_modulus(self):
        for text in ("a", "bb", "nexmark_q5", "x" * 100):
            assert 0 <= stable_hash(text, 97) < 97

    def test_distinct_strings_usually_differ(self):
        values = {stable_hash(f"query_{i}") for i in range(100)}
        assert len(values) == 100


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_zero_before_use(self):
        assert Timer().elapsed == 0.0


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        assert "a" in text and "bb" in text
        assert "2.50" in text and "x" in text

    def test_title_rendered(self):
        text = format_table(["h"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        text = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[-1]) >= len("a-much-longer-cell")

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text
