"""Tests for the concurrent tuning service: caches, scheduler, service."""

from __future__ import annotations

import threading

import pytest

from repro.service import (
    BackpressureScheduler,
    CampaignSpec,
    ConcurrentLRUCache,
    FifoScheduler,
    TuningCacheSet,
    TuningService,
)
from repro.service.cache import SharedGEDCache
from repro.workloads import nexmark_query


# ----------------------------------------------------------------------
# ConcurrentLRUCache
# ----------------------------------------------------------------------

class TestConcurrentLRUCache:
    def test_get_or_compute_caches(self):
        cache = ConcurrentLRUCache(maxsize=4)
        calls = []

        def build():
            calls.append(1)
            return 42

        assert cache.get_or_compute("k", build) == 42
        assert cache.get_or_compute("k", build) == 42
        assert len(calls) == 1
        assert cache.stats() == {"size": 1, "hits": 1, "misses": 1}

    def test_lru_eviction_order(self):
        cache = ConcurrentLRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refresh a; b is now oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            ConcurrentLRUCache(maxsize=0)

    def test_concurrent_get_or_compute_single_value(self):
        cache = ConcurrentLRUCache()
        seen = []

        def worker():
            seen.append(cache.get_or_compute("key", lambda: 7))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen == [7] * 8

    def test_clear(self):
        cache = ConcurrentLRUCache()
        cache.put("a", 1)
        cache.clear()
        assert cache.get("a") is None
        assert cache.stats()["size"] == 0


class TestTuningCacheSet:
    def test_sections_routed_independently(self):
        caches = TuningCacheSet()
        assert caches.get_or_compute("distill", ("k",), lambda: "d") == "d"
        assert caches.get_or_compute("embed", ("k",), lambda: "e") == "e"
        assert caches.section("distill").stats()["size"] == 1
        assert caches.section("embed").stats()["size"] == 1

    def test_unknown_section_computes_without_caching(self):
        caches = TuningCacheSet()
        calls = []

        def build():
            calls.append(1)
            return 1

        caches.get_or_compute("novel-section", "k", build)
        caches.get_or_compute("novel-section", "k", build)
        assert len(calls) == 2


# ----------------------------------------------------------------------
# scheduler
# ----------------------------------------------------------------------

def _spec(name: str, multiplier: float, seed: int = 7) -> CampaignSpec:
    return CampaignSpec(
        query=nexmark_query(name, "flink"),
        multipliers=(multiplier,),
        engine_seed=seed,
        seed=seed,
    )


class TestScheduler:
    def test_backpressured_campaigns_dispatch_first(self):
        # At parallelism 1, a 10x-Wu rate backpressures while a tiny
        # fraction of one rate unit cannot.
        hot = _spec("q5", 10.0)
        cold = _spec("q1", 0.01)
        scheduler = BackpressureScheduler()
        assert scheduler.probe(hot).backpressured
        assert not scheduler.probe(cold).backpressured
        order = scheduler.order([cold, hot])
        assert order[0] == 1

    def test_order_is_deterministic(self):
        specs = [_spec("q1", 3.0), _spec("q2", 3.0), _spec("q5", 3.0)]
        scheduler = BackpressureScheduler()
        assert scheduler.order(specs) == scheduler.order(specs)

    def test_fifo_preserves_submission_order(self):
        specs = [_spec("q5", 10.0), _spec("q1", 0.01)]
        assert FifoScheduler().order(specs) == [0, 1]

    def test_empty_multipliers_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(query=nexmark_query("q1", "flink"), multipliers=())


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------

class TestTuningService:
    def _specs(self):
        return [
            CampaignSpec(
                query=nexmark_query(name, "flink"),
                multipliers=(3, 7),
                engine_seed=31,
                seed=41,
            )
            for name in ("q1", "q5")
        ]

    def test_outcomes_in_input_order(self, tiny_pretrained):
        service = TuningService(tiny_pretrained, backend="thread", max_workers=2)
        outcomes = service.run(self._specs())
        assert [o.spec_name for o in outcomes] == [
            "nexmark_q1_flink", "nexmark_q5_flink"
        ]
        for outcome in outcomes:
            assert outcome.backend == "thread"
            assert outcome.result.n_processes == 2
            assert outcome.wall_seconds > 0

    def test_duplicate_names_rejected(self, tiny_pretrained):
        service = TuningService(tiny_pretrained, backend="sequential")
        specs = self._specs() + self._specs()[:1]
        with pytest.raises(ValueError, match="unique"):
            service.run(specs)

    def test_unknown_backend_rejected(self, tiny_pretrained):
        with pytest.raises(ValueError, match="backend"):
            TuningService(tiny_pretrained, backend="fibers")

    def test_empty_run(self, tiny_pretrained):
        assert TuningService(tiny_pretrained, backend="sequential").run([]) == []

    def test_shared_ged_cache_installed_and_counted(self, tiny_pretrained):
        service = TuningService(tiny_pretrained, backend="sequential")
        assert isinstance(tiny_pretrained.clustering.cache, SharedGEDCache)
        service.run(self._specs())
        stats = service.cache_stats()
        assert "ged" in stats
        assert stats["warmup"]["misses"] >= 1
        # The second campaign's iterations reuse distilled rows/embeddings.
        assert stats["distill"]["misses"] >= 1

    def test_cache_reuse_across_runs(self, tiny_pretrained):
        service = TuningService(tiny_pretrained, backend="sequential")
        service.run(self._specs())
        warm_misses = service.caches.section("warmup").stats()["misses"]
        service.run(self._specs())
        # No new warm-up datasets were built on the repeat run.
        assert service.caches.section("warmup").stats()["misses"] == warm_misses


class TestServiceCampaigns:
    def test_grid_runs_and_caches(self, tiny_pretrained, monkeypatch):
        from repro.experiments import context
        from repro.experiments.campaigns import service_campaigns
        from repro.experiments.scale import SMOKE
        from dataclasses import replace

        scale = replace(SMOKE, name="svc-test", n_rate_changes=2)
        monkeypatch.setattr(
            context, "pretrained_model", lambda engine, s: tiny_pretrained
        )
        results = service_campaigns(
            "flink", ["q1", "q5"], scale, backend="thread", max_workers=2
        )
        assert set(results) == {"q1", "q5"}
        for group, campaigns in results.items():
            assert len(campaigns) == 1
            assert campaigns[0].n_processes == 2
            assert campaigns[0].method == "StreamTune"
        # Cached under a service-specific key, not the figures grid.
        key = ("service-campaign", "flink", ("q1", "q5"), "svc-test", "thread")
        assert context._CACHE[key] is results
        assert ("campaign", "flink", "StreamTune", "q1", "svc-test") not in context._CACHE
        again = service_campaigns(
            "flink", ["q1", "q5"], scale, backend="thread", max_workers=2
        )
        assert again is results
        del context._CACHE[key]


class TestShardBounds:
    def test_even_split(self):
        from repro.service import shard_bounds

        assert shard_bounds(4, 2) == [(0, 2), (2, 4)]
        assert shard_bounds(6, 3) == [(0, 2), (2, 4), (4, 6)]

    def test_remainder_goes_to_early_shards(self):
        from repro.service import shard_bounds

        assert shard_bounds(5, 2) == [(0, 3), (3, 5)]
        assert shard_bounds(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_shards_than_steps_clamps(self):
        from repro.service import shard_bounds

        assert shard_bounds(2, 5) == [(0, 1), (1, 2)]
        assert shard_bounds(1, 1) == [(0, 1)]

    def test_never_emits_empty_or_degenerate_shards(self):
        # Regression: n_shards > n_steps must clamp to at most n_steps
        # non-empty shards, never pad with empty ones.
        from repro.service import shard_bounds

        for n_steps in range(0, 9):
            for n_shards in range(1, 12):
                bounds = shard_bounds(n_steps, n_shards)
                assert len(bounds) == min(n_steps, n_shards)
                assert all(stop > start for start, stop in bounds)

    def test_zero_steps_yields_no_shards(self):
        from repro.service import shard_bounds

        assert shard_bounds(0, 1) == []
        assert shard_bounds(0, 7) == []

    def test_single_shard_is_identity(self):
        from repro.service import shard_bounds

        for n_steps in range(1, 9):
            assert shard_bounds(n_steps, 1) == [(0, n_steps)]

    def test_bounds_cover_exactly(self):
        from repro.service import shard_bounds

        for n_steps in range(1, 12):
            for n_shards in range(1, 6):
                bounds = shard_bounds(n_steps, n_shards)
                covered = [i for start, stop in bounds for i in range(start, stop)]
                assert covered == list(range(n_steps))
                assert all(stop > start for start, stop in bounds)

    def test_invalid_inputs(self):
        from repro.service import shard_bounds

        with pytest.raises(ValueError):
            shard_bounds(-1, 1)
        with pytest.raises(ValueError):
            shard_bounds(3, 0)


class TestTraceSharding:
    def _spec(self, multipliers=(3, 7, 4)):
        return CampaignSpec(
            query=nexmark_query("q1", "flink"),
            multipliers=tuple(float(m) for m in multipliers),
            engine_seed=31,
            seed=41,
        )

    @staticmethod
    def _steps(outcome):
        return [
            [step.parallelisms for step in process.steps]
            for process in outcome.result.processes
        ]

    @pytest.mark.parametrize("backend", ["sequential", "thread"])
    def test_merged_results_bit_identical(self, tiny_pretrained, backend):
        spec = self._spec()
        reference = TuningService(tiny_pretrained, backend="sequential").run([spec])[0]
        service = TuningService(tiny_pretrained, backend=backend, max_workers=4)
        sharded = service.run([spec], trace_shards=3)[0]
        assert sharded.result.multipliers == reference.result.multipliers
        assert self._steps(sharded) == self._steps(reference)
        assert sharded.backend == backend

    def test_sharded_stream_contract(self, tiny_pretrained):
        from repro.api.events import CampaignFinished, CampaignStarted, StepCompleted

        service = TuningService(tiny_pretrained, backend="thread", max_workers=4)
        events = list(service.stream([self._spec()], trace_shards=2))
        started = [e for e in events if isinstance(e, CampaignStarted)]
        finished = [e for e in events if isinstance(e, CampaignFinished)]
        assert len(started) == 1 and len(finished) == 1
        assert started[0].shards == 2
        steps = [e for e in events if isinstance(e, StepCompleted)]
        assert [e.step_index for e in steps] == [0, 1, 2]

    def test_execute_campaign_shard_keeps_only_its_chunk(self, tiny_pretrained):
        from repro.service import execute_campaign

        spec = self._spec()
        whole = execute_campaign(spec, tiny_pretrained, TuningCacheSet())
        tail = execute_campaign(
            spec, tiny_pretrained, TuningCacheSet(), keep_from=1, stop_at=3
        )
        assert tail.result.multipliers == [7.0, 4.0]
        assert self._steps(tail) == self._steps(whole)[1:]

    def test_bad_trace_shards_rejected(self, tiny_pretrained):
        service = TuningService(tiny_pretrained, backend="sequential")
        with pytest.raises(ValueError, match="trace_shards"):
            list(service.stream(self._specs_one(), trace_shards=0))

    def _specs_one(self):
        return [self._spec((3,))]


class TestBaselineCampaigns:
    def _spec(self, tuner):
        return CampaignSpec(
            query=nexmark_query("q1", "flink"),
            multipliers=(3.0, 7.0),
            engine_seed=31,
            seed=41,
            tuner=tuner,
        )

    def test_ds2_campaign_runs_without_pretrained(self):
        service = TuningService(None, backend="sequential")
        outcome = service.run([self._spec("ds2")])[0]
        assert outcome.result.method == "DS2"
        assert outcome.result.n_processes == 2
        assert "ged" not in service.cache_stats()

    def test_backend_identity_for_baselines(self):
        sequential = TuningService(None, backend="sequential").run([self._spec("ds2")])
        threaded = TuningService(None, backend="thread", max_workers=2).run(
            [self._spec("ds2")]
        )
        steps = lambda o: [  # noqa: E731
            [step.parallelisms for step in process.steps]
            for process in o.result.processes
        ]
        assert steps(sequential[0]) == steps(threaded[0])

    def test_streamtune_without_pretrained_fails_clearly(self):
        service = TuningService(None, backend="sequential")
        with pytest.raises(ValueError, match="pre-trained"):
            service.run([self._spec("streamtune")])


def _exit_without_reporting(spec, unit, relay):
    """A process worker killed outright (OOM, signal): no relay item."""
    import os

    os._exit(13)


class TestFaultTolerance:
    """A dead worker surfaces as CampaignFailed; the fleet finishes."""

    def _specs(self, tuner="ds2"):
        return [
            CampaignSpec(
                query=nexmark_query(name, "flink"),
                multipliers=(3.0, 7.0),
                engine_seed=31,
                seed=41,
                tuner=tuner,
            )
            for name in ("q1", "q5")
        ]

    def _poison(self, monkeypatch, victim="nexmark_q1_flink"):
        import repro.service.tuning as tuning

        original = tuning.execute_campaign

        def poisoned(spec, *args, **kwargs):
            if spec.name == victim:
                raise RuntimeError("worker exploded mid-campaign")
            return original(spec, *args, **kwargs)

        monkeypatch.setattr(tuning, "execute_campaign", poisoned)

    @pytest.mark.parametrize("backend", ["sequential", "thread"])
    def test_worker_exception_fails_campaign_not_fleet(self, monkeypatch, backend):
        from repro.api.events import CampaignFailed, CampaignFinished, CampaignStarted

        self._poison(monkeypatch)
        service = TuningService(None, backend=backend, max_workers=2)
        events = list(service.stream(self._specs()))
        failed = [e for e in events if isinstance(e, CampaignFailed)]
        assert [e.campaign for e in failed] == ["nexmark_q1_flink"]
        assert failed[0].error_type == "RuntimeError"
        assert "worker exploded" in failed[0].error_message
        assert "worker exploded" in failed[0].traceback   # full text survives
        assert failed[0].cell_key
        # the failed campaign still opened with a CampaignStarted
        started = [e for e in events if isinstance(e, CampaignStarted)]
        assert sorted(e.campaign for e in started) == [
            "nexmark_q1_flink", "nexmark_q5_flink"
        ]
        # ... and the surviving campaign completed normally
        finished = [e for e in events if isinstance(e, CampaignFinished)]
        assert [e.campaign for e in finished] == ["nexmark_q5_flink"]
        assert [e.seq for e in events] == list(range(len(events)))

    def test_run_raises_after_the_fleet_drained(self, monkeypatch):
        from repro.service import CampaignExecutionError

        self._poison(monkeypatch)
        service = TuningService(None, backend="thread", max_workers=2)
        with pytest.raises(CampaignExecutionError, match="worker exploded") as info:
            service.run(self._specs())
        error = info.value
        assert [e.campaign for e in error.failures] == ["nexmark_q1_flink"]
        # the surviving campaign's outcome was not lost
        assert [o.spec_name for o in error.outcomes.values()] == ["nexmark_q5_flink"]

    def test_sharded_campaign_fails_once(self, monkeypatch):
        from repro.api.events import CampaignFailed

        self._poison(monkeypatch)
        service = TuningService(None, backend="thread", max_workers=4)
        events = list(service.stream(self._specs(), trace_shards=2))
        failed = [e for e in events if isinstance(e, CampaignFailed)]
        assert [e.campaign for e in failed] == ["nexmark_q1_flink"]

    def test_silent_worker_death_does_not_hang_the_stream(self, monkeypatch):
        # Satellite regression: a worker that exits without posting its
        # sentinel (the hang case) must resolve via the liveness check.
        from repro.api.events import CampaignFailed, CampaignFinished

        original = TuningService._run_unit_threaded

        def leaky(self, spec, unit, events):
            if spec.name == "nexmark_q1_flink":
                return              # dies silently: no event, no sentinel
            original(self, spec, unit, events)

        monkeypatch.setattr(TuningService, "_run_unit_threaded", leaky)
        service = TuningService(None, backend="thread", max_workers=2)
        service.poll_seconds = 0.05
        service.sentinel_grace = 0.2
        events = list(service.stream(self._specs()))   # must terminate
        failed = [e for e in events if isinstance(e, CampaignFailed)]
        assert [e.campaign for e in failed] == ["nexmark_q1_flink"]
        assert "without posting its result" in failed[0].error_message
        finished = [e for e in events if isinstance(e, CampaignFinished)]
        assert [e.campaign for e in finished] == ["nexmark_q5_flink"]

    @pytest.mark.skipif(
        __import__("multiprocessing").get_start_method() != "fork",
        reason="patched worker reaches the pool only under fork",
    )
    def test_killed_process_worker_yields_failed_without_hanging(self, monkeypatch):
        from repro.api.events import CampaignFailed

        import repro.service.tuning as tuning

        monkeypatch.setattr(tuning, "_run_in_worker", _exit_without_reporting)
        service = TuningService(None, backend="process", max_workers=1)
        service.poll_seconds = 0.05
        events = list(service.stream(self._specs()[:1]))   # must terminate
        failed = [e for e in events if isinstance(e, CampaignFailed)]
        assert [e.campaign for e in failed] == ["nexmark_q1_flink"]
        assert failed[0].error_type   # BrokenProcessPool (by any name)
        assert failed[0].error_message or failed[0].traceback

    def test_streamtune_without_pretrained_fails_before_dispatch(self):
        # Spec validation stays an eager ValueError, not a CampaignFailed.
        service = TuningService(None, backend="thread", max_workers=2)
        with pytest.raises(ValueError, match="pre-trained"):
            list(service.stream(self._specs(tuner="streamtune")))


class TestSnapshotErrors:
    def test_version_mismatch_names_both_versions(self, tmp_path):
        import pickle

        from repro.service import SnapshotError

        stale = tmp_path / "stale.pkl"
        stale.write_bytes(
            pickle.dumps(
                {
                    "format": "repro.service.TuningCacheSet",
                    "version": 999,
                    "sections": {},
                }
            )
        )
        with pytest.raises(SnapshotError) as excinfo:
            TuningCacheSet.load(stale)
        message = str(excinfo.value)
        assert "999" in message                       # the snapshot's version
        assert str(TuningCacheSet.SNAPSHOT_VERSION) in message   # ours
        assert "stale.pkl" in message
        assert isinstance(excinfo.value, ValueError)  # back-compat contract

    def test_truncated_snapshot_is_a_clear_error(self, tmp_path):
        from repro.service import SnapshotError

        broken = tmp_path / "broken.pkl"
        saved = tmp_path / "ok.pkl"
        TuningCacheSet().save(saved)
        broken.write_bytes(saved.read_bytes()[:10])   # cut mid-pickle
        with pytest.raises(SnapshotError, match="broken.pkl"):
            TuningCacheSet.load(broken)

    def test_non_pickle_bytes_are_a_clear_error(self, tmp_path):
        from repro.service import SnapshotError

        garbage = tmp_path / "garbage.pkl"
        garbage.write_bytes(b"definitely not a pickle")
        with pytest.raises(SnapshotError, match="not a TuningCacheSet"):
            TuningCacheSet.load(garbage)


class TestWorkerCacheCollection:
    """Process workers snapshot fresh cache entries back to the parent."""

    def _specs(self):
        return [
            CampaignSpec(
                query=nexmark_query(name, "flink"),
                multipliers=(3, 7),
                engine_seed=31,
                seed=41,
            )
            for name in ("q1", "q5")
        ]

    def test_process_workers_report_entries_back(self, tiny_pretrained):
        # prewarm=False so the parent computes nothing itself: a warm-up
        # dataset can then only appear in the parent plane via the
        # post-drain worker collection.
        service = TuningService(
            tiny_pretrained, backend="process", max_workers=2, prewarm=False
        )
        service.run(self._specs())
        assert service.caches.section("warmup").stats()["size"] >= 1

    def test_collection_can_be_disabled(self, tiny_pretrained):
        service = TuningService(
            tiny_pretrained, backend="process", max_workers=2, prewarm=False,
            collect_worker_caches=False,
        )
        service.run(self._specs())
        assert service.caches.section("warmup").stats()["size"] == 0

    def test_collected_entries_warm_the_next_process_run(self, tiny_pretrained):
        service = TuningService(
            tiny_pretrained, backend="process", max_workers=2, prewarm=False
        )
        service.run(self._specs())
        first_size = service.caches.section("warmup").stats()["size"]
        assert first_size >= 1
        # The next run ships the collected entries to its (fresh) workers,
        # which then compute no new warm-up datasets to report back.
        service.run(self._specs())
        assert service.caches.section("warmup").stats()["size"] == first_size
