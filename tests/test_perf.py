"""Unit and property tests for the ground-truth performance model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow.operators import (
    AggregateFunction,
    OperatorSpec,
    OperatorType,
    WindowPolicy,
    WindowType,
)
from repro.engines.perf import BASE_RATE, SCALING_ALPHA, PerformanceModel


def spec_of(op_type: OperatorType, **overrides) -> OperatorSpec:
    kwargs = dict(name="x", op_type=op_type)
    if op_type in (OperatorType.AGGREGATE, OperatorType.WINDOW_AGGREGATE):
        kwargs["aggregate_function"] = AggregateFunction.SUM
    if op_type in (OperatorType.WINDOW_AGGREGATE, OperatorType.WINDOW_JOIN):
        kwargs.setdefault("window_type", WindowType.TUMBLING)
        kwargs.setdefault("window_length", 30.0)
    kwargs.update(overrides)
    return OperatorSpec(**kwargs)


@pytest.fixture
def perf() -> PerformanceModel:
    return PerformanceModel()


class TestBasics:
    def test_invalid_speed_factor(self):
        with pytest.raises(ValueError):
            PerformanceModel(speed_factor=0.0)

    def test_invalid_parallelism(self, perf):
        with pytest.raises(ValueError):
            perf.processing_ability(spec_of(OperatorType.MAP), 0)

    def test_speed_factor_scales_rates(self):
        slow = PerformanceModel(speed_factor=1.0)
        fast = PerformanceModel(speed_factor=12.0)
        spec = spec_of(OperatorType.FILTER)
        ratio = fast.per_instance_rate(spec) / slow.per_instance_rate(spec)
        assert ratio == pytest.approx(12.0)

    def test_cost_factor_divides_rate(self, perf):
        cheap = spec_of(OperatorType.MAP)
        expensive = spec_of(OperatorType.MAP, cost_factor=10.0)
        assert perf.per_instance_rate(cheap) == pytest.approx(
            10.0 * perf.per_instance_rate(expensive)
        )

    def test_wider_tuples_are_slower(self, perf):
        narrow = spec_of(OperatorType.MAP, tuple_width_in=32.0)
        wide = spec_of(OperatorType.MAP, tuple_width_in=512.0)
        assert perf.per_instance_rate(narrow) > perf.per_instance_rate(wide)

    def test_sliding_window_penalty(self, perf):
        tumbling = spec_of(OperatorType.WINDOW_AGGREGATE)
        sliding = spec_of(
            OperatorType.WINDOW_AGGREGATE,
            window_type=WindowType.SLIDING,
            window_length=60.0,
            sliding_length=10.0,
        )
        assert perf.per_instance_rate(tumbling) > perf.per_instance_rate(sliding)

    def test_stateless_scales_better_than_stateful(self, perf):
        assert SCALING_ALPHA[OperatorType.FILTER] > SCALING_ALPHA[OperatorType.WINDOW_JOIN]

    def test_all_types_have_rates_and_alphas(self):
        for op_type in OperatorType:
            assert op_type in BASE_RATE
            assert op_type in SCALING_ALPHA
            assert 0 < SCALING_ALPHA[op_type] <= 1.0


class TestScaling:
    @pytest.mark.parametrize("op_type", list(OperatorType))
    def test_pa_strictly_increasing_in_parallelism(self, perf, op_type):
        spec = spec_of(op_type)
        values = [perf.processing_ability(spec, p) for p in range(1, 30)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_pa_sublinear_for_stateful(self, perf):
        spec = spec_of(OperatorType.WINDOW_JOIN)
        single = perf.processing_ability(spec, 1)
        assert perf.processing_ability(spec, 16) < 16 * single

    def test_pa_at_one_equals_per_instance(self, perf):
        spec = spec_of(OperatorType.FILTER)
        assert perf.processing_ability(spec, 1) == pytest.approx(
            perf.per_instance_rate(spec)
        )


class TestMinParallelismOracle:
    def test_zero_demand_needs_one(self, perf):
        assert perf.min_parallelism_for(spec_of(OperatorType.MAP), 0.0, 100) == 1

    def test_capped_at_p_max(self, perf):
        spec = spec_of(OperatorType.WINDOW_JOIN, cost_factor=1000.0)
        assert perf.min_parallelism_for(spec, 1e9, 10) == 10

    @settings(max_examples=60, deadline=None)
    @given(
        demand=st.floats(min_value=1e3, max_value=5e7),
        op_index=st.integers(min_value=0, max_value=len(OperatorType) - 1),
        cost=st.floats(min_value=0.5, max_value=50.0),
    )
    def test_min_parallelism_is_tight(self, demand, op_index, cost):
        """PA(p*) >= demand and PA(p* - 1) < demand whenever p* > 1."""
        perf = PerformanceModel()
        spec = spec_of(list(OperatorType)[op_index], cost_factor=cost)
        p_star = perf.min_parallelism_for(spec, demand, 1000)
        if p_star < 1000:
            assert perf.processing_ability(spec, p_star) >= demand * (1 - 1e-9)
        if p_star > 1:
            assert perf.processing_ability(spec, p_star - 1) < demand
