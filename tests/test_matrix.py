"""Tests for the benchmark matrix: report schema, backend determinism,
chaos execution through the stream, and chaos-enabled resume.

The acceptance contract: ``repro matrix`` expands a sweep grid (traces x
tuners x engines x chaos) into a ``repro.matrix/v1`` report whose
deterministic view is bit-identical on every backend, and a chaos-enabled
campaign resumes from a recorded log exactly like a clean one.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ChaosInjected,
    EventBus,
    JsonlRecorder,
    ResumeLog,
    SweepPlan,
    TuningSession,
    event_from_dict,
)
from repro.scenarios import (
    MATRIX_SCHEMA,
    matrix_determinism_view,
    matrix_report,
    validate_matrix_report,
)


def _grid_plan(backend="sequential"):
    """A tiny ds2-only matrix: 2 traces x 2 chaos schedules = 4 cells."""
    return SweepPlan(
        queries=("q1",),
        tuners=("ds2",),
        engines=("flink-faulty",),
        rate_traces=(
            (3.0, 7.0, 4.0),
            {"family": "bursty", "params": {"n_steps": 3}, "seed": 11},
        ),
        chaos=({}, {"operator_loss": [{"step": 1}]}),
        backend=backend,
        scale="smoke",
        seed=17,
    )


def _step_maps(outcome):
    return [
        [step.parallelisms for step in process.steps]
        for process in outcome.result.processes
    ]


@pytest.fixture(scope="module")
def sequential_run():
    return TuningSession().run(_grid_plan())


class TestMatrixReport:
    def test_schema_and_shape(self, sequential_run):
        report = matrix_report(sequential_run, backend="sequential")
        validate_matrix_report(report)
        assert report["schema"] == MATRIX_SCHEMA
        assert report["n_scenarios"] == 4
        assert report["n_campaigns"] == len(report["cells"]) == 4
        assert report["grid"]["tuners"] == ["ds2"]
        assert report["grid"]["chaos"] == ["none", "loss@1x1"]

    def test_rows_carry_the_cell_identity(self, sequential_run):
        report = matrix_report(sequential_run)
        keys = [cell["cell_key"] for cell in report["cells"]]
        assert keys == [
            key for cell in _grid_plan().expand() for key in cell.cell_keys()
        ]
        chaotic = [cell for cell in report["cells"] if cell["chaos"] != "none"]
        assert len(chaotic) == 2
        assert all(cell["cell_key"].endswith(":closs@1x1") for cell in chaotic)
        by_family = {cell["trace"]["family"] for cell in report["cells"]}
        assert by_family == {"inline", "bursty"}

    def test_validation_rejects_a_tampered_report(self, sequential_run):
        report = matrix_report(sequential_run)
        del report["cells"][0]["final_parallelism"]
        with pytest.raises(ValueError, match="final_parallelism"):
            validate_matrix_report(report)

    def test_thread_backend_matches_sequential_bit_identically(self, sequential_run):
        thread_run = TuningSession().run(_grid_plan(backend="thread"))
        seq_view = matrix_determinism_view(
            matrix_report(sequential_run, backend="sequential")
        )
        thread_view = matrix_determinism_view(
            matrix_report(thread_run, backend="thread")
        )
        assert seq_view == thread_view
        # The full report intentionally differs: it says who ran it.
        assert matrix_report(thread_run, backend="thread")["backend"] == "thread"


class TestChaosThroughTheStream:
    def test_chaos_cells_emit_typed_events_and_change_results(self):
        events = []
        result = TuningSession().run(_grid_plan(), bus=EventBus(events.append))
        injected = [e for e in events if isinstance(e, ChaosInjected)]
        assert len(injected) == 2            # one loss per chaotic cell
        assert {e.effect for e in injected} == {"operator-loss"}
        assert all(e.step_index == 1 and e.count >= 1 for e in injected)
        scenarios = dict(result.scenarios)
        clean = scenarios["ds2@flink-faulty/x3-7-4+none"]
        chaotic = scenarios["ds2@flink-faulty/x3-7-4+loss@1x1"]
        assert _step_maps(clean.outcomes[0]) != _step_maps(chaotic.outcomes[0])

    def test_chaos_events_round_trip_through_a_record_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlRecorder(path) as recorder:
            TuningSession().run(_grid_plan(), bus=EventBus(recorder))
        replayed = [
            event_from_dict(json.loads(line))
            for line in path.read_text().splitlines()
        ]
        injected = [e for e in replayed if isinstance(e, ChaosInjected)]
        assert len(injected) == 2
        assert all(e.effect == "operator-loss" for e in injected)


class TestChaosResume:
    def test_interrupted_chaos_sweep_resumes_bit_identical(self, tmp_path):
        plan = _grid_plan()
        full_path = tmp_path / "full.jsonl"
        with JsonlRecorder(full_path) as recorder:
            full = TuningSession().run(plan, bus=EventBus(recorder))

        # What a fleet killed after its first completed campaign leaves.
        kept = []
        for line in full_path.read_text().splitlines():
            kept.append(line)
            if json.loads(line)["event"] == "CampaignFinished":
                break
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text("\n".join(kept) + "\n")

        resumed = TuningSession().run(plan, resume=ResumeLog.load(truncated))
        for (label_a, cell_a), (label_b, cell_b) in zip(
            full.scenarios, resumed.scenarios
        ):
            assert label_a == label_b
            for outcome_a, outcome_b in zip(cell_a.outcomes, cell_b.outcomes):
                assert _step_maps(outcome_a) == _step_maps(outcome_b)

    def test_fully_recorded_chaos_sweep_replays_without_execution(self, tmp_path):
        plan = _grid_plan()
        path = tmp_path / "full.jsonl"
        with JsonlRecorder(path) as recorder:
            full = TuningSession().run(plan, bus=EventBus(recorder))
        log = ResumeLog.load(path)
        recorded, missing = log.covers(plan.cell_keys())
        assert not missing                  # chaos keys match themselves...
        replayed = TuningSession().run(plan, resume=log)
        assert matrix_determinism_view(
            matrix_report(replayed)
        ) == matrix_determinism_view(matrix_report(full))

    def test_clean_log_never_satisfies_a_chaos_cell(self, tmp_path):
        # ...and a clean run's ledger can never be mistaken for a chaotic
        # one: the chaos label is part of the cell key.
        clean = SweepPlan(
            queries=("q1",), tuners=("ds2",), engines=("flink-faulty",),
            rate_traces=((3.0, 7.0, 4.0),), backend="sequential",
            scale="smoke", seed=17,
        )
        path = tmp_path / "clean.jsonl"
        with JsonlRecorder(path) as recorder:
            TuningSession().run(clean, bus=EventBus(recorder))
        log = ResumeLog.load(path)
        recorded, missing = log.covers(_grid_plan().cell_keys())
        assert len(recorded) == 1           # only the raw-trace clean cell
        assert len(missing) == 3
