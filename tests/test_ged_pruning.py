"""Bound-pruned GED decisions must be bit-identical to exhaustive ones.

The PR 5 optimisation lets cheap admissible lower bounds short-circuit
exact A*-LSa work in two places — nearest-center cluster assignment
(:func:`repro.ged.search.nearest_center`) and threshold verification
(``within``).  Pruning is only sound if it can never change an answer,
so these property tests drive random DAG pairs through both paths and
require exact agreement with the unpruned reference.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ged.astar_lsa import astar_lsa_ged
from repro.ged.search import GEDCache, nearest_center
from repro.service.cache import SharedGEDCache
from tests.test_ged_bounds_beam import random_chain_flow


def _exhaustive_nearest(flows, query):
    cache = GEDCache()
    distances = [cache.distance(query, center) for center in flows]
    return min(range(len(distances)), key=distances.__getitem__)


class TestNearestCenterEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        query_seed=st.integers(0, 40),
        center_seeds=st.lists(
            st.integers(0, 40), min_size=1, max_size=6
        ),
    )
    def test_pruned_assignment_matches_exhaustive(self, query_seed, center_seeds):
        query = random_chain_flow(query_seed)
        centers = [random_chain_flow(seed) for seed in center_seeds]
        expected = _exhaustive_nearest(centers, query)
        assert GEDCache().nearest(query, centers) == expected
        assert SharedGEDCache().nearest(query, centers) == expected
        assert nearest_center(GEDCache(), query, centers) == expected

    def test_first_index_wins_exact_ties(self):
        # Identical centers tie at the exact distance; the exhaustive
        # argmin keeps the first occurrence and so must the pruned path.
        query = random_chain_flow(3)
        duplicate = random_chain_flow(9)
        centers = [duplicate, duplicate, query, query]
        assert GEDCache().nearest(query, centers) == 2
        assert SharedGEDCache().nearest(query, centers) == 2

    def test_warm_cache_agrees_with_cold(self):
        query = random_chain_flow(1)
        centers = [random_chain_flow(seed) for seed in (2, 5, 8, 13)]
        cold = GEDCache().nearest(query, centers)
        warm_cache = GEDCache()
        for center in centers:
            warm_cache.distance(query, center)   # exacts become their bounds
        assert warm_cache.nearest(query, centers) == cold

    def test_empty_centers_rejected(self):
        with pytest.raises(ValueError):
            GEDCache().nearest(random_chain_flow(0), [])

    def test_clustering_predict_uses_pruned_path(self):
        # ClusteringResult.predict delegates to the cache's nearest();
        # a cache without one falls back to the exhaustive argmin — and
        # the two must agree on every input.
        from repro.clustering.kmeans import GEDKMeans

        flows = [random_chain_flow(seed) for seed in range(10)]
        result = GEDKMeans(3, seed=11).fit(flows)

        class ExhaustiveOnly:
            def __init__(self, inner):
                self._inner = inner

            def distance(self, a, b):
                return self._inner.distance(a, b)

        pruned = [result.predict(flow) for flow in flows]
        result.cache = ExhaustiveOnly(GEDCache())
        exhaustive = [result.predict(flow) for flow in flows]
        assert pruned == exhaustive

    def test_kmeans_fit_unchanged_by_pruned_assignment(self):
        # Same seed, pruning on (default cache) vs off (a cache exposing
        # only distance): identical clustering outcome.
        from repro.clustering.kmeans import GEDKMeans

        class ExhaustiveOnly:
            def __init__(self):
                self._inner = GEDCache()

            def distance(self, a, b):
                return self._inner.distance(a, b)

            def within(self, a, b, threshold):
                return self._inner.within(a, b, threshold)

        flows = [random_chain_flow(seed) for seed in range(12)]
        pruned = GEDKMeans(3, seed=23).fit(flows)
        plain = GEDKMeans(3, seed=23, cache=ExhaustiveOnly()).fit(flows)
        assert pruned.assignments == plain.assignments
        assert pruned.inertia == plain.inertia
        assert [c.structural_signature() for c in pruned.center_graphs] == [
            c.structural_signature() for c in plain.center_graphs
        ]


class TestWithinShortCircuit:
    @settings(max_examples=40, deadline=None)
    @given(
        seed_a=st.integers(0, 30),
        seed_b=st.integers(0, 30),
        threshold=st.sampled_from([0.0, 1.0, 2.0, 3.0, 5.0, 8.0]),
    )
    def test_within_matches_direct_search(self, seed_a, seed_b, threshold):
        a = random_chain_flow(seed_a)
        b = random_chain_flow(seed_b)
        reference = astar_lsa_ged(a, b, threshold=threshold) is not None
        assert GEDCache().within(a, b, threshold) == reference
        assert SharedGEDCache().within(a, b, threshold) == reference

    def test_bound_rejection_is_cached(self):
        # A cheap-bound rejection leaves a reusable lower bound behind.
        a = random_chain_flow(1, max_middle=1)
        b = random_chain_flow(20, max_middle=4)
        cache = GEDCache()
        assert cache.within(a, b, 0.0) is False
        assert cache._lower_bounds, "cheap rejection should persist a bound"
