"""Tests for the workload definitions (Nexmark, PQP, rate patterns)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.dataflow.operators import OperatorType, WindowType
from repro.workloads.nexmark import NEXMARK_QUERY_NAMES, nexmark_queries, nexmark_query
from repro.workloads.pqp import (
    PQP_TEMPLATES,
    TEMPLATE_SIZES,
    pqp_queries,
    pqp_query_set,
)
from repro.workloads.query import StreamingQuery
from repro.workloads.rates import (
    BASIC_CYCLE,
    RateSchedule,
    periodic_multipliers,
    rate_units,
)


class TestRateUnits:
    @pytest.mark.parametrize(
        "query,engine,expected",
        [
            ("q1", "flink", {"src_bids": 700_000.0}),
            ("q1", "timely", {"src_bids": 9_000_000.0}),
            ("q3", "flink", {"src_auctions": 200_000.0, "src_persons": 40_000.0}),
            ("q5", "timely", {"src_bids": 10_000_000.0}),
            ("q8", "flink", {"src_auctions": 100_000.0, "src_persons": 60_000.0}),
        ],
    )
    def test_table2_nexmark_units(self, query, engine, expected):
        assert rate_units("nexmark", query, engine) == expected

    def test_table2_pqp_units(self):
        assert rate_units("pqp", "linear", "flink") == {"src": 5000.0}
        assert sum(rate_units("pqp", "2-way-join", "flink").values()) == 1000.0
        assert sum(rate_units("pqp", "3-way-join", "flink").values()) == 750.0

    def test_unknown_combination(self):
        with pytest.raises(KeyError):
            rate_units("pqp", "linear", "timely")


class TestPeriodicPattern:
    def test_basic_cycle_matches_paper(self):
        assert BASIC_CYCLE == (3, 7, 4, 2, 1, 10, 8, 5, 6, 9)

    def test_full_pattern_has_120_changes(self):
        assert len(periodic_multipliers(n_permutations=6)) == 120

    def test_each_permutation_duplicated(self):
        multipliers = periodic_multipliers(n_permutations=2, seed=1)
        assert multipliers[:10] == multipliers[10:20]       # replicated cycle
        assert sorted(multipliers[20:30]) == sorted(BASIC_CYCLE)

    def test_first_permutation_is_identity(self):
        assert tuple(periodic_multipliers(seed=5)[:10]) == BASIC_CYCLE

    def test_deterministic(self):
        assert periodic_multipliers(seed=3) == periodic_multipliers(seed=3)

    def test_invalid_permutations(self):
        with pytest.raises(ValueError):
            periodic_multipliers(n_permutations=0)

    def test_schedule_for_query(self):
        query = nexmark_query("q1", "flink")
        schedule = RateSchedule.for_query(query, n_permutations=1)
        assert len(schedule) == 20
        assert schedule.steps[0] == {"src_bids": 3 * 700_000.0}


class TestNexmark:
    def test_all_queries_build_and_validate(self):
        for engine in ("flink", "timely"):
            for query in nexmark_queries(engine):
                query.flow.validate()

    def test_query_shapes(self):
        shapes = {name: len(nexmark_query(name).flow) for name in NEXMARK_QUERY_NAMES}
        assert shapes == {"q1": 3, "q2": 3, "q3": 6, "q5": 5, "q8": 4}

    def test_q1_is_stateless_map(self):
        flow = nexmark_query("q1").flow
        assert flow.operator("map_currency").op_type is OperatorType.MAP

    def test_q3_is_incremental_join(self):
        flow = nexmark_query("q3").flow
        join = flow.operator("join_seller")
        assert join.op_type is OperatorType.JOIN
        assert set(flow.upstream("join_seller")) == {"filter_category", "filter_state"}

    def test_q5_has_sliding_windows(self):
        flow = nexmark_query("q5").flow
        assert flow.operator("win_count").window_type is WindowType.SLIDING
        assert flow.operator("win_max").window_type is WindowType.SLIDING

    def test_q8_is_tumbling_window_join(self):
        flow = nexmark_query("q8").flow
        join = flow.operator("win_join")
        assert join.op_type is OperatorType.WINDOW_JOIN
        assert join.window_type is WindowType.TUMBLING

    def test_unknown_query_rejected(self):
        with pytest.raises(KeyError):
            nexmark_query("q99")

    def test_rates_at_multiplier(self):
        query = nexmark_query("q2", "flink")
        assert query.rates_at(10) == {"src_bids": 9_000_000.0}
        with pytest.raises(ValueError):
            query.rates_at(0)


class TestPQP:
    def test_template_sizes_match_paper(self):
        queries = pqp_query_set()
        assert {t: len(qs) for t, qs in queries.items()} == TEMPLATE_SIZES

    def test_all_queries_validate(self):
        for queries in pqp_query_set().values():
            for query in queries:
                query.flow.validate()

    def test_deterministic_generation(self):
        a = pqp_queries("2-way-join")
        b = pqp_queries("2-way-join")
        for qa, qb in zip(a, b):
            assert qa.flow.structural_signature() == qb.flow.structural_signature()
            for name in qa.flow.operator_names:
                assert qa.flow.operator(name) == qb.flow.operator(name)

    def test_different_seed_changes_configs(self):
        a = pqp_queries("linear", seed=1)
        b = pqp_queries("linear", seed=2)
        assert any(
            qa.flow.operator(n).cost_factor != qb.flow.operator(n).cost_factor
            for qa, qb in zip(a, b)
            for n in qa.flow.operator_names
            if n in qb.flow
        )

    def test_corpus_distribution_matches_fig5(self):
        all_queries = nexmark_queries("flink") + [
            q for qs in pqp_query_set().values() for q in qs
        ]
        counts = Counter(len(q.flow) for q in all_queries)
        assert counts == {2: 4, 3: 5, 4: 5, 5: 7, 6: 8, 7: 10, 8: 12, 9: 8, 10: 2}

    def test_join_templates_have_window_joins(self):
        for query in pqp_queries("2-way-join"):
            kinds = {s.op_type for s in query.flow}
            assert OperatorType.WINDOW_JOIN in kinds

    def test_three_way_has_two_joins(self):
        for query in pqp_queries("3-way-join"):
            joins = [s for s in query.flow if s.op_type is OperatorType.WINDOW_JOIN]
            assert len(joins) == 2

    def test_unknown_template(self):
        with pytest.raises(KeyError):
            pqp_queries("4-way-join")


class TestStreamingQuery:
    def test_rate_units_must_match_sources(self):
        flow = nexmark_query("q1").flow
        with pytest.raises(ValueError, match="sources"):
            StreamingQuery(
                name="bad", flow=flow, rate_units={"nope": 1.0}, engine="flink"
            )
