"""Service-level cache pre-warming and resume-aware cache warming.

Pre-warming moves pure work ahead of dispatch; it must never change a
single recommendation (entries come from the exact builders the tuner
runs on a miss), and a resumed fleet must warm the caches from its
completed cells before executing the missing ones.
"""

from __future__ import annotations

import pytest

from repro.api.events import CampaignFinished, CampaignSkipped
from repro.core.finetune import shared_structure_key
from repro.service import CampaignSpec, TuningService, prewarm_caches
from repro.service.cache import TuningCacheSet
from repro.service.prewarm import RESUME_DEMAND
from repro.workloads import nexmark_query


def _spec(name: str, multipliers=(3, 7), seed: int = 41) -> CampaignSpec:
    return CampaignSpec(
        query=nexmark_query(name, "flink"),
        multipliers=tuple(multipliers),
        engine_seed=31,
        seed=seed,
    )


def _steps(outcome):
    return [
        [step.parallelisms for step in process.steps]
        for process in outcome.result.processes
    ]


class TestPrewarmCaches:
    def test_populates_every_section(self, tiny_pretrained):
        caches = TuningCacheSet()
        specs = [_spec("q1"), _spec("q5")]
        stats = prewarm_caches(tiny_pretrained, caches, specs, fit_dedup=True)
        assert stats["assign"] >= 1
        assert stats["warmup"] >= 1
        assert stats["distill"] >= 2      # one per (structure, rate)
        assert stats["embed"] >= 2
        for kind in ("assign", "warmup", "distill", "embed"):
            assert caches.section(kind).stats()["size"] >= 1

    def test_second_pass_computes_nothing(self, tiny_pretrained):
        caches = TuningCacheSet()
        specs = [_spec("q1")]
        prewarm_caches(tiny_pretrained, caches, specs)
        again = prewarm_caches(tiny_pretrained, caches, specs)
        assert again == {"assign": 0, "warmup": 0, "distill": 0, "embed": 0}

    def test_min_demand_gates_expensive_sections(self, tiny_pretrained):
        caches = TuningCacheSet()
        stats = prewarm_caches(
            tiny_pretrained, caches, [_spec("q1"), _spec("q5")], min_demand=2
        )
        # Two structurally distinct campaigns share no rate-conditioned
        # key, so nothing expensive reaches the threshold; assignments are
        # still resolved (cheap, and prerequisites for the accounting).
        assert stats["distill"] == 0
        assert stats["embed"] == 0
        assert stats["assign"] >= 1

    def test_unreachable_min_demand_skips_everything(self, tiny_pretrained):
        caches = TuningCacheSet()
        stats = prewarm_caches(
            tiny_pretrained, caches, [_spec("q1")], min_demand=2
        )
        # The summed demand cannot reach the threshold: nothing is touched,
        # not even assignment.
        assert stats == {"assign": 0, "warmup": 0, "distill": 0, "embed": 0}
        assert caches.section("assign").stats()["size"] == 0

    def test_baseline_specs_are_ignored(self, tiny_pretrained):
        caches = TuningCacheSet()
        spec = CampaignSpec(
            query=nexmark_query("q1", "flink"),
            multipliers=(3.0,),
            engine_seed=31,
            seed=41,
            tuner="ds2",
        )
        stats = prewarm_caches(tiny_pretrained, caches, [spec])
        assert stats == {"assign": 0, "warmup": 0, "distill": 0, "embed": 0}

    def test_without_pretrained_is_a_noop(self):
        stats = prewarm_caches(None, TuningCacheSet(), [_spec("q1")])
        assert sum(stats.values()) == 0

    def test_demand_length_mismatch_rejected(self, tiny_pretrained):
        with pytest.raises(ValueError, match="demands"):
            prewarm_caches(
                tiny_pretrained, TuningCacheSet(), [_spec("q1")], demands=[1, 2]
            )

    def test_prewarmed_entries_match_tuner_builders(self, tiny_pretrained):
        # The warmed value must be exactly what the tuner would compute.
        import numpy as np

        from repro.core.finetune import agnostic_embeddings

        caches = TuningCacheSet()
        spec = _spec("q1")
        prewarm_caches(tiny_pretrained, caches, [spec])
        flow = spec.query.flow
        cluster = tiny_pretrained.assign_cluster(flow)
        rates = spec.query.rates_at(3.0)
        key = shared_structure_key(flow, cluster, rates)
        cached = caches.section("embed").get(key)
        assert cached is not None
        encoder = tiny_pretrained.encoders[cluster]
        np.testing.assert_array_equal(
            cached, agnostic_embeddings(tiny_pretrained, encoder, flow, rates)
        )


class TestServicePrewarmIdentity:
    @pytest.mark.parametrize("backend", ["sequential", "thread"])
    def test_results_identical_with_and_without_prewarm(
        self, tiny_pretrained, backend
    ):
        specs = [_spec("q1"), _spec("q5")]
        off = TuningService(
            tiny_pretrained, backend=backend, prewarm=False
        ).run(specs)
        on = TuningService(
            tiny_pretrained, backend=backend, prewarm=True
        ).run(specs)
        assert [_steps(a) for a in on] == [_steps(b) for b in off]

    def test_thread_auto_warms_only_shared_keys(self, tiny_pretrained):
        # Distinct single-shard campaigns share no expensive key, so the
        # auto policy warms nothing heavy on the thread backend...
        service = TuningService(tiny_pretrained, backend="thread")
        service.run([_spec("q1"), _spec("q5")])
        assert service.last_prewarm["distill"] == 0
        assert service.last_prewarm["embed"] == 0

    def test_thread_auto_warms_sharded_campaigns(self, tiny_pretrained):
        # ...but a sharded trace makes every shard demand the same keys.
        service = TuningService(tiny_pretrained, backend="thread", max_workers=4)
        sharded = service.run([_spec("q1", multipliers=(3, 7, 4))], trace_shards=3)
        assert service.last_prewarm["embed"] >= 1
        assert service.last_prewarm["warmup"] >= 1
        reference = TuningService(
            tiny_pretrained, backend="sequential", prewarm=False
        ).run([_spec("q1", multipliers=(3, 7, 4))])
        assert _steps(sharded[0]) == _steps(reference[0])

    def test_prewarm_true_forces_everything(self, tiny_pretrained):
        service = TuningService(tiny_pretrained, backend="sequential", prewarm=True)
        service.run([_spec("q1")])
        assert service.last_prewarm["warmup"] >= 1
        assert service.last_prewarm["embed"] >= 1

    def test_sequential_auto_stays_cold(self, tiny_pretrained):
        service = TuningService(tiny_pretrained, backend="sequential")
        service.run([_spec("q1")])
        assert service.last_prewarm == {
            "assign": 0, "warmup": 0, "distill": 0, "embed": 0,
        }


class TestResumeAwareWarming:
    def test_resume_warms_caches_from_completed_cells(self, tiny_pretrained):
        specs = [_spec("q1"), _spec("q5")]
        full = {}
        service = TuningService(tiny_pretrained, backend="sequential")
        for event in service.stream(specs):
            if isinstance(event, CampaignFinished):
                full[event.index] = event.outcome
        resume = {specs[0].cell_key: full[0]}

        resumed_service = TuningService(tiny_pretrained, backend="sequential")
        events = list(resumed_service.stream(specs, resume=resume))
        skipped = [e for e in events if isinstance(e, CampaignSkipped)]
        assert [e.campaign for e in skipped] == [specs[0].name]

        # The resumed (not re-executed) campaign's pure entries were
        # restored into the cache set before the missing one ran...
        flow = specs[0].query.flow
        cluster = tiny_pretrained.assign_cluster(flow)
        for multiplier in specs[0].multipliers:
            key = shared_structure_key(
                flow, cluster, specs[0].query.rates_at(multiplier)
            )
            assert resumed_service.caches.section("distill").get(key) is not None
            assert resumed_service.caches.section("embed").get(key) is not None
        assert resumed_service.last_prewarm["warmup"] >= 1

        # ...and the missing campaign's results are bit-identical.
        finished = {
            e.index: e.outcome for e in events if isinstance(e, CampaignFinished)
        }
        assert _steps(finished[1]) == _steps(full[1])

    def test_prewarm_false_disables_resume_warming(self, tiny_pretrained):
        specs = [_spec("q1"), _spec("q5")]
        service = TuningService(tiny_pretrained, backend="sequential")
        full = {}
        for event in service.stream(specs):
            if isinstance(event, CampaignFinished):
                full[event.index] = event.outcome
        cold = TuningService(
            tiny_pretrained, backend="sequential", prewarm=False
        )
        list(cold.stream(specs, resume={specs[0].cell_key: full[0]}))
        assert cold.last_prewarm == {}

    def test_resume_demand_constant_is_large(self):
        assert RESUME_DEMAND >= 1_000_000

    def test_fully_resumed_fleet_still_warms_caches(self, tiny_pretrained):
        # Every cell recorded: nothing executes (and no worker pool spins
        # up), but the completed cells' pure entries are restored so a
        # snapshot taken from this cache set recovers the crashed run's
        # paid-for computations.
        specs = [_spec("q1")]
        service = TuningService(tiny_pretrained, backend="sequential")
        full = {}
        for event in service.stream(specs):
            if isinstance(event, CampaignFinished):
                full[event.index] = event.outcome
        resumed = TuningService(tiny_pretrained, backend="sequential")
        events = list(resumed.stream(specs, resume={specs[0].cell_key: full[0]}))
        assert any(isinstance(e, CampaignSkipped) for e in events)
        assert resumed.last_prewarm["warmup"] >= 1
        assert resumed.caches.section("embed").stats()["size"] >= 1

    def test_invalid_prewarm_value_rejected(self, tiny_pretrained):
        with pytest.raises(ValueError, match="prewarm"):
            TuningService(tiny_pretrained, prewarm="off")


class TestProcessBackendShipping:
    def test_process_results_identical_and_workers_start_warm(
        self, tiny_pretrained
    ):
        specs = [_spec("q1", multipliers=(3,))]
        reference = TuningService(
            tiny_pretrained, backend="sequential", prewarm=False
        ).run(specs)
        service = TuningService(
            tiny_pretrained, backend="process", max_workers=2
        )
        outcomes = service.run(specs)
        # Auto policy on the process backend warms everything the fleet
        # will touch before the pool spins up.
        assert service.last_prewarm["warmup"] >= 1
        assert service.last_prewarm["embed"] >= 1
        assert _steps(outcomes[0]) == _steps(reference[0])
