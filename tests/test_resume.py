"""Checkpoint/resume tests: ResumeLog, service/session replay, CLI --resume.

The acceptance contract: a sweep interrupted after k of n campaigns and
re-run with ``--resume`` executes exactly n-k campaigns and produces
results bit-identical to the uninterrupted run, on both the thread and
process backends.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    CampaignPlan,
    EventBus,
    JsonlRecorder,
    ResumeError,
    ResumeLog,
    SweepPlan,
    TuningPlan,
    TuningSession,
)
from repro.service import CampaignSpec, TuningService
from repro.workloads import nexmark_query


def _truncate_after_first_finished(source, target):
    """Keep the log prefix up to (and including) the first finished
    campaign — what a killed fleet leaves behind."""
    kept = []
    for line in source.read_text().splitlines():
        kept.append(line)
        if json.loads(line)["event"] == "CampaignFinished":
            break
    target.write_text("\n".join(kept) + "\n")
    return target


def _step_maps(outcome):
    return [
        [step.parallelisms for step in process.steps]
        for process in outcome.result.processes
    ]


def _ds2_specs(names=("q1", "q5")):
    return [
        CampaignSpec(
            query=nexmark_query(name, "flink"),
            multipliers=(3.0, 7.0),
            engine_seed=31,
            seed=41,
            tuner="ds2",
        )
        for name in names
    ]


# ----------------------------------------------------------------------
# ResumeLog parsing
# ----------------------------------------------------------------------

class TestResumeLog:
    def _record(self, path, specs):
        service = TuningService(None, backend="sequential")
        with JsonlRecorder(path) as recorder:
            for event in service.stream(specs):
                recorder(event)

    def test_missing_file_is_a_clear_error(self, tmp_path):
        with pytest.raises(ResumeError, match="does not exist"):
            ResumeLog.load(tmp_path / "nope.jsonl")

    def test_garbage_file_is_a_clear_error(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("definitely not json\nalso not json\n")
        with pytest.raises(ResumeError, match="no parseable events"):
            ResumeLog.load(path)

    def test_indexes_completed_campaigns_by_cell_key(self, tmp_path):
        specs = _ds2_specs()
        path = tmp_path / "events.jsonl"
        self._record(path, specs)
        log = ResumeLog.load(path)
        assert log.n_completed == 2
        assert log.n_malformed_lines == 0
        for spec in specs:
            outcome = log.outcome_for(spec.cell_key)
            assert outcome is not None
            assert outcome.spec_name == spec.name
        assert log.outcome_for("flink:ds2:other:x3:s41") is None
        recorded, missing = log.covers(
            [specs[0].cell_key, "unknown", specs[1].cell_key]
        )
        assert recorded == [specs[0].cell_key, specs[1].cell_key]
        assert missing == ["unknown"]

    def test_crash_truncated_tail_is_tolerated(self, tmp_path):
        specs = _ds2_specs()
        path = tmp_path / "events.jsonl"
        self._record(path, specs)
        torn = tmp_path / "torn.jsonl"
        text = path.read_text()
        lines = text.splitlines()
        # cut the final line mid-write, as a crash would
        torn.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        log = ResumeLog.load(torn)
        assert log.n_malformed_lines == 1
        assert log.n_completed == 2          # finished lines were intact

    def test_failed_campaigns_are_retried_not_resumed(self, tmp_path):
        from repro.api.events import CampaignFailed

        specs = _ds2_specs(names=("q1",))
        path = tmp_path / "events.jsonl"
        with JsonlRecorder(path) as recorder:
            recorder(CampaignFailed(
                campaign=specs[0].name, index=0, error_type="RuntimeError",
                error_message="boom", seq=0, cell_key=specs[0].cell_key,
            ))
        log = ResumeLog.load(path)
        assert log.n_completed == 0
        assert specs[0].cell_key in log.failed_cell_keys
        assert log.outcome_for(specs[0].cell_key) is None

    def test_finished_without_payload_is_not_a_checkpoint(self, tmp_path):
        # Logs predating result payloads must re-execute, not crash.
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps({
            "event": "CampaignFinished", "campaign": "c", "index": 0,
            "backend": "thread", "n_steps": 1, "converged_steps": 1,
            "wall_seconds": 0.1, "seq": 0, "scenario": None, "cell_key": "k",
        }) + "\n")
        log = ResumeLog.load(path)
        assert log.n_completed == 0


# ----------------------------------------------------------------------
# service-level resume
# ----------------------------------------------------------------------

class TestServiceResume:
    def test_resumed_run_skips_everything_and_matches(self, tmp_path):
        from repro.api.events import CampaignSkipped, CampaignStarted

        specs = _ds2_specs()
        path = tmp_path / "events.jsonl"
        service = TuningService(None, backend="sequential")
        with JsonlRecorder(path) as recorder:
            outcomes = {}
            for event in service.stream(specs):
                recorder(event)
                if event.kind == "CampaignFinished":
                    outcomes[event.index] = event.outcome
        log = ResumeLog.load(path)
        resumed_service = TuningService(None, backend="thread", max_workers=2)
        events = list(resumed_service.stream(specs, resume=log))
        assert not [e for e in events if isinstance(e, CampaignStarted)]
        skipped = [e for e in events if isinstance(e, CampaignSkipped)]
        assert [e.campaign for e in skipped] == [spec.name for spec in specs]
        assert all(e.resumed_from == str(path) for e in skipped)
        replayed = {
            e.index: e.outcome for e in events if e.kind == "CampaignFinished"
        }
        for index, original in outcomes.items():
            # replay is exact — including the recorded wall-clock fields
            assert replayed[index].result == original.result
            assert replayed[index].wall_seconds == original.wall_seconds

    def test_partial_resume_executes_only_the_missing_campaign(self, tmp_path):
        from repro.api.events import CampaignSkipped, CampaignStarted

        specs = _ds2_specs()
        reference = TuningService(None, backend="sequential").run(specs)
        resume = {specs[0].cell_key: reference[0]}
        service = TuningService(None, backend="sequential")
        events = list(service.stream(specs, resume=resume))
        started = [e for e in events if isinstance(e, CampaignStarted)]
        skipped = [e for e in events if isinstance(e, CampaignSkipped)]
        assert [e.campaign for e in skipped] == [specs[0].name]
        assert [e.campaign for e in started] == [specs[1].name]
        outcomes = {e.index: e.outcome for e in events if e.kind == "CampaignFinished"}
        assert _step_maps(outcomes[1]) == _step_maps(reference[1])

    def test_run_accepts_resume(self, tmp_path):
        specs = _ds2_specs()
        reference = TuningService(None, backend="sequential").run(specs)
        resume = {spec.cell_key: outcome
                  for spec, outcome in zip(specs, reference)}
        outcomes = TuningService(None, backend="sequential").run(specs, resume=resume)
        assert [o.result for o in outcomes] == [o.result for o in reference]

    def test_bad_resume_type_rejected(self):
        service = TuningService(None, backend="sequential")
        with pytest.raises(TypeError, match="resume"):
            list(service.stream(_ds2_specs(), resume=42))

    def test_fully_resumed_streamtune_fleet_needs_no_pretrained(self, tmp_path,
                                                                tiny_pretrained):
        specs = [
            CampaignSpec(
                query=nexmark_query("q1", "flink"),
                multipliers=(3.0, 7.0),
                engine_seed=31,
                seed=41,
            )
        ]
        path = tmp_path / "events.jsonl"
        service = TuningService(tiny_pretrained, backend="sequential")
        with JsonlRecorder(path) as recorder:
            for event in service.stream(specs):
                recorder(event)
        # Every campaign is recorded: the artifact-free service replays
        # without tripping its streamtune-needs-pretrained validation.
        blind = TuningService(None, backend="sequential")
        outcomes = blind.run(specs, resume=ResumeLog.load(path))
        assert outcomes[0].result.method == "StreamTune"


# ----------------------------------------------------------------------
# the acceptance contract: interrupted sweep, bit-identical resume
# ----------------------------------------------------------------------

class TestSweepResume:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_interrupted_sweep_resumes_bit_identical(self, tiny_pretrained,
                                                     tmp_path, backend):
        plan = SweepPlan(
            queries=("q1", "q5"),
            tuners=("streamtune", "ds2"),
            rate_traces=((3.0, 7.0),),
            backend=backend,
            workers=2,
            scale="smoke",
            seed=17,
        )
        n_total = len(plan.cell_keys())
        full_log = tmp_path / "full.jsonl"
        with JsonlRecorder(full_log) as recorder:
            full = TuningSession(pretrained=tiny_pretrained).run(
                plan, bus=EventBus(recorder)
            )
        truncated = _truncate_after_first_finished(
            full_log, tmp_path / "truncated.jsonl"
        )
        resumed_log = tmp_path / "resumed.jsonl"
        with JsonlRecorder(resumed_log) as recorder:
            resumed = TuningSession(pretrained=tiny_pretrained).run(
                plan, bus=EventBus(recorder), resume=truncated
            )
        events = [
            json.loads(line) for line in resumed_log.read_text().splitlines()
        ]
        # interrupted after k=1 of n campaigns -> exactly n-1 executed
        started = [e for e in events if e["event"] == "CampaignStarted"]
        skipped = [e for e in events if e["event"] == "CampaignSkipped"]
        assert len(skipped) == 1
        assert len(started) == n_total - 1
        # ... and the merged results are bit-identical to the full run
        assert [label for label, _ in resumed.scenarios] == [
            label for label, _ in full.scenarios
        ]
        for (_, full_cell), (_, resumed_cell) in zip(
            full.scenarios, resumed.scenarios
        ):
            for ours, theirs in zip(full_cell.outcomes, resumed_cell.outcomes):
                assert ours.spec_name == theirs.spec_name
                assert ours.result.multipliers == theirs.result.multipliers
                assert _step_maps(ours) == _step_maps(theirs)
                assert [p.converged for p in ours.result.processes] == [
                    p.converged for p in theirs.result.processes
                ]

    def test_fully_recorded_sweep_replays_without_execution(self, tiny_pretrained,
                                                            tmp_path):
        plan = SweepPlan(
            queries=("q1",),
            tuners=("ds2",),
            rate_traces=((3.0, 7.0),),
            backend="sequential",
            scale="smoke",
            seed=17,
        )
        log = tmp_path / "full.jsonl"
        with JsonlRecorder(log) as recorder:
            full = TuningSession().run(plan, bus=EventBus(recorder))
        events = []
        stream = TuningSession().stream(plan, resume=log)
        while True:
            try:
                events.append(next(stream))
            except StopIteration as stop:
                resumed = stop.value
                break
        assert [e.kind for e in events if e.kind.startswith("Campaign")] == [
            "CampaignSkipped", "CampaignFinished"
        ]
        assert (
            resumed.results[0].outcomes[0].result
            == full.results[0].outcomes[0].result
        )


# ----------------------------------------------------------------------
# plan-level resume
# ----------------------------------------------------------------------

class TestPlanResume:
    def test_cell_keys_match_the_stamped_events(self, tmp_path):
        plan = CampaignPlan(
            queries=("q1", "q5"), rates=(3.0, 7.0), tuner="ds2",
            backend="sequential", scale="smoke", seed=17,
        )
        log = tmp_path / "events.jsonl"
        with JsonlRecorder(log) as recorder:
            TuningSession().run(plan, bus=EventBus(recorder))
        recorded = {
            json.loads(line).get("cell_key")
            for line in log.read_text().splitlines()
            if json.loads(line)["event"] == "CampaignFinished"
        }
        assert recorded == set(plan.cell_keys())

    def test_tuning_plan_resume_replays_exactly(self, tmp_path):
        plan = TuningPlan(
            query="q1", rates=(3.0, 7.0), tuner="ds2", scale="smoke", seed=17
        )
        assert len(plan.cell_keys()) == 1
        log = tmp_path / "events.jsonl"
        with JsonlRecorder(log) as recorder:
            first = TuningSession().run(plan, bus=EventBus(recorder))
        events = []
        stream = TuningSession().stream(plan, resume=log)
        while True:
            try:
                events.append(next(stream))
            except StopIteration as stop:
                resumed = stop.value
                break
        assert [e.kind for e in events] == [
            "CampaignSkipped", "CampaignFinished", "CacheStats"
        ]
        # exact replay, recorded wall-clock fields included
        assert resumed.result == first.result
        assert resumed.outcomes[0].wall_seconds == first.outcomes[0].wall_seconds

    def test_cross_plan_resume_is_conservative(self, tmp_path):
        # The inline tuning lifecycle seeds its engine from the scale
        # while a campaign fleet seeds it from the plan, so the same
        # (query, tuner, trace, seed) can still measure differently.
        # The cell keys encode that engine seed: a log recorded by one
        # plan kind must NOT resume the other — it re-executes instead
        # of replaying a result from a differently-seeded engine.
        tuning = TuningPlan(
            query="q1", rates=(3.0, 7.0), tuner="ds2", scale="smoke", seed=17
        )
        campaign = CampaignPlan(
            queries=("q1",), rates=(3.0, 7.0), tuner="ds2",
            backend="sequential", scale="smoke", seed=17,
        )
        assert tuning.cell_keys() != campaign.cell_keys()
        log = tmp_path / "tuning.jsonl"
        with JsonlRecorder(log) as recorder:
            TuningSession().run(tuning, bus=EventBus(recorder))
        events = []
        stream = TuningSession().stream(campaign, resume=log)
        while True:
            try:
                events.append(next(stream))
            except StopIteration:
                break
        kinds = [e.kind for e in events]
        assert "CampaignSkipped" not in kinds
        assert "CampaignStarted" in kinds


# ----------------------------------------------------------------------
# CLI --resume
# ----------------------------------------------------------------------

class TestCliResume:
    def _plan_file(self, tmp_path):
        plan = tmp_path / "campaign.json"
        plan.write_text(json.dumps({
            "kind": "campaign", "queries": ["q1"], "rates": [3, 7],
            "tuner": "ds2", "backend": "sequential", "scale": "smoke",
            "seed": 17,
        }))
        return plan

    def test_missing_resume_log_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        plan = self._plan_file(tmp_path)
        code = main(["run-plan", str(plan), "--resume", str(tmp_path / "no.jsonl")])
        assert code == 2
        err = capsys.readouterr().err
        assert "does not exist" in err and "Traceback" not in err

    def test_record_then_resume_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        plan = self._plan_file(tmp_path)
        log = tmp_path / "events.jsonl"
        assert main(["run-plan", str(plan), "--record", str(log)]) == 0
        capsys.readouterr()
        assert main(["run-plan", str(plan), "--resume", str(log)]) == 0
        captured = capsys.readouterr()
        assert "resume: 1 of 1 campaign(s) already recorded" in captured.err
        assert "executing 0" in captured.err

    def test_resume_auto_discovers_latest_record(self, tmp_path, capsys):
        # `--resume auto` picks the newest *.jsonl next to --record,
        # never the current run's own record target.
        import os

        from repro.cli import main

        plan = self._plan_file(tmp_path)
        log = tmp_path / "events.jsonl"
        assert main(["run-plan", str(plan), "--record", str(log)]) == 0
        stale = tmp_path / "older.jsonl"
        stale.write_text("not an event log\n")
        os.utime(stale, (1, 1))            # decisively older than the record
        capsys.readouterr()
        code = main([
            "run-plan", str(plan),
            "--record", str(tmp_path / "resumed.jsonl"),
            "--resume", "auto",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert f"resume: auto-discovered {log}" in err
        assert "executing 0" in err

    def test_resume_auto_without_logs_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        plan = self._plan_file(tmp_path)
        code = main([
            "run-plan", str(plan),
            "--record", str(tmp_path / "resumed.jsonl"),
            "--resume", "auto",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "no *.jsonl record" in err and "Traceback" not in err


class TestDiscoverLatestLog:
    def test_latest_mtime_wins(self, tmp_path):
        import os

        from repro.api.resume import discover_latest_log

        old = tmp_path / "a.jsonl"
        new = tmp_path / "b.jsonl"
        old.write_text("{}\n")
        new.write_text("{}\n")
        os.utime(old, (100, 100))
        os.utime(new, (200, 200))
        assert discover_latest_log(tmp_path) == new

    def test_mtime_ties_break_by_name(self, tmp_path):
        import os

        from repro.api.resume import discover_latest_log

        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        first.write_text("{}\n")
        second.write_text("{}\n")
        os.utime(first, (100, 100))
        os.utime(second, (100, 100))
        assert discover_latest_log(tmp_path) == second

    def test_equal_nanosecond_mtimes_pick_is_order_independent(self, tmp_path):
        # Coarse-timestamp filesystems routinely stamp two logs with the
        # exact same mtime.  Create the lexicographically-last log FIRST
        # so directory iteration order disagrees with the tie-break: the
        # winner must come from the path, not from creation order, and
        # must be identical at nanosecond resolution.
        import os

        from repro.api.resume import discover_latest_log

        last = tmp_path / "z.jsonl"
        first = tmp_path / "a.jsonl"
        last.write_text("{}\n")
        first.write_text("{}\n")
        stamp_ns = 1_700_000_000_123_456_789
        os.utime(first, ns=(stamp_ns, stamp_ns))
        os.utime(last, ns=(stamp_ns, stamp_ns))
        assert first.stat().st_mtime_ns == last.stat().st_mtime_ns
        for _ in range(3):                     # stable on every call
            assert discover_latest_log(tmp_path) == last

    def test_sub_second_mtime_difference_is_respected(self, tmp_path):
        # One nanosecond apart must not read as a tie: float st_mtime
        # would collapse these, st_mtime_ns keeps them ordered.
        import os

        from repro.api.resume import discover_latest_log

        older = tmp_path / "z.jsonl"          # name would win a tie
        newer = tmp_path / "a.jsonl"
        older.write_text("{}\n")
        newer.write_text("{}\n")
        stamp_ns = 1_700_000_000_123_456_789
        os.utime(older, ns=(stamp_ns, stamp_ns))
        os.utime(newer, ns=(stamp_ns + 1, stamp_ns + 1))
        if newer.stat().st_mtime_ns == older.stat().st_mtime_ns:
            pytest.skip("filesystem does not store nanosecond mtimes")
        assert discover_latest_log(tmp_path) == newer

    def test_exclude_removes_the_current_record_target(self, tmp_path):
        import os

        from repro.api.resume import discover_latest_log

        older = tmp_path / "a.jsonl"
        newest = tmp_path / "current.jsonl"
        older.write_text("{}\n")
        newest.write_text("{}\n")
        os.utime(older, (100, 100))
        os.utime(newest, (200, 200))
        assert discover_latest_log(tmp_path, exclude={newest}) == older

    def test_empty_directory_raises(self, tmp_path):
        from repro.api.resume import ResumeError, discover_latest_log

        with pytest.raises(ResumeError, match="no \\*.jsonl record"):
            discover_latest_log(tmp_path)

    def test_non_directory_raises(self, tmp_path):
        from repro.api.resume import ResumeError, discover_latest_log

        with pytest.raises(ResumeError, match="not a directory"):
            discover_latest_log(tmp_path / "missing")
