"""Tests for the §VII live-reconfiguration extension."""

from __future__ import annotations

import pytest

from repro.engines.base import (
    LIVE_SETTLING_MINUTES,
    STABILIZATION_MINUTES,
    EngineError,
)
from repro.engines.flink import FlinkCluster


class LiveFlinkCluster(FlinkCluster):
    """A Flink deployment with ByteDance-style runtime parallelism APIs."""

    supports_live_reconfigure = True


@pytest.fixture
def live_engine(linear_flow):
    engine = LiveFlinkCluster(seed=5)
    deployment = engine.deploy(
        linear_flow, dict.fromkeys(linear_flow.operator_names, 1), {"src": 1e5}
    )
    return engine, deployment


class TestLiveReconfigure:
    def test_default_engines_refuse(self, flink, linear_flow):
        deployment = flink.deploy(
            linear_flow, dict.fromkeys(linear_flow.operator_names, 1), {"src": 1e5}
        )
        with pytest.raises(EngineError, match="live"):
            flink.live_reconfigure(deployment, dict.fromkeys(linear_flow.operator_names, 2))

    def test_live_change_applies_without_restart_cost(self, live_engine):
        engine, deployment = live_engine
        engine.live_reconfigure(deployment, {"src": 1, "filter": 4, "sink": 2})
        assert deployment.parallelisms["filter"] == 4
        assert deployment.n_reconfigurations == 1
        assert deployment.sim_minutes == pytest.approx(LIVE_SETTLING_MINUTES)

    def test_live_is_cheaper_than_restart(self, live_engine):
        engine, deployment = live_engine
        engine.live_reconfigure(deployment, {"src": 1, "filter": 4, "sink": 2})
        live_cost = deployment.sim_minutes
        engine.reconfigure(deployment, {"src": 1, "filter": 5, "sink": 2})
        restart_cost = deployment.sim_minutes - live_cost
        assert restart_cost == pytest.approx(STABILIZATION_MINUTES)
        assert live_cost < restart_cost

    def test_live_change_validated(self, live_engine):
        engine, deployment = live_engine
        with pytest.raises(EngineError):
            engine.live_reconfigure(deployment, {"src": 1, "filter": 0, "sink": 1})

    def test_measurements_reflect_live_change(self, live_engine):
        engine, deployment = live_engine
        before = engine.measure(deployment)
        engine.live_reconfigure(deployment, {"src": 1, "filter": 8, "sink": 2})
        after = engine.measure(deployment)
        assert after["filter"].parallelism == 8
        assert before["filter"].parallelism == 1
