"""Tests for TuningSession / AsyncTuningSession and the CLI plan shell."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import (
    AsyncTuningSession,
    CampaignPlan,
    PlanError,
    SessionResult,
    TuningPlan,
    TuningSession,
)
from repro.service import CampaignSpec, TuningService
from repro.service.cache import TuningCacheSet
from repro.workloads import nexmark_query


def _canonical(step) -> tuple:
    """A TuningStep minus ``recommendation_seconds`` (wall-clock, not
    deterministic); everything else must be bit-identical."""
    return (
        step.parallelisms,
        step.reconfigured,
        step.backpressure_after,
        step.mean_cpu_utilisation,
    )


def _steps(result: SessionResult) -> list:
    """Flatten every TuningStep of every process of every campaign."""
    return [
        _canonical(step)
        for campaign in result.results
        for process in campaign.processes
        for step in process.steps
    ]


def _smoke_plan(**overrides) -> CampaignPlan:
    defaults = dict(
        queries=("q1", "q5"),
        rates=(3, 7),
        backend="sequential",
        scale="smoke",
        seed=41,
    )
    defaults.update(overrides)
    return CampaignPlan(**defaults)


class TestTuningSessionCampaigns:
    def test_smoke_campaign_runs(self, tiny_pretrained):
        session = TuningSession(pretrained=tiny_pretrained)
        result = session.run(_smoke_plan())
        assert [o.spec_name for o in result.outcomes] == [
            "nexmark_q1_flink", "nexmark_q5_flink"
        ]
        assert result.backend == "sequential"
        for campaign in result.results:
            assert campaign.n_processes == 2
        assert result.cache_stats["warmup"]["misses"] >= 1
        assert result.outcome("nexmark_q5_flink").result.method == "StreamTune"
        with pytest.raises(KeyError, match="nexmark_q1_flink"):
            result.outcome("nope")

    def test_matches_pre_redesign_service_invocation(self, tiny_pretrained):
        """A CampaignPlan must reproduce the legacy construction bit-for-bit."""
        plan = _smoke_plan(backend="thread", workers=2)
        session_result = TuningSession(pretrained=tiny_pretrained).run(plan)

        # The pre-redesign path: hand-built specs straight into the service
        # (exactly what the old `serve-campaigns` command did).
        specs = [
            CampaignSpec(
                query=nexmark_query(name, "flink"),
                multipliers=(3.0, 7.0),
                engine="flink",
                engine_seed=41,
                seed=41,
                model_kind="svm",
            )
            for name in ("q1", "q5")
        ]
        service = TuningService(tiny_pretrained, backend="thread", max_workers=2)
        legacy = service.run(specs)

        for ours, theirs in zip(session_result.outcomes, legacy):
            assert ours.spec_name == theirs.spec_name
            assert ours.result.multipliers == theirs.result.multipliers
            for mine, reference in zip(ours.result.processes, theirs.result.processes):
                assert list(map(_canonical, mine.steps)) == list(
                    map(_canonical, reference.steps)
                )
                assert mine.converged == reference.converged

    def test_backend_identity_sequential_vs_thread(self, tiny_pretrained):
        sequential = TuningSession(pretrained=tiny_pretrained).run(_smoke_plan())
        threaded = TuningSession(pretrained=tiny_pretrained).run(
            _smoke_plan(backend="thread", workers=2)
        )
        assert _steps(sequential) == _steps(threaded)

    def test_rates_per_query_traces(self, tiny_pretrained):
        plan = _smoke_plan(rates=(3, 7, 4, 2), rates_per_query=True)
        result = TuningSession(pretrained=tiny_pretrained).run(plan)
        assert result.outcomes[0].result.multipliers == [3.0, 7.0]
        assert result.outcomes[1].result.multipliers == [4.0, 2.0]

    def test_run_rejects_non_plans(self, tiny_pretrained):
        with pytest.raises(PlanError, match="TuningPlan, "):
            TuningSession(pretrained=tiny_pretrained).run({"queries": ["q1"]})

    def test_ablation_tuner_spelling_selects_the_model(self, tiny_pretrained):
        plan = TuningPlan(
            query="q1", rates=(3,), tuner="streamtune-isotonic",
            scale="smoke", seed=5,
        )
        session = TuningSession(pretrained=tiny_pretrained)
        captured = {}
        import repro.api.components as components

        original = components.StreamTuneTuner

        class Spy(original):
            def __init__(self, *args, **kwargs):
                captured["model_kind"] = kwargs.get("model_kind")
                super().__init__(*args, **kwargs)

        components.StreamTuneTuner = Spy
        try:
            session.run(plan)
        finally:
            components.StreamTuneTuner = original
        assert captured["model_kind"] == "isotonic"


class TestAsyncSession:
    def test_async_results_identical_to_sync(self, tiny_pretrained):
        plan = _smoke_plan(backend="thread", workers=2)
        sync_result = TuningSession(pretrained=tiny_pretrained).run(plan)

        async def drive():
            session = AsyncTuningSession(pretrained=tiny_pretrained)
            return await session.run(plan)

        async_result = asyncio.run(drive())
        assert _steps(async_result) == _steps(sync_result)
        assert [o.spec_name for o in async_result.outcomes] == [
            o.spec_name for o in sync_result.outcomes
        ]

    def test_run_all_gathers_in_order(self, tiny_pretrained):
        plans = [_smoke_plan(), _smoke_plan(queries=("q5",))]

        async def drive():
            session = AsyncTuningSession(pretrained=tiny_pretrained)
            return await session.run_all(plans)

        results = asyncio.run(drive())
        assert len(results) == 2
        assert results[1].outcomes[0].spec_name == "nexmark_q5_flink"


class TestCachePersistence:
    def test_snapshot_round_trip(self, tmp_path):
        caches = TuningCacheSet()
        caches.get_or_compute("assign", ("sig",), lambda: 3)
        caches.get_or_compute("embed", ("k",), lambda: [1.0, 2.0])
        path = tmp_path / "caches.pkl"
        caches.save(path)
        loaded = TuningCacheSet.load(path)
        assert loaded.get_or_compute("assign", ("sig",), lambda: 99) == 3
        assert loaded.get_or_compute("embed", ("k",), lambda: None) == [1.0, 2.0]
        # counters are run-local accounting, not persisted state
        assert loaded.section("warmup").stats()["misses"] == 0

    def test_snapshot_rejects_garbage_and_bad_version(self, tmp_path):
        import pickle

        garbage = tmp_path / "garbage.pkl"
        garbage.write_bytes(pickle.dumps({"anything": 1}))
        with pytest.raises(ValueError, match="not a TuningCacheSet"):
            TuningCacheSet.load(garbage)

        stale = tmp_path / "stale.pkl"
        stale.write_bytes(
            pickle.dumps(
                {
                    "format": "repro.service.TuningCacheSet",
                    "version": 999,
                    "sections": {},
                }
            )
        )
        with pytest.raises(ValueError, match="version"):
            TuningCacheSet.load(stale)

    def test_session_cache_path_warms_next_run(self, tiny_pretrained, tmp_path):
        path = tmp_path / "service-caches.pkl"
        plan = _smoke_plan(cache_path=str(path))
        first = TuningSession(pretrained=tiny_pretrained).run(plan)
        assert path.exists()
        assert first.cache_stats["warmup"]["misses"] >= 1
        # A brand-new session (fresh service, fresh cache set) starts from
        # the snapshot: nothing is recomputed, results are identical.
        second = TuningSession(pretrained=tiny_pretrained).run(plan)
        assert second.cache_stats["warmup"]["misses"] == 0
        assert second.cache_stats["distill"]["misses"] == 0
        assert _steps(second) == _steps(first)


class TestCliPlanShell:
    def test_serve_campaigns_rates_not_multiple_fails_fast(self, capsys):
        from repro.cli import main

        code = main([
            "serve-campaigns", "--queries", "q1,q5",
            "--rates", "3,7,4", "--rates-per-query",
            "--backend", "sequential", "--scale", "smoke",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "3 multipliers" in err and "2 queries" in err and "multiple" in err

    def test_serve_campaigns_malformed_rates_fails_fast(self, capsys):
        from repro.cli import main

        code = main([
            "serve-campaigns", "--queries", "q1", "--rates", "3,,7",
        ])
        assert code == 2
        assert "malformed" in capsys.readouterr().err

    def test_serve_campaigns_unknown_query_fails_fast(self, capsys):
        from repro.cli import main

        code = main(["serve-campaigns", "--queries", "q1,q9", "--rates", "3"])
        assert code == 2
        assert "q9" in capsys.readouterr().err

    def test_run_plan_campaign_file(self, tiny_pretrained, tmp_path, capsys, monkeypatch):
        from repro import cli
        from repro.experiments import context

        monkeypatch.setattr(
            context, "pretrained_model", lambda engine, scale: tiny_pretrained
        )
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "queries": ["q1", "q5"],
            "rates": [3, 7],
            "backend": "sequential",
            "scale": "smoke",
            "seed": 41,
        }))
        assert cli.main(["run-plan", str(path)]) == 0
        out = capsys.readouterr().out
        assert "nexmark_q1_flink" in out and "nexmark_q5_flink" in out
        assert "cache hits/misses" in out

    def test_run_plan_backend_override_rejected_for_tuning_plans(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"query": "q1", "scale": "smoke"}))
        code = main(["run-plan", str(path), "--backend", "thread"])
        assert code == 2
        assert "campaign and sweep plans only" in capsys.readouterr().err


class TestSessionStreaming:
    def test_stream_contract_and_result_identity(self, tiny_pretrained):
        from repro.api import CacheStats, CampaignFinished, CampaignStarted, StepCompleted

        session = TuningSession(pretrained=tiny_pretrained)
        plan = _smoke_plan(backend="thread", workers=2)
        stream = session.stream(plan)
        events = []
        while True:
            try:
                events.append(next(stream))
            except StopIteration as stop:
                streamed_result = stop.value
                break
        seqs = [event.seq for event in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        names = ("nexmark_q1_flink", "nexmark_q5_flink")
        for name in names:
            scoped = [e for e in events if getattr(e, "campaign", None) == name]
            assert isinstance(scoped[0], CampaignStarted)
            assert isinstance(scoped[-1], CampaignFinished)
            steps = [e for e in scoped if isinstance(e, StepCompleted)]
            assert [e.step_index for e in steps] == [0, 1]
        assert sum(isinstance(e, CacheStats) for e in events) == 1
        # the stream's return value is the same result run() produces
        assert _steps(streamed_result) == _steps(
            TuningSession(pretrained=tiny_pretrained).run(_smoke_plan())
        )
        assert [o.spec_name for o in streamed_result.outcomes] == list(names)

    def test_run_publishes_to_bus(self, tiny_pretrained):
        from repro.api import EventBus, MetricsAggregator

        metrics = MetricsAggregator()
        bus = EventBus(metrics)
        result = TuningSession(pretrained=tiny_pretrained).run(_smoke_plan(), bus=bus)
        assert metrics.counts["CampaignStarted"] == 2
        assert metrics.counts["CampaignFinished"] == 2
        assert metrics.summary()["steps"] == 4
        assert not bus.errors
        assert len(result.outcomes) == 2

    def test_tuning_plan_streams_events(self, tiny_pretrained):
        from repro.api import CampaignFinished, CampaignStarted, StepCompleted

        plan = TuningPlan(query="q1", rates=(3, 8), scale="smoke", seed=5)
        events = list(TuningSession(pretrained=tiny_pretrained).stream(plan))
        kinds = [event.kind for event in events]
        assert kinds[0] == "CampaignStarted" and kinds[-1] == "CacheStats"
        assert [event.seq for event in events] == list(range(len(events)))
        steps = [e for e in events if isinstance(e, StepCompleted)]
        assert [e.step_index for e in steps] == [0, 1]
        assert [e for e in events if isinstance(e, CampaignStarted)][0].backend == "inline"
        finished = [e for e in events if isinstance(e, CampaignFinished)]
        assert len(finished) == 1 and finished[0].outcome is not None

    def test_trace_shards_results_identical(self, tiny_pretrained):
        unsharded = TuningSession(pretrained=tiny_pretrained).run(
            _smoke_plan(rates=(3, 7, 4))
        )
        sharded = TuningSession(pretrained=tiny_pretrained).run(
            _smoke_plan(rates=(3, 7, 4), backend="thread", workers=4, trace_shards=3)
        )
        assert _steps(sharded) == _steps(unsharded)
        assert [o.spec_name for o in sharded.outcomes] == [
            o.spec_name for o in unsharded.outcomes
        ]


class TestSweepExecution:
    def _sweep_plan(self, **overrides):
        from repro.api import SweepPlan

        defaults = dict(
            queries=("q1", "q5"),
            tuners=("streamtune", "ds2"),
            rate_traces=((3, 7),),
            backend="sequential",
            scale="smoke",
            seed=41,
        )
        defaults.update(overrides)
        return SweepPlan(**defaults)

    def test_sweep_runs_every_cell(self, tiny_pretrained):
        from repro.api import SweepResult

        result = TuningSession(pretrained=tiny_pretrained).run(self._sweep_plan())
        assert isinstance(result, SweepResult)
        assert len(result.results) == 2 and result.n_campaigns == 4
        labels = [label for label, _ in result.scenarios]
        assert labels == ["streamtune@flink/x3-7", "ds2@flink/x3-7"]
        streamtune_cell = result.scenario("streamtune@flink/x3-7")
        ds2_cell = result.scenario("ds2@flink/x3-7")
        assert streamtune_cell.outcomes[0].result.method == "StreamTune"
        assert ds2_cell.outcomes[0].result.method == "DS2"
        with pytest.raises(KeyError, match="streamtune@flink"):
            result.scenario("nope")

    def test_sweep_events_are_scenario_labelled(self, tiny_pretrained):
        from repro.api import SweepFinished

        events = list(
            TuningSession(pretrained=tiny_pretrained).stream(self._sweep_plan())
        )
        assert isinstance(events[-1], SweepFinished)
        assert events[-1].n_scenarios == 2 and events[-1].n_campaigns == 4
        labelled = [e for e in events if not isinstance(e, SweepFinished)]
        assert all(e.scenario for e in labelled)
        assert {e.scenario for e in labelled} == {
            "streamtune@flink/x3-7", "ds2@flink/x3-7"
        }
        seqs = [e.seq for e in labelled]
        assert seqs == sorted(seqs)

    def test_sweep_streamtune_matches_plain_campaign(self, tiny_pretrained):
        """A sweep's streamtune cell is bit-identical to the same CampaignPlan."""
        sweep = TuningSession(pretrained=tiny_pretrained).run(
            self._sweep_plan(tuners=("streamtune",))
        )
        direct = TuningSession(pretrained=tiny_pretrained).run(_smoke_plan())
        assert _steps(sweep.results[0]) == _steps(direct)


class TestAsyncStreaming:
    def test_early_exit_does_not_hang(self, tiny_pretrained):
        plan = _smoke_plan(backend="thread", workers=2)

        async def drive():
            session = AsyncTuningSession(pretrained=tiny_pretrained)
            async for event in session.stream(plan):
                return event.kind          # abandon after the first event

        import time

        started = time.perf_counter()
        first = asyncio.run(drive())
        assert first == "CampaignStarted"
        # generously below a full-fleet drain, which takes seconds
        assert time.perf_counter() - started < 30

    def test_async_stream_yields_same_events(self, tiny_pretrained):
        plan = _smoke_plan()
        sync_events = list(TuningSession(pretrained=tiny_pretrained).stream(plan))

        async def drive():
            session = AsyncTuningSession(pretrained=tiny_pretrained)
            collected = []
            async for event in session.stream(plan):
                collected.append(event)
            return collected, session.last_result

        async_events, result = asyncio.run(drive())
        assert [e.kind for e in async_events] == [e.kind for e in sync_events]
        assert [getattr(e, "campaign", None) for e in async_events] == [
            getattr(e, "campaign", None) for e in sync_events
        ]
        assert result is not None and _steps(result) == _steps(
            TuningSession(pretrained=tiny_pretrained).run(plan)
        )


class TestSessionSharedCaches:
    """The daemon's session-level cache plane: ``TuningSession(caches=)``."""

    def test_session_caches_warm_across_runs(self, tiny_pretrained):
        caches = TuningCacheSet()
        session = TuningSession(pretrained=tiny_pretrained, caches=caches)
        first = session.run(_smoke_plan())
        warm_misses = caches.section("warmup").stats()["misses"]
        assert warm_misses >= 1
        second = session.run(_smoke_plan())
        # The repeat run built no new warm-up datasets: the second job of
        # a daemon starts warm.
        assert caches.section("warmup").stats()["misses"] == warm_misses
        assert _steps(first) == _steps(second)

    def test_plan_cache_path_keeps_private_snapshot_semantics(
        self, tiny_pretrained, tmp_path
    ):
        # A plan that asks for its own snapshot must not leak into (or
        # read from) the session's shared plane.
        caches = TuningCacheSet()
        snapshot = tmp_path / "private.pkl"
        session = TuningSession(pretrained=tiny_pretrained, caches=caches)
        session.run(_smoke_plan(cache_path=str(snapshot)))
        assert snapshot.exists()
        assert caches.section("warmup").stats()["size"] == 0

    def test_cache_path_with_process_backend_snapshots_worker_entries(
        self, tiny_pretrained, tmp_path
    ):
        """The lifted restriction: worker-local cache sections snapshot
        back to the parent on pool shutdown, so the saved file holds the
        entries the workers computed."""
        snapshot = tmp_path / "process.pkl"
        plan = _smoke_plan(backend="process", workers=2, cache_path=str(snapshot))
        result = TuningSession(pretrained=tiny_pretrained).run(plan)
        assert [o.spec_name for o in result.outcomes] == [
            "nexmark_q1_flink", "nexmark_q5_flink"
        ]
        assert snapshot.exists()
        loaded = TuningCacheSet.load(snapshot)
        assert loaded.section("warmup").stats()["size"] >= 1
