"""Unit tests for the daemon's core: queue, job store, metrics text.

The HTTP surface (real sockets, kill/restart) lives in
``test_daemon_http.py``; everything here runs in-process with no
network.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api.events import JsonlRecorder, StepCompleted, event_from_dict
from repro.api.plans import TuningPlan
from repro.daemon import (
    JobStore,
    QueueDraining,
    QueueFull,
    TenantQueue,
    render_metrics,
)


class _FakeJob:
    def __init__(self, name: str, tenant: str = "default", priority: int = 0):
        self.name = name
        self.tenant = tenant
        self.priority = priority


# ----------------------------------------------------------------------
# TenantQueue
# ----------------------------------------------------------------------

class TestTenantQueue:
    def test_fifo_within_priority(self):
        queue = TenantQueue()
        for name in ("a", "b", "c"):
            queue.push(_FakeJob(name))
        assert [queue.pop().name for _ in range(3)] == ["a", "b", "c"]

    def test_higher_priority_dispatches_first(self):
        queue = TenantQueue()
        queue.push(_FakeJob("low", priority=0))
        queue.push(_FakeJob("high", priority=5))
        queue.push(_FakeJob("mid", priority=2))
        assert [queue.pop().name for _ in range(3)] == ["high", "mid", "low"]

    def test_per_tenant_admission_limit(self):
        queue = TenantQueue(max_depth=2)
        queue.push(_FakeJob("a1", tenant="alice"))
        queue.push(_FakeJob("a2", tenant="alice"))
        with pytest.raises(QueueFull, match="alice"):
            queue.push(_FakeJob("a3", tenant="alice"))
        # The limit is per tenant, not global.
        queue.push(_FakeJob("b1", tenant="bob"))
        assert queue.depth("alice") == 2
        assert queue.depth("bob") == 1
        assert queue.depth() == 3

    def test_pop_frees_tenant_slots(self):
        queue = TenantQueue(max_depth=1)
        queue.push(_FakeJob("a1", tenant="alice"))
        with pytest.raises(QueueFull):
            queue.push(_FakeJob("a2", tenant="alice"))
        queue.pop()
        queue.push(_FakeJob("a2", tenant="alice"))  # slot freed
        assert queue.depths() == {"alice": 1}

    def test_pop_timeout_returns_none(self):
        assert TenantQueue().pop(timeout=0.01) is None

    def test_pop_blocks_until_push(self):
        queue = TenantQueue()
        got = []

        def consumer():
            got.append(queue.pop(timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        queue.push(_FakeJob("late"))
        thread.join(timeout=5.0)
        assert got[0].name == "late"

    def test_draining_refuses_pushes_and_unblocks_pop(self):
        queue = TenantQueue()
        queue.push(_FakeJob("queued"))
        leftovers = queue.close()
        assert [job.name for job in leftovers] == ["queued"]
        with pytest.raises(QueueDraining):
            queue.push(_FakeJob("late"))
        # Force bypasses draining (restart recovery must never drop jobs).
        queue.push(_FakeJob("recovered"), force=True)
        assert queue.pop().name == "queued"
        assert queue.pop().name == "recovered"
        assert queue.pop() is None  # empty + draining: dispatcher exit

    def test_force_push_bypasses_depth_limit(self):
        queue = TenantQueue(max_depth=1)
        queue.push(_FakeJob("a1", tenant="alice"))
        queue.push(_FakeJob("a2", tenant="alice"), force=True)
        assert queue.depth("alice") == 2

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            TenantQueue(max_depth=0)


# ----------------------------------------------------------------------
# JobStore
# ----------------------------------------------------------------------

def _tiny_plan_data() -> dict:
    return {
        "kind": "tuning", "query": "q1", "rates": [3.0, 5.0],
        "tuner": "ds2", "scale": "smoke",
    }


def _tiny_plan() -> TuningPlan:
    data = _tiny_plan_data()
    return TuningPlan(
        query=data["query"], rates=tuple(data["rates"]),
        tuner=data["tuner"], scale=data["scale"],
    )


class TestJobStore:
    def test_submit_assigns_ids_and_records_manifest(self, tmp_path):
        store = JobStore(tmp_path, fsync=False)
        first = store.submit(_tiny_plan(), _tiny_plan_data(), "alice", 3)
        second = store.submit(_tiny_plan(), _tiny_plan_data())
        assert [first.id, second.id] == ["j000001", "j000002"]
        assert first.state == "queued"
        assert first.ledger_path == tmp_path / "j000001.jsonl"
        assert store.submitted_per_tenant == {"alice": 1, "default": 1}
        lines = (tmp_path / "manifest.jsonl").read_text().splitlines()
        events = [event_from_dict(json.loads(line)) for line in lines]
        kinds = [event.kind for event in events]
        assert kinds == [
            "JobSubmitted", "JobStateChanged",
            "JobSubmitted", "JobStateChanged",
        ]
        assert events[0].plan == _tiny_plan_data()
        assert events[0].tenant == "alice"
        assert events[0].priority == 3

    def test_mark_validates_and_stamps_times(self, tmp_path):
        store = JobStore(tmp_path, fsync=False)
        job = store.submit(_tiny_plan(), _tiny_plan_data())
        store.mark(job, "running")
        assert job.started_at is not None and not job.terminal
        store.mark(job, "failed", error="boom")
        assert job.terminal and job.error == "boom"
        with pytest.raises(ValueError, match="state"):
            store.mark(job, "exploded")

    def test_append_event_wakes_followers(self, tmp_path):
        store = JobStore(tmp_path, fsync=False)
        job = store.submit(_tiny_plan(), _tiny_plan_data())
        seen = []

        def follower():
            with job.condition:
                while not job.events:
                    job.condition.wait(timeout=5.0)
                seen.extend(job.events)

        thread = threading.Thread(target=follower)
        thread.start()
        store.append_event(job, '{"kind": "StepCompleted"}')
        thread.join(timeout=5.0)
        assert seen == ['{"kind": "StepCompleted"}']

    def test_recover_replays_terminal_and_requeues_interrupted(self, tmp_path):
        store = JobStore(tmp_path, fsync=False)
        done = store.submit(_tiny_plan(), _tiny_plan_data(), "alice", 1)
        hung = store.submit(_tiny_plan(), _tiny_plan_data(), "bob", 2)
        queued = store.submit(_tiny_plan(), _tiny_plan_data())
        ledger_line = json.dumps(
            StepCompleted(campaign="c", step_index=0).to_dict(), sort_keys=True
        )
        done.ledger_path.write_text(ledger_line + "\n")
        store.mark(done, "running")
        store.mark(done, "finished")
        store.mark(hung, "running")  # killed mid-run: never went terminal

        recovered = JobStore(tmp_path, fsync=False)
        to_requeue = recovered.recover()
        assert [job.id for job in to_requeue] == [hung.id, queued.id]
        replayed = recovered.get(done.id)
        assert replayed.state == "finished" and replayed.replayed
        # Bit-identical: the buffer holds the ledger's exact lines.
        assert replayed.events == [ledger_line]
        for job in to_requeue:
            assert job.state == "queued" and not job.replayed
        assert recovered.get(hung.id).tenant == "bob"
        assert recovered.get(hung.id).priority == 2
        # Fresh submissions continue the id sequence, never reuse one.
        new = recovered.submit(_tiny_plan(), _tiny_plan_data())
        assert new.id == "j000004"
        assert recovered.submitted_per_tenant == {
            "alice": 1, "bob": 1, "default": 2,
        }

    def test_recover_tolerates_truncated_manifest_tail(self, tmp_path):
        store = JobStore(tmp_path, fsync=False)
        job = store.submit(_tiny_plan(), _tiny_plan_data())
        with open(store.manifest_path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "JobStateCha')  # the crash's last line
        recovered = JobStore(tmp_path, fsync=False)
        to_requeue = recovered.recover()
        assert [j.id for j in to_requeue] == [job.id]

    def test_recover_loads_partial_ledger_as_resume(self, tmp_path):
        from repro.api.session import TuningSession

        store = JobStore(tmp_path, fsync=False)
        plan = _tiny_plan()
        job = store.submit(plan, _tiny_plan_data())
        store.mark(job, "running")
        # A real partial ledger: record a full run, keep a prefix that
        # still contains the campaign's CampaignFinished checkpoint.
        recorder = JsonlRecorder(job.ledger_path)
        from repro.api.events import EventBus

        TuningSession().run(plan, bus=EventBus(recorder))
        recorder.close()

        recovered = JobStore(tmp_path, fsync=False)
        (requeued,) = recovered.recover()
        assert requeued.resume is not None
        assert requeued.resume.n_completed == 1
        recorded, missing = requeued.resume.covers(plan.cell_keys())
        assert recorded and not missing

    def test_recover_without_manifest_is_empty(self, tmp_path):
        assert JobStore(tmp_path / "fresh", fsync=False).recover() == []


# ----------------------------------------------------------------------
# JsonlRecorder durability (fsync per event)
# ----------------------------------------------------------------------

class TestRecorderDurability:
    def test_fsync_recorder_survives_sigkill_mid_stream(self, tmp_path):
        """Every event recorded before a SIGKILL must be on disk."""
        ledger = tmp_path / "ledger.jsonl"
        script = (
            "import os, sys\n"
            "from repro.api.events import JsonlRecorder, StepCompleted\n"
            "recorder = JsonlRecorder(sys.argv[1], fsync=True)\n"
            "for index in range(5):\n"
            "    recorder(StepCompleted(campaign='kill-test', step_index=index))\n"
            "os.kill(os.getpid(), 9)  # no close(), no interpreter exit\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.run(
            [sys.executable, "-c", script, str(ledger)],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert process.returncode == -signal.SIGKILL
        lines = ledger.read_text().splitlines()
        assert len(lines) == 5
        events = [event_from_dict(json.loads(line)) for line in lines]
        assert [event.step_index for event in events] == list(range(5))

    def test_fsync_flag_defaults_off(self, tmp_path):
        recorder = JsonlRecorder(tmp_path / "plain.jsonl")
        assert recorder.fsync is False
        recorder(StepCompleted(campaign="c"))
        recorder.close()
        fsynced = JsonlRecorder(tmp_path / "sync.jsonl", fsync=True)
        fsynced(StepCompleted(campaign="c"))
        fsynced.close()
        # Same bytes either way; fsync changes durability, not content.
        assert (
            (tmp_path / "plain.jsonl").read_bytes()
            == (tmp_path / "sync.jsonl").read_bytes()
        )


# ----------------------------------------------------------------------
# /metrics rendering
# ----------------------------------------------------------------------

GOLDEN_SNAPSHOT = {
    "jobs": {"queued": 2, "running": 1, "finished": 4, "failed": 1},
    "queue_depths": {"bob": 1, "alice": 1},
    "tenants_submitted": {"alice": 5, "bob": 3},
    "campaigns_finished": 9,
    "campaigns_failed": 1,
    "steps": 42,
    "reconfigurations": 17,
    "events": 120,
    "cache_stats": {
        "assign": {"hits": 30, "misses": 10, "size": 10},
        "warmup": {"hits": 0, "misses": 0, "size": 0},
    },
    "uptime_seconds": 12.5,
}

GOLDEN_TEXT = """\
# HELP repro_jobs_total Jobs in the daemon's table, by lifecycle state.
# TYPE repro_jobs_total gauge
repro_jobs_total{state="queued"} 2
repro_jobs_total{state="running"} 1
repro_jobs_total{state="finished"} 4
repro_jobs_total{state="failed"} 1
# HELP repro_queue_depth Jobs currently queued, per tenant.
# TYPE repro_queue_depth gauge
repro_queue_depth{tenant="alice"} 1
repro_queue_depth{tenant="bob"} 1
# HELP repro_queue_depth_total Jobs currently queued, all tenants.
# TYPE repro_queue_depth_total gauge
repro_queue_depth_total 2
# HELP repro_tenant_submitted_total Plan submissions accepted, per tenant.
# TYPE repro_tenant_submitted_total counter
repro_tenant_submitted_total{tenant="alice"} 5
repro_tenant_submitted_total{tenant="bob"} 3
# HELP repro_campaigns_finished_total Campaigns finished by this daemon process.
# TYPE repro_campaigns_finished_total counter
repro_campaigns_finished_total 9
# HELP repro_campaigns_failed_total Campaigns failed in this daemon process.
# TYPE repro_campaigns_failed_total counter
repro_campaigns_failed_total 1
# HELP repro_steps_total Tuning steps executed by this daemon process.
# TYPE repro_steps_total counter
repro_steps_total 42
# HELP repro_reconfigurations_total Parallelism reconfigurations applied by this daemon process.
# TYPE repro_reconfigurations_total counter
repro_reconfigurations_total 17
# HELP repro_events_total Typed events observed by this daemon process.
# TYPE repro_events_total counter
repro_events_total 120
# HELP repro_cache_hits_total Shared cache plane hits, per section.
# TYPE repro_cache_hits_total counter
repro_cache_hits_total{section="assign"} 30
repro_cache_hits_total{section="warmup"} 0
# HELP repro_cache_misses_total Shared cache plane misses, per section.
# TYPE repro_cache_misses_total counter
repro_cache_misses_total{section="assign"} 10
repro_cache_misses_total{section="warmup"} 0
# HELP repro_cache_size Entries resident in the shared cache plane, per section.
# TYPE repro_cache_size gauge
repro_cache_size{section="assign"} 10
repro_cache_size{section="warmup"} 0
# HELP repro_cache_hit_ratio Hits over lookups in the shared cache plane, per section.
# TYPE repro_cache_hit_ratio gauge
repro_cache_hit_ratio{section="assign"} 0.75
repro_cache_hit_ratio{section="warmup"} 0
# HELP repro_uptime_seconds Seconds since this daemon process started serving.
# TYPE repro_uptime_seconds gauge
repro_uptime_seconds 12.5
"""


class TestRenderMetrics:
    def test_golden(self):
        assert render_metrics(GOLDEN_SNAPSHOT) == GOLDEN_TEXT

    def test_empty_snapshot_renders_zeroes(self):
        text = render_metrics({})
        assert 'repro_jobs_total{state="queued"} 0' in text
        assert "repro_queue_depth_total 0" in text
        assert "repro_uptime_seconds 0" in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        text = render_metrics(
            {"queue_depths": {'we"ird\\ten\nant': 1}}
        )
        assert (
            'repro_queue_depth{tenant="we\\"ird\\\\ten\\nant"} 1' in text
        )
