"""The shared-memory cache plane and the cache-plane bugfix sweep.

Covers :mod:`repro.service.shm` (descriptor publication, zero-copy
attach, parent-owned lifecycle, leak-free exits), the v3 snapshot layout
with its v2 migration, worker counter isolation, deterministic proxied
eviction, and bit-identical campaign results across start methods.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core.finetune import (
    PredictionDataset,
    cluster_history_signature,
    warmup_cache_key,
)
from repro.service import CampaignSpec, TuningService
from repro.service.cache import (
    ConcurrentLRUCache,
    SnapshotError,
    TuningCacheSet,
    merge_cache_stats,
)
from repro.service.shm import (
    SEGMENT_PREFIX,
    SharedArrayRef,
    SharedArrayStore,
    attach_sections,
    decode_value,
    encode_value,
    publish_sections,
)
from repro.workloads import nexmark_query

V2_FIXTURE = Path(__file__).parent / "data" / "cache_snapshot_v2.pkl"


def shm_segments() -> list[str]:
    root = Path("/dev/shm")
    if not root.is_dir():
        return []
    return sorted(p.name for p in root.glob(f"{SEGMENT_PREFIX}*"))


def _dataset(seed: int, rows: int = 5, dim: int = 3) -> PredictionDataset:
    rng = np.random.default_rng(seed)
    ds = PredictionDataset()
    for i in range(rows):
        ds.append(rng.normal(size=dim), int(i % 2))
    return ds


def _spec(name: str, multipliers=(3,), seed: int = 41) -> CampaignSpec:
    return CampaignSpec(
        query=nexmark_query(name, "flink"),
        multipliers=tuple(multipliers),
        engine_seed=31,
        seed=seed,
    )


def _steps(outcome):
    return [
        [step.parallelisms for step in process.steps]
        for process in outcome.result.processes
    ]


# ----------------------------------------------------------------------
# SharedArrayStore
# ----------------------------------------------------------------------

class TestSharedArrayStore:
    def test_share_attach_roundtrip_is_bit_identical(self):
        source = np.random.default_rng(3).normal(size=(7, 5))
        with SharedArrayStore() as store:
            ref = store.share(source)
            worker = SharedArrayStore()
            view = worker.attach(ref)
            np.testing.assert_array_equal(view, source)
            assert view.tobytes() == source.tobytes()
            assert not view.flags.writeable
            worker.close()
        assert shm_segments() == []

    def test_descriptor_is_pickle_cheap(self):
        big = np.zeros((512, 512))
        with SharedArrayStore() as store:
            ref = store.share(big)
            shipped = pickle.dumps(ref, pickle.HIGHEST_PROTOCOL)
            assert len(shipped) < 512          # descriptor, not payload
            back = pickle.loads(shipped)
            assert back == ref
            assert ref.nbytes == big.nbytes

    def test_share_all_packs_one_segment(self):
        arrays = [np.full((4, 4), float(i)) for i in range(9)]
        with SharedArrayStore() as store:
            refs = store.share_all(arrays)
            assert len({ref.name for ref in refs}) == 1
            assert len(store.segment_names) == 1
            worker = SharedArrayStore()
            for ref, source in zip(refs, arrays):
                np.testing.assert_array_equal(worker.attach(ref), source)
            worker.close()
        assert shm_segments() == []

    def test_share_dedupes_by_identity(self):
        array = np.ones((3, 3))
        with SharedArrayStore() as store:
            first = store.share(array)
            second = store.share(array)
            assert first == second
            assert len(store.segment_names) == 1

    def test_materialized_array_publishes_for_free(self):
        source = np.random.default_rng(5).normal(size=(6, 2))
        with SharedArrayStore() as store:
            view = store.materialize(source.tobytes(), str(source.dtype), source.shape)
            np.testing.assert_array_equal(view, source)
            ref = store.share(view)           # already backed: same segment
            assert len(store.segment_names) == 1
            assert ref.name == store.segment_names[0]

    def test_close_unlinks_owned_segments_and_is_idempotent(self):
        store = SharedArrayStore()
        store.share(np.zeros(16))
        assert shm_segments() != []
        store.close()
        assert shm_segments() == []
        store.close()                         # second close is a no-op
        with pytest.raises(ValueError, match="closed"):
            store.share(np.zeros(4))
        with pytest.raises(ValueError, match="closed"):
            store.attach(SharedArrayRef("nope", "float64", (1,)))

    def test_fork_inherited_store_never_unlinks(self):
        from multiprocessing import shared_memory

        store = SharedArrayStore()
        ref = store.share(np.arange(8.0))
        try:
            # Simulate the fork-inherited copy: same state, foreign pid.
            store._owner_pid = os.getpid() + 1
            store.close()
            assert shm_segments() == [ref.name]   # parent's segment survived
        finally:
            orphan = shared_memory.SharedMemory(name=ref.name)
            orphan.close()
            orphan.unlink()
        assert shm_segments() == []

    def test_close_with_live_views_still_unlinks_names(self):
        # A caller-held view cannot pin the name: close() unlinks and
        # unmaps regardless (the view is invalid afterwards — same
        # contract as SharedMemory itself).
        store = SharedArrayStore()
        view = store.materialize(np.arange(4.0).tobytes(), "float64", (4,))
        copied = np.array(view)               # read before close: fine
        store.close()
        assert shm_segments() == []           # name gone regardless
        np.testing.assert_array_equal(copied, np.arange(4.0))

    def test_atexit_cleans_up_an_abandoned_store(self):
        # A store the caller forgot to close must not leak past process
        # exit: the atexit hook unlinks owned segments.
        script = textwrap.dedent(
            """
            import numpy as np
            from repro.service.shm import SharedArrayStore
            store = SharedArrayStore()
            ref = store.share(np.zeros((64, 64)))
            print(ref.name)
            """
        )
        env = dict(os.environ, PYTHONPATH="src")
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env,
            cwd=Path(__file__).parent.parent, check=True,
        )
        name = result.stdout.strip()
        assert name.startswith(SEGMENT_PREFIX)
        assert not (Path("/dev/shm") / name).exists()


# ----------------------------------------------------------------------
# value codec + section publication
# ----------------------------------------------------------------------

class TestSectionCodec:
    def test_array_roundtrip(self):
        source = np.random.default_rng(7).normal(size=(4, 6))
        with SharedArrayStore() as store:
            encoded = encode_value(source, store)
            assert encoded[0] == "array"
            worker = SharedArrayStore()
            back = decode_value(encoded, worker)
            assert back.tobytes() == source.tobytes()
            worker.close()

    def test_dataset_roundtrip_bit_identical(self):
        ds = _dataset(21)
        with SharedArrayStore() as store:
            encoded = encode_value(ds, store)
            assert encoded[0] == "dataset"
            worker = SharedArrayStore()
            back = decode_value(encoded, worker)
            assert isinstance(back, PredictionDataset)
            assert back.labels == ds.labels
            for mine, theirs in zip(ds.features, back.features):
                assert mine.tobytes() == theirs.tobytes()
            worker.close()

    def test_ragged_dataset_falls_back_to_pickle(self):
        ds = PredictionDataset()
        ds.features = [np.zeros(3), np.zeros(5)]   # unstackable
        ds.labels = [0, 1]
        with SharedArrayStore() as store:
            encoded = encode_value(ds, store)
            assert encoded[0] == "pickled"
            back = decode_value(encoded, store)
            assert [f.shape for f in back.features] == [(3,), (5,)]

    def test_non_numpy_values_ride_pickled(self):
        with SharedArrayStore() as store:
            encoded = encode_value({"cluster": 3}, store)
            assert encoded[0] == "pickled"
            assert decode_value(encoded, store) == {"cluster": 3}

    def test_unknown_encoding_rejected(self):
        with SharedArrayStore() as store:
            with pytest.raises(ValueError, match="unknown"):
                decode_value(("mystery", b""), store)

    def test_publish_attach_sections_roundtrip(self):
        entries = {
            "embed": [(("k", i), np.full((3, 3), float(i))) for i in range(4)],
            "warmup": [(("w", 0), _dataset(31))],
            "assign": [(("sig",), 2)],
        }
        with SharedArrayStore() as store:
            payload = publish_sections(entries, store)
            # One arena for the whole publication.
            assert len(store.segment_names) == 1
            worker = SharedArrayStore()
            back = attach_sections(payload, worker)
            assert back["assign"] == [(("sig",), 2)]
            for (_, mine), (_, theirs) in zip(entries["embed"], back["embed"]):
                assert mine.tobytes() == theirs.tobytes()
            assert back["warmup"][0][1].labels == entries["warmup"][0][1].labels
            worker.close()
        assert shm_segments() == []


# ----------------------------------------------------------------------
# S1: worker counters start at zero + stats merging
# ----------------------------------------------------------------------

class TestCounterIsolation:
    def test_pickled_cache_zeroes_hit_miss_counters(self):
        cache = ConcurrentLRUCache(maxsize=8)
        cache.get_or_compute("a", lambda: 1)   # miss
        cache.get_or_compute("a", lambda: 1)   # hit
        assert (cache.hits, cache.misses) == (1, 1)
        worker = pickle.loads(pickle.dumps(cache))
        assert (worker.hits, worker.misses) == (0, 0)
        assert worker.get("a") == 1            # data still travelled

    def test_merge_cache_stats_sums_traffic_and_maxes_size(self):
        parent = {"warmup": {"size": 3, "hits": 10, "misses": 2}}
        worker_a = {"warmup": {"size": 3, "hits": 4, "misses": 1}}
        worker_b = {
            "warmup": {"size": 2, "hits": 1, "misses": 0},
            "embed": {"size": 5, "hits": 7, "misses": 3},
        }
        merged = merge_cache_stats(parent, worker_a, worker_b)
        assert merged["warmup"] == {"size": 3, "hits": 15, "misses": 3}
        assert merged["embed"] == {"size": 5, "hits": 7, "misses": 3}


# ----------------------------------------------------------------------
# S3: deterministic eviction on proxy-backed mappings
# ----------------------------------------------------------------------

class TestProxiedEviction:
    def test_local_cache_evicts_least_recently_used(self):
        cache = ConcurrentLRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")                         # refresh a
        cache.put("c", 3)                      # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_manager_backed_cache_evicts_oldest_insertion(self):
        with multiprocessing.Manager() as manager:
            cache = ConcurrentLRUCache(
                maxsize=3, mapping=manager.dict(), lock=manager.RLock()
            )
            for key in ("a", "b", "c"):
                cache.put(key, key.upper())
            cache.put("d", "D")                # evicts a (oldest insertion)
            assert cache.get("a") is None
            assert [k for k, _ in cache.items_snapshot()] == ["b", "c", "d"]
            cache.put("e", "E")                # then b
            assert cache.get("b") is None
            assert cache.get("c") == "C"
            assert len(cache) == 3

    def test_manager_backed_eviction_under_thread_contention(self):
        from concurrent.futures import ThreadPoolExecutor

        with multiprocessing.Manager() as manager:
            cache = ConcurrentLRUCache(
                maxsize=8, mapping=manager.dict(), lock=manager.RLock()
            )

            def hammer(base):
                for i in range(20):
                    cache.put((base, i), i)

            with ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(hammer, range(4)))
            # Size invariant held through 80 racing inserts, and the
            # survivors are exactly the 8 newest insertion sequences.
            assert len(cache) == 8
            snapshot = cache.items_snapshot()
            assert len(snapshot) == 8

    def test_items_snapshot_matches_across_backings(self):
        local = ConcurrentLRUCache(maxsize=8)
        with multiprocessing.Manager() as manager:
            proxied = ConcurrentLRUCache(
                maxsize=8, mapping=manager.dict(), lock=manager.RLock()
            )
            for cache in (local, proxied):
                cache.put("x", 1)
                cache.put("y", 2)
            assert local.items_snapshot() == proxied.items_snapshot()
            assert local.stats()["size"] == proxied.stats()["size"] == 2


# ----------------------------------------------------------------------
# S2 + tentpole: v3 snapshots, shared-memory loading, v2 migration
# ----------------------------------------------------------------------

class TestSnapshotV3:
    def _populated(self) -> TuningCacheSet:
        caches = TuningCacheSet()
        caches.section("assign").put(("sig",), 1)
        caches.section("embed").put(("e", 0), np.random.default_rng(1).normal(size=(4, 3)))
        caches.section("warmup").put(("w", 300, 17, True), _dataset(41))
        caches.section("distill").put(("d", 0), _dataset(42))
        return caches

    def test_save_load_roundtrip_bit_identical(self, tmp_path):
        caches = self._populated()
        path = tmp_path / "caches.pkl"
        caches.save(path)
        loaded = TuningCacheSet.load(path)
        embedded = loaded.section("embed").get(("e", 0))
        assert embedded.tobytes() == caches.section("embed").get(("e", 0)).tobytes()
        warm = loaded.section("warmup").get(("w", 300, 17, True))
        original = caches.section("warmup").get(("w", 300, 17, True))
        assert warm.labels == original.labels
        for mine, theirs in zip(original.features, warm.features):
            assert mine.tobytes() == theirs.tobytes()
        assert loaded.section("assign").get(("sig",)) == 1

    def test_load_into_shared_store_materializes_one_arena(self, tmp_path):
        caches = self._populated()
        path = tmp_path / "caches.pkl"
        caches.save(path)
        with SharedArrayStore() as store:
            loaded = TuningCacheSet.load(path, shared=store)
            assert len(store.segment_names) == 1
            embedded = loaded.section("embed").get(("e", 0))
            assert not embedded.flags.writeable
            assert embedded.tobytes() == caches.section("embed").get(("e", 0)).tobytes()
            # Publishing a materialized value reuses its segment.
            ref = store.share(embedded)
            assert ref.name == store.segment_names[0]
        assert shm_segments() == []

    def test_v2_snapshot_migrates_in_place(self, tiny_pretrained):
        loaded = TuningCacheSet.load(V2_FIXTURE)
        # Non-warmup sections load directly...
        assert loaded.section("assign").get(("sig-a",)) == 0
        assert loaded.section("embed").get((0, "sig-a", ((0, 1.5),))) is not None
        # ...warmup entries stage until a pretrained artifact translates
        # their cluster ids (one of the two names a vanished cluster).
        assert len(loaded._legacy_warmup) == 2
        service = TuningService(
            tiny_pretrained, backend="sequential", caches=loaded
        )
        assert service.caches._legacy_warmup == []
        key = warmup_cache_key(tiny_pretrained, 0, 300, 17, True)
        assert loaded.section("warmup").get(key) is not None
        assert loaded.section("warmup").stats()["size"] == 1  # stale one dropped

    def test_v1_snapshot_is_a_targeted_migration_error(self, tmp_path):
        stale = tmp_path / "ancient.pkl"
        stale.write_bytes(pickle.dumps({
            "format": "repro.service.TuningCacheSet",
            "version": 1,
            "sections": {},
        }))
        with pytest.raises(SnapshotError, match="cannot be migrated"):
            TuningCacheSet.load(stale)

    def test_adopt_legacy_warmup_counts_adoptions(self):
        loaded = TuningCacheSet.load(V2_FIXTURE)
        adopted = loaded.adopt_legacy_warmup(lambda cluster: {0: "sig-0"}[cluster])
        assert adopted == 1                   # cluster 99 dropped
        assert loaded.section("warmup").get(("sig-0", 300, 17, True)) is not None
        # Staging is consumed: a second adoption has nothing to do.
        assert loaded.adopt_legacy_warmup(lambda cluster: "x") == 0


# ----------------------------------------------------------------------
# warm-up signature sharing
# ----------------------------------------------------------------------

class TestWarmupSignature:
    def test_signature_is_stable_and_memoized(self, tiny_pretrained):
        first = cluster_history_signature(tiny_pretrained, 0)
        second = cluster_history_signature(tiny_pretrained, 0)
        assert first == second
        assert len(first) == 64               # sha256 hex
        assert tiny_pretrained._cluster_signatures[0] == first

    def test_distinct_clusters_distinct_signatures(self, tiny_pretrained):
        assert cluster_history_signature(
            tiny_pretrained, 0
        ) != cluster_history_signature(tiny_pretrained, 1)

    def test_warmup_cache_key_carries_no_cluster_id(self, tiny_pretrained):
        key = warmup_cache_key(tiny_pretrained, 0, 300, 17, True)
        assert key == (
            cluster_history_signature(tiny_pretrained, 0), 300, 17, True
        )


# ----------------------------------------------------------------------
# S5 + tentpole: process fleets over the shared plane
# ----------------------------------------------------------------------

class TestProcessFleetSharedPlane:
    def test_process_results_bit_identical_and_leak_free(self, tiny_pretrained):
        specs = [_spec("q1")]
        reference = TuningService(
            tiny_pretrained, backend="sequential", prewarm=False
        ).run(specs)
        service = TuningService(tiny_pretrained, backend="process", max_workers=2)
        outcomes = service.run(specs)
        assert _steps(outcomes[0]) == _steps(reference[0])
        assert service.last_prewarm["warmup"] >= 1
        assert shm_segments() == []

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_start_methods_agree_bit_for_bit(self, tiny_pretrained, start_method):
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        reference = TuningService(
            tiny_pretrained, backend="sequential", prewarm=False
        ).run([_spec("q1")])
        service = TuningService(
            tiny_pretrained,
            backend="process",
            max_workers=2,
            start_method=start_method,
        )
        outcomes = service.run([_spec("q1")])
        assert _steps(outcomes[0]) == _steps(reference[0])
        assert shm_segments() == []

    def test_invalid_start_method_rejected(self, tiny_pretrained):
        with pytest.raises(ValueError, match="start_method"):
            TuningService(tiny_pretrained, start_method="teleport")

    def test_injected_store_is_caller_owned(self, tiny_pretrained):
        store = SharedArrayStore()
        try:
            service = TuningService(
                tiny_pretrained, backend="process", max_workers=2,
                shm_store=store,
            )
            service.run([_spec("q1")])
            # The service must not have closed the injected store.
            store.share(np.zeros(4))
        finally:
            store.close()
        assert shm_segments() == []

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="patched worker reaches the pool only under fork",
    )
    def test_killed_worker_leaks_no_segments(self, tiny_pretrained, monkeypatch):
        # A worker dying outright (no atexit in the child) must not
        # strand segments: the parent owns them and cleans up in the
        # stream's finally.
        import repro.service.tuning as tuning
        from repro.api.events import CampaignFailed

        def _die_without_reporting(spec, unit, relay):
            os._exit(13)

        monkeypatch.setattr(tuning, "_run_in_worker", _die_without_reporting)
        service = TuningService(tiny_pretrained, backend="process", max_workers=1)
        service.poll_seconds = 0.05
        events = list(service.stream([_spec("q1")]))   # must terminate
        assert any(isinstance(e, CampaignFailed) for e in events)
        assert shm_segments() == []
