"""Shared fixtures: small dataflows, engines, and a tiny pre-trained model.

Expensive artifacts (history, pre-training) are session-scoped and sized
for speed; correctness-critical behaviour is exercised by the unit tests,
while these fixtures support integration tests.

Isolation: the suite must pass under ``-p no:randomly`` (any collection
order) and under ``-n auto``-style parallel collection.  Two module-level
singletons could leak state between tests — ``repro.experiments.context``'s
artifact cache and the ``REPRO_SCALE`` environment variable — so autouse
fixtures below restore both around every test.  Legitimate artifact cache
entries (keyed by ``(kind, engine, scale, ...)`` tuples) are deliberately
*kept* across tests: they are deterministic pure values shared for speed,
and each ``-n`` worker process builds its own copy.
"""

from __future__ import annotations

import os

import pytest

from repro.core import HistoryGenerator, pretrain
from repro.dataflow.graph import LogicalDataflow
from repro.dataflow.operators import (
    AggregateFunction,
    KeyClass,
    OperatorSpec,
    OperatorType,
    WindowPolicy,
    WindowType,
)
from repro.engines import FlinkCluster, TimelyCluster
from repro.workloads import nexmark_queries, pqp_query_set


def build_linear_flow(name: str = "linear_flow", selectivity: float = 0.5) -> LogicalDataflow:
    """source -> filter -> sink."""
    flow = LogicalDataflow(name)
    flow.chain(
        OperatorSpec(name="src", op_type=OperatorType.SOURCE),
        OperatorSpec(name="filter", op_type=OperatorType.FILTER, selectivity=selectivity),
        OperatorSpec(name="sink", op_type=OperatorType.SINK),
    )
    flow.validate()
    return flow


def build_diamond_flow(name: str = "diamond_flow") -> LogicalDataflow:
    """source fans out to two filters that join back (Fig. 3 shape)."""
    flow = LogicalDataflow(name)
    src = flow.add_operator(OperatorSpec(name="src", op_type=OperatorType.SOURCE))
    left = flow.add_operator(
        OperatorSpec(name="left", op_type=OperatorType.FILTER, selectivity=0.6)
    )
    right = flow.add_operator(
        OperatorSpec(name="right", op_type=OperatorType.FILTER, selectivity=0.4)
    )
    join = flow.add_operator(
        OperatorSpec(
            name="join",
            op_type=OperatorType.JOIN,
            join_key_class=KeyClass.INT,
            selectivity=0.5,
        )
    )
    sink = flow.add_operator(OperatorSpec(name="sink", op_type=OperatorType.SINK))
    flow.connect(src, left)
    flow.connect(src, right)
    flow.connect(left, join)
    flow.connect(right, join)
    flow.connect(join, sink)
    flow.validate()
    return flow


def build_window_flow(name: str = "window_flow") -> LogicalDataflow:
    """source -> sliding window aggregate -> sink."""
    flow = LogicalDataflow(name)
    flow.chain(
        OperatorSpec(name="src", op_type=OperatorType.SOURCE),
        OperatorSpec(
            name="window",
            op_type=OperatorType.WINDOW_AGGREGATE,
            window_type=WindowType.SLIDING,
            window_policy=WindowPolicy.TIME,
            window_length=60.0,
            sliding_length=12.0,
            aggregate_class=KeyClass.INT,
            aggregate_key_class=KeyClass.LONG,
            aggregate_function=AggregateFunction.SUM,
            selectivity=0.25,
        ),
        OperatorSpec(name="sink", op_type=OperatorType.SINK),
    )
    flow.validate()
    return flow


#: Cache-key kinds the experiment context legitimately persists between
#: tests (deterministic artifacts rebuilt identically on a miss).
_ARTIFACT_KINDS = {"history", "pretrained", "campaign", "service-campaign"}


@pytest.fixture(autouse=True)
def _isolate_module_singletons():
    """Keep module-level singletons from leaking state across tests.

    * ``REPRO_SCALE`` is restored (the CLI's ``experiments`` command and
      scale-resolution tests write it).
    * Any key a test adds to ``repro.experiments.context._CACHE`` that is
      *not* a well-formed artifact key is dropped afterwards, so probe
      entries can never alias a later test's lookup.
    """
    from repro.experiments import context

    saved_scale = os.environ.get("REPRO_SCALE")
    before = set(context._CACHE)
    yield
    if saved_scale is None:
        os.environ.pop("REPRO_SCALE", None)
    else:
        os.environ["REPRO_SCALE"] = saved_scale
    for key in set(context._CACHE) - before:
        well_formed = (
            isinstance(key, tuple) and len(key) >= 2 and key[0] in _ARTIFACT_KINDS
        )
        if not well_formed:
            del context._CACHE[key]


@pytest.fixture
def linear_flow() -> LogicalDataflow:
    return build_linear_flow()


@pytest.fixture
def diamond_flow() -> LogicalDataflow:
    return build_diamond_flow()


@pytest.fixture
def window_flow() -> LogicalDataflow:
    return build_window_flow()


@pytest.fixture
def flink() -> FlinkCluster:
    return FlinkCluster(seed=1234)


@pytest.fixture
def timely() -> TimelyCluster:
    return TimelyCluster(seed=1234)


@pytest.fixture(scope="session")
def corpus():
    """The full 61-query Flink corpus."""
    return nexmark_queries("flink") + [
        q for qs in pqp_query_set().values() for q in qs
    ]


@pytest.fixture(scope="session")
def tiny_history(corpus):
    """A small labelled execution history (session-scoped)."""
    engine = FlinkCluster(seed=77)
    return HistoryGenerator(engine, seed=78).generate(corpus, 400)


@pytest.fixture(scope="session")
def tiny_pretrained(tiny_history):
    """A fast pre-trained StreamTune artifact (session-scoped)."""
    return pretrain(
        tiny_history,
        max_parallelism=100,
        n_clusters=2,
        epochs=8,
        seed=5,
    )
