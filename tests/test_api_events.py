"""Tests for repro.api.events and the streaming execution contract."""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.events import (
    EVENT_TYPES,
    CacheStats,
    CampaignFailed,
    CampaignFinished,
    CampaignSkipped,
    CampaignStarted,
    EventBus,
    JsonlRecorder,
    MetricsAggregator,
    ProgressPrinter,
    Reconfigured,
    StepCompleted,
    SweepFinished,
    campaign_cell_key,
    event_from_dict,
)


class TestEventRecords:
    def test_kind_is_class_name(self):
        assert CampaignStarted(campaign="c").kind == "CampaignStarted"
        assert SweepFinished().kind == "SweepFinished"

    def test_to_dict_is_json_serialisable(self):
        event = StepCompleted(
            campaign="c", step_index=1, n_steps=2, multiplier=3.0,
            parallelisms={"src": 2, "sink": 1}, reconfigurations=1,
            converged=True, seq=7,
        )
        data = event.to_dict()
        assert data["event"] == "StepCompleted"
        assert data["seq"] == 7
        assert json.loads(json.dumps(data)) == data

    def test_finished_outcome_not_serialised(self):
        event = CampaignFinished(campaign="c", outcome=object())
        assert "outcome" not in event.to_dict()
        assert event.outcome is not None

    def test_step_total_parallelism(self):
        event = StepCompleted(parallelisms={"a": 2, "b": 3})
        assert event.total_parallelism == 5

    def test_events_are_frozen(self):
        event = CampaignStarted(campaign="c")
        with pytest.raises(AttributeError):
            event.campaign = "other"


class TestCellKey:
    def test_deterministic_and_readable(self):
        key = campaign_cell_key("q1", "flink", "ds2", (3.0, 7.5), 17)
        assert key == "flink:ds2:q1:x3.0-7.5:s17"
        assert key == campaign_cell_key("q1", "flink", "ds2", [3, 7.5], 17)

    def test_optional_axes(self):
        assert campaign_cell_key("q1", "flink", "ds2", (3,)) == "flink:ds2:q1:x3.0"
        key = campaign_cell_key(
            "q1", "flink", "streamtune", (3,), 17, layer="svm", engine_seed=31
        )
        assert key == "flink:streamtune:q1:x3.0:lsvm:s17:e31"

    def test_distinguishes_every_axis(self):
        base = dict(query="q1", engine="flink", tuner="ds2",
                    rates=(3.0, 7.0), seed=17, layer="svm", engine_seed=31)
        variants = [
            {**base, "query": "q5"},
            {**base, "engine": "timely"},
            {**base, "tuner": "streamtune"},
            {**base, "rates": (3.0, 7.0, 4.0)},
            {**base, "seed": 18},
            {**base, "layer": "nn"},
            {**base, "engine_seed": 32},
        ]
        keys = {campaign_cell_key(**kwargs) for kwargs in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_close_rate_traces_never_collide(self):
        # repr-exact floats: %g-style rounding must not merge two cells.
        near = campaign_cell_key("q1", "flink", "ds2", (1.0000001,), 17)
        nearer = campaign_cell_key("q1", "flink", "ds2", (1.0000002,), 17)
        assert near != nearer


# ----------------------------------------------------------------------
# to_dict() round-trip: the contract --resume depends on
# ----------------------------------------------------------------------

_FINITE_FLOATS = st.floats(allow_nan=False, allow_infinity=False)
_JSON_DICTS = st.dictionaries(
    st.text(max_size=8), st.integers(min_value=0, max_value=512), max_size=4
)


def _field_strategy(spec: dataclasses.Field):
    """A value strategy for one event dataclass field, by annotation."""
    annotation = str(spec.type)
    if "dict" in annotation:
        return _JSON_DICTS
    if "bool" in annotation:
        return st.booleans()
    if "float" in annotation:
        return _FINITE_FLOATS
    if "int" in annotation:
        return st.integers(min_value=-(10 ** 6), max_value=10 ** 6)
    if "None" in annotation:
        return st.none() | st.text(max_size=12)
    return st.text(max_size=12)


@st.composite
def _events(draw):
    cls = draw(
        st.sampled_from(sorted(EVENT_TYPES.values(), key=lambda c: c.__name__))
    )
    kwargs = {
        spec.name: draw(_field_strategy(spec))
        for spec in dataclasses.fields(cls)
        if spec.metadata.get("serialise", True)
    }
    return cls(**kwargs)


class TestEventRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(_events())
    def test_every_event_type_round_trips_through_json(self, event):
        data = json.loads(json.dumps(event.to_dict(), sort_keys=True))
        restored = event_from_dict(data)
        assert restored == event
        assert restored.to_dict() == event.to_dict()

    def test_every_event_type_is_covered(self):
        # The sampling strategy above draws from EVENT_TYPES; this pins the
        # registry so a new event class cannot dodge the property test.
        assert set(EVENT_TYPES) == {
            "CacheStats", "CampaignFailed", "CampaignFinished",
            "CampaignSkipped", "CampaignStarted", "ChaosInjected",
            "JobStateChanged", "JobSubmitted", "Reconfigured",
            "StepCompleted", "SweepFinished",
        }

    @settings(max_examples=50, deadline=None)
    @given(
        steps=st.lists(
            st.builds(
                dict,
                parallelisms=_JSON_DICTS,
                reconfigured=st.booleans(),
                backpressure_after=st.booleans(),
                recommendation_seconds=_FINITE_FLOATS,
                mean_cpu_utilisation=_FINITE_FLOATS,
            ),
            min_size=1,
            max_size=3,
        ),
        multipliers=st.lists(_FINITE_FLOATS, min_size=1, max_size=3),
        converged=st.booleans(),
    )
    def test_finished_result_payload_round_trips(self, steps, multipliers, converged):
        from repro.baselines.api import TuningResult, TuningStep
        from repro.experiments.campaigns import CampaignResult
        from repro.service.tuning import CampaignOutcome

        result = CampaignResult(query_name="q", method="DS2")
        result.multipliers = list(multipliers)
        result.processes = [
            TuningResult(
                query_name="q",
                tuner_name="DS2",
                converged=converged,
                steps=[TuningStep(**step) for step in steps],
            )
        ]
        outcome = CampaignOutcome(
            spec_name="q", result=result, wall_seconds=1.25, backend="thread"
        )
        event = CampaignFinished(
            campaign="q", index=0, backend="thread", n_steps=1,
            wall_seconds=1.25, outcome=outcome, seq=3, cell_key="k",
        )
        data = json.loads(json.dumps(event.to_dict(), sort_keys=True))
        restored = event_from_dict(data)
        assert restored == event
        assert restored.outcome.result == result
        assert restored.outcome.spec_name == "q"
        assert restored.outcome.wall_seconds == 1.25
        assert restored.to_dict() == event.to_dict()

    def test_finished_without_outcome_has_no_result_payload(self):
        event = CampaignFinished(campaign="c")
        assert "result" not in event.to_dict()
        assert event_from_dict(event.to_dict()).outcome is None

    def test_unknown_kind_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"event": "CampaignImploded"})
        with pytest.raises(ValueError, match="kind"):
            event_from_dict({"campaign": "c"})
        with pytest.raises(ValueError, match="mapping"):
            event_from_dict(["CampaignStarted"])

    def test_jsonl_recorder_lines_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = [
            CampaignStarted(campaign="c", seq=0, cell_key="k"),
            StepCompleted(campaign="c", seq=1, parallelisms={"a": 1}),
            CampaignFailed(campaign="c", seq=2, error_type="OSError",
                           error_message="boom", traceback="tb"),
            CampaignSkipped(campaign="c", seq=3, resumed_from="old.jsonl"),
            CacheStats(stats={}, seq=4),
        ]
        with JsonlRecorder(path) as recorder:
            for event in events:
                recorder(event)
        restored = [
            event_from_dict(json.loads(line))
            for line in path.read_text().splitlines()
        ]
        assert restored == events


class TestEventBus:
    def test_publishes_to_every_subscriber(self):
        bus = EventBus()
        seen_a, seen_b = [], []
        bus.subscribe(seen_a.append)
        bus.subscribe(seen_b.append)
        event = CampaignStarted(campaign="c")
        bus.publish(event)
        assert seen_a == [event] and seen_b == [event]

    def test_broken_subscriber_is_isolated(self):
        bus = EventBus()

        def broken(event):
            raise RuntimeError("printer on fire")

        seen = []
        bus.subscribe(broken)
        bus.subscribe(seen.append)
        event = CacheStats(stats={})
        bus.publish(event)                    # must not raise
        assert seen == [event]
        assert len(bus.errors) == 1
        assert bus.errors[0][1] is event
        assert isinstance(bus.errors[0][2], RuntimeError)

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.publish(CacheStats())
        assert seen == [] and len(bus) == 0

    def test_constructor_subscribers(self):
        seen = []
        EventBus(seen.append).publish(SweepFinished())
        assert len(seen) == 1


class TestJsonlRecorder:
    def test_records_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlRecorder(path) as recorder:
            recorder(CampaignStarted(campaign="c", seq=0))
            recorder(StepCompleted(campaign="c", seq=1, parallelisms={"a": 1}))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2 and recorder.n_events == 2
        first, second = (json.loads(line) for line in lines)
        assert first["event"] == "CampaignStarted"
        assert second["parallelisms"] == {"a": 1}

    def test_lazy_open(self, tmp_path):
        recorder = JsonlRecorder(tmp_path / "sub" / "events.jsonl")
        assert not recorder.path.exists()
        recorder(CacheStats(stats={"warmup": {"hits": 1}}))
        recorder.close()
        assert recorder.path.exists()


class TestMetricsAggregator:
    def test_aggregates_steps_and_walls(self):
        metrics = MetricsAggregator()
        metrics(CampaignStarted(campaign="c"))
        metrics(StepCompleted(campaign="c", reconfigurations=2))
        metrics(StepCompleted(campaign="c", reconfigurations=1))
        metrics(CampaignFinished(campaign="c", wall_seconds=1.5))
        metrics(CacheStats(stats={"warmup": {"hits": 3}}))
        summary = metrics.summary()
        assert summary["steps"] == 2
        assert summary["reconfigurations"] == 3
        assert summary["campaigns"] == 1
        assert metrics.cache_stats == {"warmup": {"hits": 3}}
        assert metrics.n_events == 5

    def test_scenario_scopes_campaign_keys(self):
        metrics = MetricsAggregator()
        metrics(StepCompleted(campaign="c", scenario="a"))
        metrics(StepCompleted(campaign="c", scenario="b"))
        assert set(metrics.steps) == {"a/c", "b/c"}

    def test_failures_surface_counts_and_cell_keys(self):
        metrics = MetricsAggregator()
        metrics(CampaignFinished(campaign="ok", wall_seconds=1.0))
        metrics(CampaignFailed(
            campaign="boom", error_type="OSError", cell_key="flink:s:boom:x3.0"
        ))
        metrics(CampaignFailed(campaign="anon", error_type="ValueError"))
        summary = metrics.summary()
        assert summary["failed_campaigns"] == 2
        # Cell keys are what --resume retries; a failure without one falls
        # back to its campaign label so it is never silently dropped.
        assert summary["failed_cell_keys"] == ["flink:s:boom:x3.0", "anon"]
        assert summary["campaigns"] == 1

    def test_no_failures_reads_as_empty(self):
        metrics = MetricsAggregator()
        metrics(CampaignFinished(campaign="ok", wall_seconds=1.0))
        summary = metrics.summary()
        assert summary["failed_campaigns"] == 0
        assert summary["failed_cell_keys"] == []


class TestProgressPrinter:
    def test_one_line_per_event(self, capsys):
        printer = ProgressPrinter(stream=None)
        import sys

        printer.stream = sys.stderr
        for event in (
            CampaignStarted(campaign="c", n_steps=2, tuner="ds2"),
            StepCompleted(campaign="c", step_index=0, n_steps=2,
                          multiplier=3.0, parallelisms={"a": 4}),
            CampaignFinished(campaign="c", n_steps=2, converged_steps=2),
            CacheStats(stats={"warmup": {"hits": 1, "misses": 2}}),
            SweepFinished(n_scenarios=2, n_campaigns=4),
        ):
            printer(event)
        err = capsys.readouterr().err
        assert len(err.strip().splitlines()) == 5
        assert "ds2" in err and "1h/2m" in err

    def test_reconfigured_only_when_verbose(self, capsys):
        event = Reconfigured(campaign="c", parallelisms={"a": 2})
        import sys

        ProgressPrinter(stream=sys.stderr)(event)
        assert capsys.readouterr().err == ""
        ProgressPrinter(stream=sys.stderr, verbose=True)(event)
        assert "redeployed" in capsys.readouterr().err

    def test_scenario_prefix(self, capsys):
        import sys

        printer = ProgressPrinter(stream=sys.stderr)
        printer(CampaignStarted(campaign="c", scenario="ds2@flink/x3-7"))
        assert capsys.readouterr().err.startswith("[ds2@flink/x3-7] ")


# ----------------------------------------------------------------------
# the streaming contract on a real (smoke-sized) fleet
# ----------------------------------------------------------------------

def _contract(events, expected_campaigns, expected_steps):
    """Assert the documented stream shape and return events per campaign."""
    seqs = [event.seq for event in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    assert isinstance(events[-1], CacheStats)
    started = [e for e in events if isinstance(e, CampaignStarted)]
    finished = [e for e in events if isinstance(e, CampaignFinished)]
    assert sorted(e.campaign for e in started) == sorted(expected_campaigns)
    assert sorted(e.campaign for e in finished) == sorted(expected_campaigns)
    for name in expected_campaigns:
        scoped = [e for e in events if getattr(e, "campaign", None) == name]
        assert isinstance(scoped[0], CampaignStarted)
        assert isinstance(scoped[-1], CampaignFinished)
        steps = [e for e in scoped if isinstance(e, StepCompleted)]
        assert [e.step_index for e in steps] == list(range(expected_steps))
    return started, finished


@pytest.mark.parametrize("backend", ["sequential", "thread", "process"])
def test_service_stream_contract(tiny_pretrained, backend):
    from repro.service import CampaignSpec, TuningService
    from repro.workloads import nexmark_query

    specs = [
        CampaignSpec(
            query=nexmark_query(name, "flink"),
            multipliers=(3.0, 7.0),
            engine_seed=41,
            seed=41,
        )
        for name in ("q1", "q5")
    ]
    service = TuningService(tiny_pretrained, backend=backend, max_workers=2)
    events = list(service.stream(specs))
    names = [spec.name for spec in specs]
    started, finished = _contract(events, names, expected_steps=2)
    assert all(event.backend == backend for event in started + finished)
    # every finished event carries the outcome run() would have returned
    assert {event.outcome.spec_name for event in finished} == set(names)
    # campaign-scoped events carry the deterministic resume identity
    assert all(event.cell_key == spec.cell_key
               for spec, event in zip(specs, sorted(started, key=lambda e: e.index)))


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_seq_monotonic_across_merged_shard_streams(tiny_pretrained, backend):
    # Two campaigns, each split into two shards, finishing concurrently:
    # the consumer re-stamps seq, so the merged stream must be strictly
    # monotonic from 0 no matter how worker completions interleave.
    from repro.service import CampaignSpec, TuningService
    from repro.workloads import nexmark_query

    specs = [
        CampaignSpec(
            query=nexmark_query(name, "flink"),
            multipliers=(3.0, 7.0, 4.0),
            engine_seed=41,
            seed=41,
        )
        for name in ("q1", "q5")
    ]
    service = TuningService(tiny_pretrained, backend=backend, max_workers=4)
    events = list(service.stream(specs, trace_shards=2))
    assert [event.seq for event in events] == list(range(len(events)))
    _contract(events, [spec.name for spec in specs], expected_steps=3)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_step_events_are_live_mid_campaign(tiny_pretrained, backend):
    # The acceptance contract: an unsharded campaign's StepCompleted
    # events reach the consumer while its worker is still executing the
    # rest of the trace — not replayed after CampaignFinished.  At the
    # moment the first of three steps arrives, the campaign's worker
    # still owes two full tuning processes, so its future cannot be done.
    from repro.service import CampaignSpec, TuningService
    from repro.workloads import nexmark_query

    spec = CampaignSpec(
        query=nexmark_query("q5", "flink"),
        multipliers=(3.0, 7.0, 4.0),
        engine_seed=41,
        seed=41,
    )
    service = TuningService(tiny_pretrained, backend=backend, max_workers=1)
    live_checks = []
    finished_seen = False
    for event in service.stream([spec]):
        if isinstance(event, StepCompleted) and event.step_index == 0:
            assert not finished_seen
            live_checks.append(
                any(not f.done() for f in service._active_futures.values())
            )
        elif isinstance(event, CampaignFinished):
            finished_seen = True
    assert finished_seen
    assert live_checks == [True]


def test_stream_results_match_run(tiny_pretrained):
    from repro.service import CampaignSpec, TuningService
    from repro.workloads import nexmark_query

    specs = [
        CampaignSpec(
            query=nexmark_query(name, "flink"),
            multipliers=(3.0, 7.0),
            engine_seed=41,
            seed=41,
        )
        for name in ("q1", "q5")
    ]
    via_run = TuningService(tiny_pretrained, backend="sequential").run(specs)
    events = TuningService(tiny_pretrained, backend="sequential").stream(specs)
    via_stream = {
        event.index: event.outcome
        for event in events
        if isinstance(event, CampaignFinished)
    }
    for index, outcome in enumerate(via_run):
        streamed = via_stream[index]
        assert streamed.spec_name == outcome.spec_name
        assert [
            [step.parallelisms for step in process.steps]
            for process in streamed.result.processes
        ] == [
            [step.parallelisms for step in process.steps]
            for process in outcome.result.processes
        ]


def test_empty_spec_list_streams_only_cache_stats(tiny_pretrained):
    from repro.service import TuningService

    events = list(TuningService(tiny_pretrained, backend="sequential").stream([]))
    assert len(events) == 1 and isinstance(events[0], CacheStats)
    assert TuningService(tiny_pretrained, backend="sequential").run([]) == []
