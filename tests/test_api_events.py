"""Tests for repro.api.events and the streaming execution contract."""

from __future__ import annotations

import json

import pytest

from repro.api.events import (
    CacheStats,
    CampaignFinished,
    CampaignStarted,
    EventBus,
    JsonlRecorder,
    MetricsAggregator,
    ProgressPrinter,
    Reconfigured,
    StepCompleted,
    SweepFinished,
)


class TestEventRecords:
    def test_kind_is_class_name(self):
        assert CampaignStarted(campaign="c").kind == "CampaignStarted"
        assert SweepFinished().kind == "SweepFinished"

    def test_to_dict_is_json_serialisable(self):
        event = StepCompleted(
            campaign="c", step_index=1, n_steps=2, multiplier=3.0,
            parallelisms={"src": 2, "sink": 1}, reconfigurations=1,
            converged=True, seq=7,
        )
        data = event.to_dict()
        assert data["event"] == "StepCompleted"
        assert data["seq"] == 7
        assert json.loads(json.dumps(data)) == data

    def test_finished_outcome_not_serialised(self):
        event = CampaignFinished(campaign="c", outcome=object())
        assert "outcome" not in event.to_dict()
        assert event.outcome is not None

    def test_step_total_parallelism(self):
        event = StepCompleted(parallelisms={"a": 2, "b": 3})
        assert event.total_parallelism == 5

    def test_events_are_frozen(self):
        event = CampaignStarted(campaign="c")
        with pytest.raises(AttributeError):
            event.campaign = "other"


class TestEventBus:
    def test_publishes_to_every_subscriber(self):
        bus = EventBus()
        seen_a, seen_b = [], []
        bus.subscribe(seen_a.append)
        bus.subscribe(seen_b.append)
        event = CampaignStarted(campaign="c")
        bus.publish(event)
        assert seen_a == [event] and seen_b == [event]

    def test_broken_subscriber_is_isolated(self):
        bus = EventBus()

        def broken(event):
            raise RuntimeError("printer on fire")

        seen = []
        bus.subscribe(broken)
        bus.subscribe(seen.append)
        event = CacheStats(stats={})
        bus.publish(event)                    # must not raise
        assert seen == [event]
        assert len(bus.errors) == 1
        assert bus.errors[0][1] is event
        assert isinstance(bus.errors[0][2], RuntimeError)

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.publish(CacheStats())
        assert seen == [] and len(bus) == 0

    def test_constructor_subscribers(self):
        seen = []
        EventBus(seen.append).publish(SweepFinished())
        assert len(seen) == 1


class TestJsonlRecorder:
    def test_records_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlRecorder(path) as recorder:
            recorder(CampaignStarted(campaign="c", seq=0))
            recorder(StepCompleted(campaign="c", seq=1, parallelisms={"a": 1}))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2 and recorder.n_events == 2
        first, second = (json.loads(line) for line in lines)
        assert first["event"] == "CampaignStarted"
        assert second["parallelisms"] == {"a": 1}

    def test_lazy_open(self, tmp_path):
        recorder = JsonlRecorder(tmp_path / "sub" / "events.jsonl")
        assert not recorder.path.exists()
        recorder(CacheStats(stats={"warmup": {"hits": 1}}))
        recorder.close()
        assert recorder.path.exists()


class TestMetricsAggregator:
    def test_aggregates_steps_and_walls(self):
        metrics = MetricsAggregator()
        metrics(CampaignStarted(campaign="c"))
        metrics(StepCompleted(campaign="c", reconfigurations=2))
        metrics(StepCompleted(campaign="c", reconfigurations=1))
        metrics(CampaignFinished(campaign="c", wall_seconds=1.5))
        metrics(CacheStats(stats={"warmup": {"hits": 3}}))
        summary = metrics.summary()
        assert summary["steps"] == 2
        assert summary["reconfigurations"] == 3
        assert summary["campaigns"] == 1
        assert metrics.cache_stats == {"warmup": {"hits": 3}}
        assert metrics.n_events == 5

    def test_scenario_scopes_campaign_keys(self):
        metrics = MetricsAggregator()
        metrics(StepCompleted(campaign="c", scenario="a"))
        metrics(StepCompleted(campaign="c", scenario="b"))
        assert set(metrics.steps) == {"a/c", "b/c"}


class TestProgressPrinter:
    def test_one_line_per_event(self, capsys):
        printer = ProgressPrinter(stream=None)
        import sys

        printer.stream = sys.stderr
        for event in (
            CampaignStarted(campaign="c", n_steps=2, tuner="ds2"),
            StepCompleted(campaign="c", step_index=0, n_steps=2,
                          multiplier=3.0, parallelisms={"a": 4}),
            CampaignFinished(campaign="c", n_steps=2, converged_steps=2),
            CacheStats(stats={"warmup": {"hits": 1, "misses": 2}}),
            SweepFinished(n_scenarios=2, n_campaigns=4),
        ):
            printer(event)
        err = capsys.readouterr().err
        assert len(err.strip().splitlines()) == 5
        assert "ds2" in err and "1h/2m" in err

    def test_reconfigured_only_when_verbose(self, capsys):
        event = Reconfigured(campaign="c", parallelisms={"a": 2})
        import sys

        ProgressPrinter(stream=sys.stderr)(event)
        assert capsys.readouterr().err == ""
        ProgressPrinter(stream=sys.stderr, verbose=True)(event)
        assert "redeployed" in capsys.readouterr().err

    def test_scenario_prefix(self, capsys):
        import sys

        printer = ProgressPrinter(stream=sys.stderr)
        printer(CampaignStarted(campaign="c", scenario="ds2@flink/x3-7"))
        assert capsys.readouterr().err.startswith("[ds2@flink/x3-7] ")


# ----------------------------------------------------------------------
# the streaming contract on a real (smoke-sized) fleet
# ----------------------------------------------------------------------

def _contract(events, expected_campaigns, expected_steps):
    """Assert the documented stream shape and return events per campaign."""
    seqs = [event.seq for event in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    assert isinstance(events[-1], CacheStats)
    started = [e for e in events if isinstance(e, CampaignStarted)]
    finished = [e for e in events if isinstance(e, CampaignFinished)]
    assert sorted(e.campaign for e in started) == sorted(expected_campaigns)
    assert sorted(e.campaign for e in finished) == sorted(expected_campaigns)
    for name in expected_campaigns:
        scoped = [e for e in events if getattr(e, "campaign", None) == name]
        assert isinstance(scoped[0], CampaignStarted)
        assert isinstance(scoped[-1], CampaignFinished)
        steps = [e for e in scoped if isinstance(e, StepCompleted)]
        assert [e.step_index for e in steps] == list(range(expected_steps))
    return started, finished


@pytest.mark.parametrize("backend", ["sequential", "thread"])
def test_service_stream_contract(tiny_pretrained, backend):
    from repro.service import CampaignSpec, TuningService
    from repro.workloads import nexmark_query

    specs = [
        CampaignSpec(
            query=nexmark_query(name, "flink"),
            multipliers=(3.0, 7.0),
            engine_seed=41,
            seed=41,
        )
        for name in ("q1", "q5")
    ]
    service = TuningService(tiny_pretrained, backend=backend, max_workers=2)
    events = list(service.stream(specs))
    names = [spec.name for spec in specs]
    started, finished = _contract(events, names, expected_steps=2)
    assert all(event.backend == backend for event in started + finished)
    # every finished event carries the outcome run() would have returned
    assert {event.outcome.spec_name for event in finished} == set(names)


def test_stream_results_match_run(tiny_pretrained):
    from repro.service import CampaignSpec, TuningService
    from repro.workloads import nexmark_query

    specs = [
        CampaignSpec(
            query=nexmark_query(name, "flink"),
            multipliers=(3.0, 7.0),
            engine_seed=41,
            seed=41,
        )
        for name in ("q1", "q5")
    ]
    via_run = TuningService(tiny_pretrained, backend="sequential").run(specs)
    events = TuningService(tiny_pretrained, backend="sequential").stream(specs)
    via_stream = {
        event.index: event.outcome
        for event in events
        if isinstance(event, CampaignFinished)
    }
    for index, outcome in enumerate(via_run):
        streamed = via_stream[index]
        assert streamed.spec_name == outcome.spec_name
        assert [
            [step.parallelisms for step in process.steps]
            for process in streamed.result.processes
        ] == [
            [step.parallelisms for step in process.steps]
            for process in outcome.result.processes
        ]


def test_empty_spec_list_streams_only_cache_stats(tiny_pretrained):
    from repro.service import TuningService

    events = list(TuningService(tiny_pretrained, backend="sequential").stream([]))
    assert len(events) == 1 and isinstance(events[0], CacheStats)
    assert TuningService(tiny_pretrained, backend="sequential").run([]) == []
