"""End-to-end integration of the §VII extension features.

Each test drives the *full* StreamTune pipeline (pre-train -> assign ->
fine-tune -> redeploy) with one extension swapped in, proving the
extensions compose with the paper's core loop rather than existing beside
it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import StreamTuneTuner, pretrain
from repro.core.history import HistoryGenerator
from repro.dataflow.embeddings import SemanticFeatureEncoder
from repro.engines import ClusterTopology, FlinkCluster, SchedulingAwareTimely
from repro.workloads import nexmark_queries, nexmark_query


@pytest.fixture(scope="module")
def semantic_pretrained(tiny_history_module):
    return pretrain(
        tiny_history_module[:150],
        max_parallelism=100,
        n_clusters=1,
        epochs=4,
        seed=5,
        feature_encoder=SemanticFeatureEncoder(),
    )


@pytest.fixture(scope="module")
def tiny_history_module():
    engine = FlinkCluster(seed=3)
    corpus = nexmark_queries("flink")
    return HistoryGenerator(engine, seed=4).generate(corpus, 200)


class TestIsotonicLayerEndToEnd:
    def test_tunes_a_query_without_backpressure_loop(self, tiny_pretrained):
        engine = FlinkCluster(seed=9)
        query = nexmark_query("q2", "flink")
        tuner = StreamTuneTuner(
            engine, tiny_pretrained, model_kind="isotonic", seed=21
        )
        tuner.prepare(query)
        deployment = engine.deploy(
            query.flow,
            dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(3),
        )
        result = tuner.tune(deployment, query.rates_at(8))
        assert result.steps, "tuner must take at least one step"
        final = engine.measure(deployment)
        assert not final.has_backpressure
        engine.stop(deployment)

    def test_recommendations_within_engine_bounds(self, tiny_pretrained):
        engine = FlinkCluster(seed=13)
        query = nexmark_query("q5", "flink")
        tuner = StreamTuneTuner(
            engine, tiny_pretrained, model_kind="isotonic", seed=22
        )
        tuner.prepare(query)
        deployment = engine.deploy(
            query.flow,
            dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(2),
        )
        result = tuner.tune(deployment, query.rates_at(6))
        for parallelisms in (step.parallelisms for step in result.steps):
            for degree in parallelisms.values():
                assert 1 <= degree <= engine.max_parallelism
        engine.stop(deployment)


class TestSemanticEncoderEndToEnd:
    def test_full_loop_with_semantic_features(self, semantic_pretrained):
        engine = FlinkCluster(seed=17)
        query = nexmark_query("q1", "flink")
        tuner = StreamTuneTuner(engine, semantic_pretrained, seed=23)
        tuner.prepare(query)
        deployment = engine.deploy(
            query.flow,
            dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(3),
        )
        result = tuner.tune(deployment, query.rates_at(7))
        assert result.steps
        assert not engine.measure(deployment).has_backpressure
        engine.stop(deployment)

    def test_embeddings_have_semantic_dimension(self, semantic_pretrained):
        encoder = semantic_pretrained.feature_encoder
        assert isinstance(encoder, SemanticFeatureEncoder)
        query = nexmark_query("q1", "flink")
        matrix, _ = encoder.encode_dataflow(query.flow, query.rates_at(1))
        assert matrix.shape[1] == encoder.dimension


class TestSchedulingAwareEndToEnd:
    def _tune_on(self, engine, query, pretrained, multiplier=4):
        tuner = StreamTuneTuner(engine, pretrained, seed=25, max_iterations=6)
        tuner.prepare(query)
        deployment = engine.deploy(
            query.flow,
            dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(1),
        )
        result = tuner.tune(deployment, query.rates_at(multiplier))
        final = engine.measure(deployment)
        total = deployment.total_parallelism()
        engine.stop(deployment)
        return result, final, total

    def test_tuner_clears_backpressure_under_contention(self, timely_pretrained_tiny):
        query = nexmark_query("q3", "timely")
        engine = SchedulingAwareTimely(
            topology=ClusterTopology.uniform(2, 32), strategy="spread", seed=19
        )
        result, final, _ = self._tune_on(engine, query, timely_pretrained_tiny)
        assert result.steps
        assert not final.has_backpressure

    def test_compact_placement_never_needs_less_parallelism(
        self, timely_pretrained_tiny
    ):
        """Feedback-driven tuning absorbs placement contention: the
        compact strategy's final configuration is at least as large as
        spread's (strictly larger once the topology is tight)."""
        query = nexmark_query("q3", "timely")
        totals = {}
        for strategy in ("spread", "compact"):
            engine = SchedulingAwareTimely(
                topology=ClusterTopology.uniform(2, 6),
                strategy=strategy,
                seed=19,
            )
            _, final, total = self._tune_on(
                engine, query, timely_pretrained_tiny, multiplier=3
            )
            totals[strategy] = total
        assert totals["compact"] >= totals["spread"]


@pytest.fixture(scope="module")
def timely_pretrained_tiny():
    from repro.engines import TimelyCluster

    engine = TimelyCluster(seed=6)
    corpus = nexmark_queries("timely")
    records = HistoryGenerator(engine, seed=8).generate(corpus, 150)
    return pretrain(
        records, max_parallelism=engine.max_parallelism,
        n_clusters=1, epochs=4, seed=9,
    )


class TestCalibratedLayerInSearch:
    def test_calibrated_svm_drives_binary_search(self, tiny_pretrained):
        """A Platt-calibrated monotone model plugs into the same
        min-feasible-parallelism search the tuner uses."""
        from repro.core.finetune import build_warmup_dataset
        from repro.models import MonotonicSVM, PlattCalibrator
        from repro.models.search import min_feasible_parallelism

        dataset = build_warmup_dataset(tiny_pretrained, 0, max_rows=200, seed=3)
        features, labels = dataset.matrices()
        if len(np.unique(labels)) < 2:
            pytest.skip("warm-up sample is single-class at this tiny scale")
        base = MonotonicSVM(seed=2).fit(features, labels)
        calibrated = PlattCalibrator(base).fit(features, labels)
        normalize = tiny_pretrained.feature_encoder.normalize_parallelism
        embedding = features[0, :-1]
        degree = min_feasible_parallelism(
            calibrated,
            embedding,
            100,
            lambda p: normalize(p, tiny_pretrained.max_parallelism),
        )
        assert 1 <= degree <= 100
