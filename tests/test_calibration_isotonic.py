"""Tests for the calibration wrapper and the isotonic k-NN model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import make_prediction_model
from repro.models.base import check_monotonicity
from repro.models.calibration import (
    PlattCalibrator,
    brier_score,
    expected_calibration_error,
    fit_platt,
    reliability_table,
)
from repro.models.isotonic import IsotonicKNN, pav_antitonic, step_interpolate
from repro.utils.rng import seeded_rng


def threshold_dataset(
    n: int = 240, boundary: float = 0.45, seed: int = 4
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic M_f data: bottleneck iff p below an h-dependent boundary."""
    rng = seeded_rng(seed)
    h = rng.uniform(0.0, 1.0, size=(n, 3))
    p = rng.uniform(0.0, 1.0, size=n)
    cutoff = boundary * (0.5 + h[:, 0])
    labels = (p < cutoff).astype(np.float64)
    features = np.column_stack([h, p])
    return features, labels


class TestPavAntitonic:
    def test_already_decreasing_is_unchanged(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([0.9, 0.5, 0.1])
        knots, fitted = pav_antitonic(x, y)
        assert np.allclose(fitted, y)

    def test_increasing_input_is_pooled_flat(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([0.1, 0.5, 0.9])
        _, fitted = pav_antitonic(x, y)
        assert np.allclose(fitted, 0.5)

    def test_result_is_always_non_increasing(self):
        rng = seeded_rng(9)
        x = rng.uniform(size=50)
        y = rng.uniform(size=50)
        _, fitted = pav_antitonic(x, y)
        assert np.all(np.diff(fitted) <= 1e-12)

    def test_duplicate_positions_pooled_by_weight(self):
        x = np.array([1.0, 1.0, 2.0])
        y = np.array([0.0, 1.0, 0.2])
        w = np.array([1.0, 3.0, 1.0])
        knots, fitted = pav_antitonic(x, y, w)
        assert len(knots) == 2
        assert fitted[0] == pytest.approx(0.75)   # (0*1 + 1*3) / 4

    def test_weighted_pooling_respects_weights(self):
        x = np.array([1.0, 2.0])
        y = np.array([0.0, 1.0])     # violates antitonicity -> pooled
        w = np.array([3.0, 1.0])
        _, fitted = pav_antitonic(x, y, w)
        assert np.allclose(fitted, 0.25)   # weighted mean

    def test_input_validation(self):
        with pytest.raises(ValueError):
            pav_antitonic(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            pav_antitonic(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            pav_antitonic(np.array([1.0]), np.array([1.0]), np.array([0.0]))

    def test_mean_is_preserved(self):
        """PAV is a projection: the weighted mean of the fit equals the data's."""
        rng = seeded_rng(3)
        x = np.arange(20.0)
        y = rng.uniform(size=20)
        knots, fitted = pav_antitonic(x, y)
        assert float(fitted.mean()) == pytest.approx(float(y.mean()))


class TestStepInterpolate:
    def test_clamps_outside_range(self):
        knots = np.array([0.2, 0.8])
        fitted = np.array([0.9, 0.1])
        assert step_interpolate(0.0, knots, fitted) == pytest.approx(0.9)
        assert step_interpolate(1.0, knots, fitted) == pytest.approx(0.1)

    def test_interpolates_between_knots(self):
        knots = np.array([0.0, 1.0])
        fitted = np.array([1.0, 0.0])
        assert step_interpolate(0.25, knots, fitted) == pytest.approx(0.75)

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            step_interpolate(0.5, np.array([]), np.array([]))


class TestIsotonicKNN:
    def test_learns_threshold_surface(self):
        features, labels = threshold_dataset()
        model = IsotonicKNN(seed=2).fit(features, labels)
        predictions = model.predict(features)
        accuracy = float((predictions == labels).mean())
        assert accuracy > 0.85

    def test_monotone_in_parallelism_by_construction(self):
        features, labels = threshold_dataset(seed=6)
        model = IsotonicKNN(seed=2).fit(features, labels)
        report = check_monotonicity(model, features[:40])
        assert report.is_monotone

    def test_predict_proba_within_unit_interval(self):
        features, labels = threshold_dataset(seed=7)
        model = IsotonicKNN(seed=2).fit(features, labels)
        probabilities = model.predict_proba(features)
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0)

    def test_single_row_prediction_shape(self):
        features, labels = threshold_dataset()
        model = IsotonicKNN().fit(features, labels)
        single = model.predict_proba(features[0])
        assert single.shape == (1,)

    def test_prior_anchors_dominate_single_class_neighbourhoods(self):
        """An all-negative dataset still predicts bottleneck at p=0."""
        rng = seeded_rng(1)
        features = np.column_stack(
            [rng.uniform(size=(30, 2)), rng.uniform(0.5, 1.0, size=30)]
        )
        labels = np.zeros(30)
        model = IsotonicKNN(prior_weight=0.5).fit(features, labels)
        at_zero = model.predict_proba(np.array([[0.5, 0.5, 0.0]]))[0]
        at_one = model.predict_proba(np.array([[0.5, 0.5, 1.0]]))[0]
        assert at_zero > at_one

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="before fit"):
            IsotonicKNN().predict_proba(np.zeros((1, 3)))

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            IsotonicKNN(n_neighbors=0)
        with pytest.raises(ValueError):
            IsotonicKNN(bandwidth=0.0)
        with pytest.raises(ValueError):
            IsotonicKNN(prior_weight=-1.0)

    def test_rejects_bad_fit_inputs(self):
        model = IsotonicKNN()
        with pytest.raises(ValueError):
            model.fit(np.zeros((0, 3)), np.zeros(0))
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, 1)), np.zeros(4))
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, 3)), np.zeros(5))

    def test_factory_constructs_isotonic(self):
        model = make_prediction_model("isotonic")
        assert isinstance(model, IsotonicKNN)

    def test_works_inside_min_feasible_search(self):
        from repro.models.search import min_feasible_parallelism

        features, labels = threshold_dataset(seed=11)
        model = IsotonicKNN(seed=2).fit(features, labels)
        embedding = features[0, :-1]
        normalize = lambda p: p / 100.0   # noqa: E731
        degree = min_feasible_parallelism(model, embedding, 100, normalize)
        assert 1 <= degree <= 100


@settings(max_examples=25, deadline=None)
@given(
    p_query=st.floats(min_value=0.0, max_value=1.0),
    p_higher=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=50),
)
def test_isotonic_probability_never_rises_with_parallelism(p_query, p_higher, seed):
    features, labels = threshold_dataset(n=120, seed=seed)
    model = IsotonicKNN(n_neighbors=15, seed=3).fit(features, labels)
    low, high = sorted([p_query, p_higher])
    embedding = features[seed % len(features), :-1]
    prob_low = model.predict_proba(np.concatenate([embedding, [low]]))[0]
    prob_high = model.predict_proba(np.concatenate([embedding, [high]]))[0]
    assert prob_high <= prob_low + 1e-9


class TestPlattScaling:
    def test_recovers_a_known_sigmoid(self):
        rng = seeded_rng(5)
        scores = rng.normal(size=4000)
        true_prob = 1.0 / (1.0 + np.exp(-(2.0 * scores - 0.5)))
        labels = (rng.uniform(size=4000) < true_prob).astype(np.float64)
        params = fit_platt(scores, labels)
        assert params.slope == pytest.approx(2.0, rel=0.15)
        assert params.intercept == pytest.approx(-0.5, abs=0.15)

    def test_slope_is_kept_positive(self):
        """Anti-correlated labels cannot flip the calibration map."""
        scores = np.linspace(-2, 2, 100)
        labels = (scores < 0).astype(np.float64)   # inverted relationship
        params = fit_platt(scores, labels)
        assert params.slope > 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_platt(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            fit_platt(np.ones(3), np.array([0.0, 2.0, 1.0]))
        with pytest.raises(ValueError):
            fit_platt(np.ones((2, 2)), np.ones((2, 2)))

    def test_calibrator_improves_svm_calibration(self):
        features, labels = threshold_dataset(n=400, seed=8)
        split = 300
        base = make_prediction_model("svm", seed=1).fit(
            features[:split], labels[:split]
        )
        calibrated = PlattCalibrator(base).fit(features[:split], labels[:split])
        raw_ece = expected_calibration_error(
            base.predict_proba(features[split:]), labels[split:], n_bins=6
        )
        cal_ece = expected_calibration_error(
            calibrated.predict_proba(features[split:]), labels[split:], n_bins=6
        )
        assert cal_ece <= raw_ece + 0.05

    def test_calibrated_model_stays_monotone(self):
        features, labels = threshold_dataset(seed=9)
        base = make_prediction_model("svm", seed=1).fit(features, labels)
        calibrated = PlattCalibrator(base).fit(features, labels)
        report = check_monotonicity(calibrated, features[:30])
        assert report.is_monotone

    def test_predict_before_fit_raises(self):
        base = make_prediction_model("svm", seed=1)
        with pytest.raises(RuntimeError, match="fit"):
            PlattCalibrator(base).predict_proba(np.zeros((1, 4)))

    def test_predict_is_thresholded_proba(self):
        features, labels = threshold_dataset(seed=10)
        base = make_prediction_model("gbdt", seed=1).fit(features, labels)
        calibrated = PlattCalibrator(base).fit(features, labels)
        probabilities = calibrated.predict_proba(features[:20])
        assert np.array_equal(
            calibrated.predict(features[:20]), (probabilities >= 0.5).astype(int)
        )


class TestReliabilityMetrics:
    def test_brier_score_perfect_and_worst(self):
        labels = np.array([1.0, 0.0])
        assert brier_score(np.array([1.0, 0.0]), labels) == pytest.approx(0.0)
        assert brier_score(np.array([0.0, 1.0]), labels) == pytest.approx(1.0)

    def test_brier_input_validation(self):
        with pytest.raises(ValueError):
            brier_score(np.ones(2), np.ones(3))
        with pytest.raises(ValueError):
            brier_score(np.ones(0), np.ones(0))

    def test_reliability_table_covers_all_samples(self):
        rng = seeded_rng(2)
        probabilities = rng.uniform(size=200)
        labels = (rng.uniform(size=200) < probabilities).astype(np.float64)
        table = reliability_table(probabilities, labels, n_bins=10)
        assert sum(b.n_samples for b in table) == 200
        assert len(table) == 10

    def test_probability_one_lands_in_last_bin(self):
        table = reliability_table(np.array([1.0]), np.array([1.0]), n_bins=4)
        assert table[-1].n_samples == 1

    def test_ece_zero_for_perfectly_calibrated_bins(self):
        probabilities = np.array([0.2] * 5 + [0.8] * 5)
        labels = np.array([0, 0, 0, 0, 1, 1, 1, 1, 1, 0], dtype=np.float64)
        assert expected_calibration_error(probabilities, labels, n_bins=5) == (
            pytest.approx(0.0)
        )

    def test_ece_validation(self):
        with pytest.raises(ValueError):
            expected_calibration_error(np.ones(0), np.ones(0))
        with pytest.raises(ValueError):
            reliability_table(np.ones(1), np.ones(1), n_bins=0)
