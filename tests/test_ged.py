"""Unit and property tests for graph edit distance."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow.graph import LogicalDataflow
from repro.dataflow.operators import OperatorSpec, OperatorType
from repro.ged._core import SearchBudgetExceeded, ged_search, trivial_upper_bound
from repro.ged.astar_lsa import astar_lsa_ged, verify_within_threshold
from repro.ged.costs import EditCosts
from repro.ged.exact import exact_ged
from repro.ged.view import GraphView, as_view
from tests.conftest import build_diamond_flow, build_linear_flow


def chain_flow(name: str, *types: OperatorType) -> LogicalDataflow:
    flow = LogicalDataflow(name)
    specs = [OperatorSpec(name=f"n{i}", op_type=t) for i, t in enumerate(types)]
    flow.chain(*specs)
    return flow


SRC, MAP, FIL, SNK = (
    OperatorType.SOURCE,
    OperatorType.MAP,
    OperatorType.FILTER,
    OperatorType.SINK,
)


# A small strategy over random labelled DAGs (<= 6 nodes).
@st.composite
def small_dags(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    types = [SRC] + [
        draw(st.sampled_from([MAP, FIL, OperatorType.JOIN, SNK]))
        for _ in range(n - 1)
    ]
    flow = LogicalDataflow(f"dag{draw(st.integers(0, 10**6))}")
    for i, t in enumerate(types):
        flow.add_operator(OperatorSpec(name=f"n{i}", op_type=t))
    for v in range(1, n):
        # each node gets at least one upstream parent to keep things dag-ish
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        flow.connect(f"n{parent}", f"n{v}")
        if v >= 2 and draw(st.booleans()):
            extra = draw(st.integers(min_value=0, max_value=v - 1))
            if extra != parent:
                flow.connect(f"n{extra}", f"n{v}")
    return flow


class TestBasicProperties:
    def test_identity_zero(self):
        flow = chain_flow("a", SRC, MAP, SNK)
        assert exact_ged(flow, flow) == 0.0

    def test_renamed_copy_zero(self):
        a = chain_flow("a", SRC, FIL, SNK)
        b = LogicalDataflow("b")
        b.chain(
            OperatorSpec(name="x", op_type=SRC),
            OperatorSpec(name="y", op_type=FIL),
            OperatorSpec(name="z", op_type=SNK),
        )
        assert exact_ged(a, b) == 0.0

    def test_single_substitution(self):
        a = chain_flow("a", SRC, MAP, SNK)
        b = chain_flow("b", SRC, FIL, SNK)
        assert exact_ged(a, b) == 1.0

    def test_node_insertion(self):
        a = chain_flow("a", SRC, SNK)
        b = chain_flow("b", SRC, MAP, SNK)
        # Optimal script: relabel a's sink to map (1), insert a new sink
        # node (1), insert the map->sink edge (1); a's src->snk edge maps
        # onto b's src->map edge for free.  Total 3.
        assert exact_ged(a, b) == 3.0

    def test_edge_direction_modification_cheaper_than_delete_insert(self):
        a = LogicalDataflow("a")
        a.add_operator(OperatorSpec(name="s", op_type=SRC))
        a.add_operator(OperatorSpec(name="m", op_type=MAP))
        a.connect("s", "m")
        b = LogicalDataflow("b")
        b.add_operator(OperatorSpec(name="s", op_type=SRC))
        b.add_operator(OperatorSpec(name="m", op_type=MAP))
        b.connect("m", "s")
        # same labels, single edge reversed: one direction modification.
        assert exact_ged(a, b) == 1.0

    def test_costs_validation(self):
        with pytest.raises(ValueError):
            EditCosts(node_insert=0.0)
        with pytest.raises(ValueError, match="edge_reverse"):
            EditCosts(edge_reverse=5.0)

    def test_edge_pair_cost_matrix(self):
        costs = EditCosts()
        assert costs.edge_pair_cost(0, 0) == 0.0
        assert costs.edge_pair_cost(1, 1) == 0.0
        assert costs.edge_pair_cost(-1, -1) == 0.0
        assert costs.edge_pair_cost(0, 1) == costs.edge_insert
        assert costs.edge_pair_cost(1, 0) == costs.edge_delete
        assert costs.edge_pair_cost(1, -1) == costs.edge_reverse


class TestAgreementAndBounds:
    @settings(max_examples=25, deadline=None)
    @given(small_dags(), small_dags())
    def test_exact_equals_lsa(self, a, b):
        assert exact_ged(a, b) == pytest.approx(astar_lsa_ged(a, b))

    @settings(max_examples=25, deadline=None)
    @given(small_dags(), small_dags())
    def test_symmetry(self, a, b):
        assert exact_ged(a, b) == pytest.approx(exact_ged(b, a))

    @settings(max_examples=15, deadline=None)
    @given(small_dags(), small_dags(), small_dags())
    def test_triangle_inequality(self, a, b, c):
        ab = astar_lsa_ged(a, b)
        bc = astar_lsa_ged(b, c)
        ac = astar_lsa_ged(a, c)
        assert ac <= ab + bc + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(small_dags(), small_dags())
    def test_upper_bound_respected(self, a, b):
        va, vb = as_view(a), as_view(b)
        assert exact_ged(a, b) <= trivial_upper_bound(va, vb, EditCosts()) + 1e-9

    def test_corpus_pairs_agree(self, corpus):
        flows = [q.flow for q in corpus[:12]]
        for f1, f2 in itertools.islice(itertools.combinations(flows, 2), 20):
            assert exact_ged(f1, f2) == pytest.approx(astar_lsa_ged(f1, f2))


class TestThresholdVerification:
    def test_true_at_exact_distance(self):
        a = chain_flow("a", SRC, MAP, SNK)
        b = chain_flow("b", SRC, FIL, FIL, SNK)
        distance = exact_ged(a, b)
        assert verify_within_threshold(a, b, distance)
        assert not verify_within_threshold(a, b, distance - 0.5)

    def test_threshold_search_returns_none_above(self):
        a = chain_flow("a", SRC, MAP, SNK)
        b = build_diamond_flow()
        distance = exact_ged(a, b)
        assert astar_lsa_ged(a, b, threshold=distance - 1) is None

    def test_negative_threshold_rejected(self):
        a = chain_flow("a", SRC, SNK)
        with pytest.raises(ValueError):
            verify_within_threshold(a, a, -1.0)

    def test_zero_threshold_identity(self):
        a = chain_flow("a", SRC, MAP, SNK)
        assert verify_within_threshold(a, a, 0.0)


class TestSearchMechanics:
    def test_budget_exceeded_raises(self):
        a = build_diamond_flow()
        b = chain_flow("b", SRC, MAP, MAP, FIL, SNK)
        with pytest.raises(SearchBudgetExceeded):
            ged_search(as_view(a), as_view(b), use_label_set_bound=False, max_expansions=2)

    def test_view_caches_per_object(self):
        flow = build_linear_flow()
        assert as_view(flow) is as_view(flow)

    def test_view_structure(self):
        view = GraphView.from_dataflow(build_diamond_flow())
        assert view.n_nodes == 5
        assert view.n_edges == 5
        assert view.direction(0, 1) in (-1, 1)
        assert view.direction(0, 4) == 0  # src and sink not adjacent
