"""Unit tests for feature encoding (Table I + dynamic source rate)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dataflow.features import FeatureEncoder, RATE_ENCODING_FREQUENCIES
from repro.dataflow.operators import (
    AggregateFunction,
    DataType,
    KeyClass,
    OperatorSpec,
    OperatorType,
    WindowPolicy,
    WindowType,
)
from tests.conftest import build_diamond_flow, build_linear_flow


@pytest.fixture
def encoder() -> FeatureEncoder:
    return FeatureEncoder()


class TestDimension:
    def test_dimension_matches_encoding(self, encoder):
        spec = OperatorSpec(name="x", op_type=OperatorType.MAP)
        assert len(encoder.encode_operator(spec)) == encoder.dimension

    def test_dimension_counts_rate_sinusoids(self, encoder):
        spec = OperatorSpec(name="x", op_type=OperatorType.MAP)
        vector = encoder.encode_operator(spec, source_rate=0.0)
        sinusoid_count = 2 * len(RATE_ENCODING_FREQUENCIES)
        assert np.allclose(vector[-sinusoid_count:], 0.0)

    def test_invalid_ceilings_rejected(self):
        with pytest.raises(ValueError):
            FeatureEncoder(max_source_rate=0.0)


class TestCategoricalEncoding:
    def test_one_hot_operator_type(self, encoder):
        a = encoder.encode_operator(OperatorSpec(name="a", op_type=OperatorType.MAP))
        b = encoder.encode_operator(OperatorSpec(name="b", op_type=OperatorType.FILTER))
        type_slice = slice(0, len(OperatorType))
        assert a[type_slice].sum() == 1.0
        assert b[type_slice].sum() == 1.0
        assert not np.array_equal(a[type_slice], b[type_slice])

    def test_window_config_changes_encoding(self, encoder):
        plain = OperatorSpec(name="p", op_type=OperatorType.WINDOW_AGGREGATE,
                             window_type=WindowType.TUMBLING, window_length=60.0,
                             window_policy=WindowPolicy.TIME,
                             aggregate_function=AggregateFunction.SUM)
        sliding = OperatorSpec(name="s", op_type=OperatorType.WINDOW_AGGREGATE,
                               window_type=WindowType.SLIDING, window_length=60.0,
                               sliding_length=10.0, window_policy=WindowPolicy.TIME,
                               aggregate_function=AggregateFunction.SUM)
        assert not np.array_equal(
            encoder.encode_operator(plain), encoder.encode_operator(sliding)
        )

    def test_all_key_classes_distinct(self, encoder):
        vectors = []
        for key_class in KeyClass:
            spec = OperatorSpec(name="j", op_type=OperatorType.JOIN, join_key_class=key_class)
            vectors.append(tuple(encoder.encode_operator(spec)))
        assert len(set(vectors)) == len(KeyClass)


class TestNumericEncoding:
    def test_values_bounded(self, encoder):
        spec = OperatorSpec(
            name="w",
            op_type=OperatorType.WINDOW_JOIN,
            window_type=WindowType.SLIDING,
            window_length=1e9,          # beyond the ceiling
            sliding_length=1e8,
            join_key_class=KeyClass.INT,
            tuple_width_in=1e6,
            tuple_width_out=1e6,
        )
        vector = encoder.encode_operator(spec, source_rate=1e12)
        assert np.all(vector <= 1.0) and np.all(vector >= -1.0)

    def test_rate_scaling_monotone(self, encoder):
        spec = OperatorSpec(name="s", op_type=OperatorType.SOURCE)
        rate_index = encoder.dimension - 1 - 2 * len(RATE_ENCODING_FREQUENCIES)
        values = [
            encoder.encode_operator(spec, source_rate=r)[rate_index]
            for r in (0.0, 1e3, 1e5, 1e7)
        ]
        assert values == sorted(values)

    def test_rate_sinusoids_resolve_small_multiples(self, encoder):
        """3 x Wu and 10 x Wu must be clearly separable (the tuning band)."""
        spec = OperatorSpec(name="s", op_type=OperatorType.SOURCE)
        low = encoder.encode_operator(spec, source_rate=3 * 80_000)
        high = encoder.encode_operator(spec, source_rate=10 * 80_000)
        assert np.linalg.norm(low - high) > 0.5


class TestDataflowEncoding:
    def test_topological_row_order(self, encoder):
        flow = build_diamond_flow()
        matrix, order = encoder.encode_dataflow(flow, {"src": 1000.0})
        assert order == flow.topological_order()
        assert matrix.shape == (len(flow), encoder.dimension)

    def test_rate_feature_on_source_and_first_level(self, encoder):
        flow = build_diamond_flow()
        matrix, order = encoder.encode_dataflow(flow, {"src": 5e5})
        rate_index = encoder.dimension - 1 - 2 * len(RATE_ENCODING_FREQUENCIES)
        by_name = dict(zip(order, matrix))
        assert by_name["src"][rate_index] > 0
        assert by_name["left"][rate_index] > 0     # first-level downstream
        assert by_name["right"][rate_index] > 0
        assert by_name["join"][rate_index] == 0.0  # deeper operators: zero
        assert by_name["sink"][rate_index] == 0.0

    def test_missing_rate_defaults_to_zero(self, encoder):
        flow = build_linear_flow()
        matrix, order = encoder.encode_dataflow(flow, {})
        rate_index = encoder.dimension - 1 - 2 * len(RATE_ENCODING_FREQUENCIES)
        assert matrix[order.index("src")][rate_index] == 0.0


class TestParallelismNormalisation:
    def test_monotone(self, encoder):
        values = [encoder.normalize_parallelism(p, 100) for p in range(1, 101)]
        assert values == sorted(values)
        assert len(set(values)) == 100

    def test_bounds(self, encoder):
        assert encoder.normalize_parallelism(0, 100) == 0.0
        assert encoder.normalize_parallelism(100, 100) == 1.0
        assert encoder.normalize_parallelism(1000, 100) == 1.0

    def test_log_shape(self, encoder):
        """Low degrees get more resolution than high degrees."""
        low_gap = encoder.normalize_parallelism(2, 100) - encoder.normalize_parallelism(1, 100)
        high_gap = encoder.normalize_parallelism(100, 100) - encoder.normalize_parallelism(99, 100)
        assert low_gap > high_gap

    def test_invalid_max_rejected(self, encoder):
        with pytest.raises(ValueError):
            encoder.normalize_parallelism(1, 0)
