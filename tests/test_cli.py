"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _resolve_query, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_history_args(self):
        args = build_parser().parse_args(
            ["history", "--output", "h.jsonl", "--records", "50"]
        )
        assert args.records == 50
        assert args.engine == "flink"

    def test_tune_args(self):
        args = build_parser().parse_args(
            ["tune", "--model", "m", "--query", "q5", "--rates", "2,9"]
        )
        assert args.rates == "2,9"
        assert args.layer == "svm"

    def test_tune_accepts_isotonic_layer(self):
        args = build_parser().parse_args(
            ["tune", "--model", "m", "--query", "q2", "--layer", "isotonic"]
        )
        assert args.layer == "isotonic"

    def test_tune_rejects_unknown_layer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["tune", "--model", "m", "--query", "q2", "--layer", "forest"]
            )

    def test_ablations_subcommand(self):
        args = build_parser().parse_args(["ablations", "--scale", "smoke"])
        assert args.scale == "smoke"
        assert args.func.__name__ == "_cmd_ablations"


class TestQueryResolution:
    def test_nexmark(self):
        assert _resolve_query("q5", "flink").name == "nexmark_q5_flink"

    def test_pqp(self):
        assert _resolve_query("2-way-join/3", "flink").name.startswith("pqp_2way")

    def test_unknown(self):
        with pytest.raises(KeyError):
            _resolve_query("4-way/0", "flink")


class TestEndToEnd:
    def test_history_pretrain_tune_pipeline(self, tmp_path, capsys):
        history_path = tmp_path / "history.jsonl"
        model_dir = tmp_path / "model"

        assert main([
            "history", "--output", str(history_path),
            "--records", "400", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote 400 records" in out

        assert main([
            "pretrain", "--history", str(history_path),
            "--output", str(model_dir), "--clusters", "2",
            "--epochs", "6", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "pre-trained 2 cluster encoder(s)" in out

        assert main([
            "tune", "--model", str(model_dir),
            "--query", "q1", "--rates", "3,8",
        ]) == 0
        out = capsys.readouterr().out
        assert "StreamTune tuning" in out
        assert "converged" in out


class TestValidationExitCodes:
    """Plan-validation failures exit 2 with a one-line message, never a
    traceback (asserted via capsys: stderr is exactly one line)."""

    def _assert_one_line_error(self, capsys, code):
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err
        return err

    def test_run_plan_missing_file(self, capsys):
        code = main(["run-plan", "no_such_plan.toml"])
        err = self._assert_one_line_error(capsys, code)
        assert "does not exist" in err

    def test_run_plan_invalid_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        code = main(["run-plan", str(path)])
        err = self._assert_one_line_error(capsys, code)
        assert "not valid JSON" in err

    def test_run_plan_unknown_field(self, tmp_path, capsys):
        import json as json_module

        path = tmp_path / "plan.json"
        path.write_text(json_module.dumps({"queries": ["q1"], "ratez": [3]}))
        code = main(["run-plan", str(path)])
        err = self._assert_one_line_error(capsys, code)
        assert "ratez" in err

    def test_run_plan_unknown_query(self, tmp_path, capsys):
        import json as json_module

        path = tmp_path / "plan.json"
        path.write_text(json_module.dumps({"queries": ["q99"], "scale": "smoke"}))
        code = main(["run-plan", str(path)])
        err = self._assert_one_line_error(capsys, code)
        assert "q99" in err

    def test_sweep_rejects_non_sweep_plan(self, tmp_path, capsys):
        import json as json_module

        path = tmp_path / "plan.json"
        path.write_text(
            json_module.dumps({"queries": ["q1"], "scale": "smoke"})
        )
        code = main(["sweep", str(path)])
        err = self._assert_one_line_error(capsys, code)
        assert "CampaignPlan" in err and "sweep" in err

    def test_stale_cache_snapshot_is_one_line(self, tmp_path, capsys):
        import json as json_module
        import pickle

        snapshot = tmp_path / "stale.pkl"
        snapshot.write_bytes(
            pickle.dumps(
                {
                    "format": "repro.service.TuningCacheSet",
                    "version": 999,
                    "sections": {},
                }
            )
        )
        path = tmp_path / "plan.json"
        path.write_text(
            json_module.dumps(
                {
                    "queries": ["q1"],
                    "rates": [3],
                    "backend": "sequential",
                    "scale": "smoke",
                    "cache_path": str(snapshot),
                }
            )
        )
        code = main(["run-plan", str(path)])
        err = self._assert_one_line_error(capsys, code)
        assert "999" in err and "version" in err

    def test_tune_bad_rates_exit_code(self, capsys):
        code = main(["tune", "--model", "m", "--query", "q1", "--rates", "3,,7"])
        self._assert_one_line_error(capsys, code)


class TestSweepCommand:
    def _sweep_file(self, tmp_path):
        import json as json_module

        path = tmp_path / "sweep.json"
        path.write_text(
            json_module.dumps(
                {
                    "kind": "sweep",
                    "queries": ["q1", "q5"],
                    "tuners": ["streamtune", "ds2"],
                    "rate_traces": [[3, 7]],
                    "backend": "sequential",
                    "scale": "smoke",
                    "seed": 41,
                }
            )
        )
        return path

    def test_sweep_end_to_end_with_events(
        self, tiny_pretrained, tmp_path, capsys, monkeypatch
    ):
        import json as json_module

        from repro.experiments import context

        monkeypatch.setattr(
            context, "pretrained_model", lambda engine, scale: tiny_pretrained
        )
        record = tmp_path / "events.jsonl"
        code = main([
            "sweep", str(self._sweep_file(tmp_path)),
            "--follow", "--record", str(record),
        ])
        assert code == 0
        captured = capsys.readouterr()
        # summary table: one row per (scenario, query)
        assert "streamtune@flink/x3-7" in captured.out
        assert "ds2@flink/x3-7" in captured.out
        assert "recorded" in captured.out
        # --follow progress lines went to stderr
        assert "nexmark_q1_flink" in captured.err
        # the JSONL log replays the run: one Started/Finished pair per
        # campaign per scenario, steps monotonic per campaign
        events = [json_module.loads(line) for line in record.read_text().splitlines()]
        starts = [e for e in events if e["event"] == "CampaignStarted"]
        finishes = [e for e in events if e["event"] == "CampaignFinished"]
        assert len(starts) == len(finishes) == 4       # 2 scenarios x 2 queries
        assert {e["scenario"] for e in starts} == {
            "streamtune@flink/x3-7", "ds2@flink/x3-7"
        }
        assert events[-1]["event"] == "SweepFinished"
        for start in starts:
            steps = [
                e["step_index"] for e in events
                if e["event"] == "StepCompleted"
                and e["campaign"] == start["campaign"]
                and e["scenario"] == start["scenario"]
            ]
            assert steps == [0, 1]

    def test_run_plan_accepts_sweep_files(
        self, tiny_pretrained, tmp_path, capsys, monkeypatch
    ):
        from repro.experiments import context

        monkeypatch.setattr(
            context, "pretrained_model", lambda engine, scale: tiny_pretrained
        )
        assert main(["run-plan", str(self._sweep_file(tmp_path))]) == 0
        assert "sweep: 2 scenario(s)" in capsys.readouterr().out


class TestRunPlanStreaming:
    def test_follow_and_record_campaign(
        self, tiny_pretrained, tmp_path, capsys, monkeypatch
    ):
        import json as json_module

        from repro.experiments import context

        monkeypatch.setattr(
            context, "pretrained_model", lambda engine, scale: tiny_pretrained
        )
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            json_module.dumps(
                {
                    "queries": ["q1"],
                    "rates": [3, 7],
                    "backend": "sequential",
                    "scale": "smoke",
                    "seed": 41,
                }
            )
        )
        record = tmp_path / "events.jsonl"
        assert main([
            "run-plan", str(plan_path), "--follow", "--record", str(record),
        ]) == 0
        captured = capsys.readouterr()
        assert "step 1/2" in captured.err and "step 2/2" in captured.err
        events = [json_module.loads(line) for line in record.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "CampaignStarted"
        assert kinds[-1] == "CacheStats"
        assert kinds.count("CampaignFinished") == 1
