"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _resolve_query, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_history_args(self):
        args = build_parser().parse_args(
            ["history", "--output", "h.jsonl", "--records", "50"]
        )
        assert args.records == 50
        assert args.engine == "flink"

    def test_tune_args(self):
        args = build_parser().parse_args(
            ["tune", "--model", "m", "--query", "q5", "--rates", "2,9"]
        )
        assert args.rates == "2,9"
        assert args.layer == "svm"

    def test_tune_accepts_isotonic_layer(self):
        args = build_parser().parse_args(
            ["tune", "--model", "m", "--query", "q2", "--layer", "isotonic"]
        )
        assert args.layer == "isotonic"

    def test_tune_rejects_unknown_layer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["tune", "--model", "m", "--query", "q2", "--layer", "forest"]
            )

    def test_ablations_subcommand(self):
        args = build_parser().parse_args(["ablations", "--scale", "smoke"])
        assert args.scale == "smoke"
        assert args.func.__name__ == "_cmd_ablations"


class TestQueryResolution:
    def test_nexmark(self):
        assert _resolve_query("q5", "flink").name == "nexmark_q5_flink"

    def test_pqp(self):
        assert _resolve_query("2-way-join/3", "flink").name.startswith("pqp_2way")

    def test_unknown(self):
        with pytest.raises(KeyError):
            _resolve_query("4-way/0", "flink")


class TestEndToEnd:
    def test_history_pretrain_tune_pipeline(self, tmp_path, capsys):
        history_path = tmp_path / "history.jsonl"
        model_dir = tmp_path / "model"

        assert main([
            "history", "--output", str(history_path),
            "--records", "400", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote 400 records" in out

        assert main([
            "pretrain", "--history", str(history_path),
            "--output", str(model_dir), "--clusters", "2",
            "--epochs", "6", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "pre-trained 2 cluster encoder(s)" in out

        assert main([
            "tune", "--model", str(model_dir),
            "--query", "q1", "--rates", "3,8",
        ]) == 0
        out = capsys.readouterr().out
        assert "StreamTune tuning" in out
        assert "converged" in out
