"""Tests for the `repro` top-level DeprecationWarning import shims.

The contract (see ``repro.__getattr__``): every legacy name still
resolves from the top-level package, the resolved symbol is *identical*
to the canonical module's, the warning names the canonical home, and it
fires exactly once per process per name (the shim caches the resolved
value in the module globals).
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import _DEPRECATED_EXPORTS


def _unshim(name: str) -> None:
    """Drop the cached resolution so the lazy shim runs again."""
    repro.__dict__.pop(name, None)


@pytest.mark.parametrize(
    "name", ["StreamTuneTuner", "FlinkCluster", "nexmark_queries"]
)
def test_warning_fires_and_names_canonical_module(name):
    _unshim(name)
    module_name, _ = _DEPRECATED_EXPORTS[name]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        getattr(repro, name)
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    assert name in message and module_name in message
    assert "repro.api" in message                 # nudges to the front door


def test_symbol_identity_preserved():
    import importlib

    for name, (module_name, attribute) in _DEPRECATED_EXPORTS.items():
        _unshim(name)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shimmed = getattr(repro, name)
        canonical = getattr(importlib.import_module(module_name), attribute)
        assert shimmed is canonical, name


def test_warning_fires_once_per_name():
    _unshim("DS2Tuner")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        getattr(repro, "DS2Tuner")
        getattr(repro, "DS2Tuner")       # second access hits the cache
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1


def test_distinct_names_warn_independently():
    _unshim("OracleTuner")
    _unshim("ContTuneTuner")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        getattr(repro, "OracleTuner")
        getattr(repro, "ContTuneTuner")
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 2


def test_unknown_attribute_raises_attribute_error_without_warning():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with pytest.raises(AttributeError, match="no attribute 'Bogus'"):
            repro.Bogus
    assert not [w for w in caught if w.category is DeprecationWarning]


def test_dir_lists_every_legacy_name():
    listing = dir(repro)
    for name in _DEPRECATED_EXPORTS:
        assert name in listing


def test_all_covers_current_and_legacy_surface():
    assert "TuningSession" in repro.__all__
    assert "SweepPlan" in repro.__all__
    for name in _DEPRECATED_EXPORTS:
        assert name in repro.__all__
