"""Tests for the failpoint plane (``repro.faults`` plan + plane + sites).

Covers the frozen :class:`FaultPlan` config surface (validation,
dict/JSON/TOML round-trips, labels), the process-global
:class:`FaultPlane` trigger semantics (hit ordinals, ``every`` strides,
seeded probability, exhaustion), the effect dispatch of ``fire()``
(delay / error / crash-through-``hard_exit``), environment-variable
activation, and the sites compiled into the ledger writer, the spool
and the daemon client.
"""

from __future__ import annotations

import json
import urllib.error

import pytest

from repro.api.events import CampaignStarted, JsonlRecorder
from repro.distributed import Spool
from repro.faults import (
    ENV_FAULT_PLAN,
    FAULT_SITES,
    FaultError,
    FaultPlan,
    FaultRule,
    activate,
    deactivate,
    fire,
    load_fault_plan,
    trip,
)
from repro.faults import plane as plane_module


@pytest.fixture(autouse=True)
def clean_plane():
    """Every test starts and ends with no fault plane active."""
    deactivate()
    yield
    deactivate()


def rule(**overrides) -> FaultRule:
    settings = dict(site="worker.execute.crash", effect="error", hits=(1,))
    settings.update(overrides)
    return FaultRule(**settings)


class TestFaultRule:
    def test_unknown_site_is_rejected_eagerly(self):
        with pytest.raises(FaultError, match="unknown failpoint site"):
            rule(site="no.such.site")

    def test_exactly_one_trigger_is_required(self):
        with pytest.raises(FaultError, match="exactly one trigger"):
            FaultRule(site="worker.execute.crash", effect="error")
        with pytest.raises(FaultError, match="exactly one trigger"):
            rule(every=2)

    def test_trigger_validation(self):
        with pytest.raises(FaultError, match="hits entry"):
            rule(hits=(0,))
        with pytest.raises(FaultError, match="probability"):
            rule(hits=(), probability=1.5)
        with pytest.raises(FaultError, match="effect"):
            rule(effect="meltdown")
        with pytest.raises(FaultError, match="error"):
            rule(error="KeyboardInterrupt")
        with pytest.raises(FaultError, match="exit_code"):
            rule(effect="crash", exit_code=0)

    def test_round_trip_omits_defaults(self):
        original = rule(hits=(2, 5), error="TimeoutError", max_triggers=1)
        data = original.to_dict()
        assert "seconds" not in data and "exit_code" not in data
        assert FaultRule.from_dict(data) == original

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultError, match="understand"):
            FaultRule.from_dict({"site": "worker.execute.crash", "bogus": 1})

    def test_trigger_labels(self):
        assert rule(hits=(1, 3)).trigger_label() == "h1,3"
        assert rule(hits=(), every=2).trigger_label() == "e2"
        assert rule(hits=(), probability=0.5).trigger_label() == "p0.5"


class TestFaultPlan:
    def test_round_trip_json_and_toml(self, tmp_path):
        plan = FaultPlan(
            rules=[
                {"site": "spool.claim.race-delay", "effect": "delay",
                 "every": 3, "seconds": 0.01},
                {"site": "ledger.write.torn-tail", "effect": "torn",
                 "hits": [2], "exit_code": 41},
            ],
            seed=7,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

        json_path = tmp_path / "plan.json"
        json_path.write_text(json.dumps(plan.to_dict()), encoding="utf-8")
        assert load_fault_plan(json_path) == plan

        toml_path = tmp_path / "plan.toml"
        toml_path.write_text(
            'seed = 7\n'
            '[[rules]]\n'
            'site = "spool.claim.race-delay"\neffect = "delay"\n'
            'every = 3\nseconds = 0.01\n'
            '[[rules]]\n'
            'site = "ledger.write.torn-tail"\neffect = "torn"\n'
            'hits = [2]\nexit_code = 41\n',
            encoding="utf-8",
        )
        assert load_fault_plan(toml_path) == plan

    def test_load_names_a_missing_or_corrupt_file(self, tmp_path):
        with pytest.raises(FaultError, match="not found"):
            load_fault_plan(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(FaultError, match="bad.json"):
            load_fault_plan(bad)

    def test_label_is_compact_and_deterministic(self):
        assert FaultPlan().label() == "none"
        plan = FaultPlan(
            rules=[{"site": "worker.execute.crash", "effect": "crash",
                    "hits": [2]}],
            seed=3,
        )
        assert plan.label() == "s3:worker.execute.crash!crash@h2"

    def test_every_site_is_documented(self):
        for site, description in FAULT_SITES.items():
            assert description, f"site {site} lacks a description"


class TestFaultPlane:
    def test_hits_trigger_on_exact_ordinals(self):
        activate(FaultPlan(rules=[rule(hits=(2, 4))]))
        fired = []
        for _ in range(5):
            fired.append(trip("worker.execute.crash") is not None)
        assert fired == [False, True, False, True, False]

    def test_every_stride_and_exhaustion(self):
        activate(FaultPlan(
            rules=[rule(hits=(), every=2, max_triggers=2)]
        ))
        fired = [
            trip("worker.execute.crash") is not None for _ in range(8)
        ]
        # Fires on hits 2 and 4, then the budget is spent.
        assert fired == [False, True, False, True, False, False, False, False]

    def test_probability_is_seeded_and_replayable(self):
        def pattern():
            deactivate()
            activate(FaultPlan(
                rules=[rule(hits=(), probability=0.5)], seed=17
            ))
            return [
                trip("worker.execute.crash") is not None for _ in range(32)
            ]

        first, second = pattern(), pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_unknown_site_raises_under_an_active_plane(self):
        activate(FaultPlan())
        with pytest.raises(FaultError, match="unknown failpoint site"):
            fire("definitely.not.a.site")

    def test_fire_is_a_silent_noop_without_a_plane(self):
        # No plane, no site validation: the fast path must stay a dict
        # lookup and a None check.
        fire("worker.execute.crash")

    def test_error_effect_raises_the_named_error(self):
        activate(FaultPlan(rules=[
            rule(hits=(1,), error="TimeoutError"),
            rule(site="daemon.client.conn-drop", hits=(1,), error="URLError"),
        ]))
        with pytest.raises(TimeoutError):
            fire("worker.execute.crash")
        with pytest.raises(urllib.error.URLError):
            fire("daemon.client.conn-drop")

    def test_delay_effect_sleeps(self, monkeypatch):
        slept = []
        monkeypatch.setattr(plane_module.time, "sleep", slept.append)
        activate(FaultPlan(rules=[
            rule(effect="delay", hits=(1,), seconds=0.25)
        ]))
        fire("worker.execute.crash")
        assert slept == [0.25]

    def test_crash_effect_routes_through_hard_exit(self, monkeypatch):
        codes = []
        monkeypatch.setattr(plane_module, "hard_exit", codes.append)
        activate(FaultPlan(rules=[
            rule(effect="crash", hits=(1,), exit_code=41)
        ]))
        fire("worker.execute.crash")
        assert codes == [41]

    def test_snapshot_reports_hits_and_firings(self):
        activate(FaultPlan(rules=[rule(hits=(2,))]))
        for _ in range(3):
            trip("worker.execute.crash")
        snap = plane_module.active_plane().snapshot()
        assert snap["hits"]["worker.execute.crash"] == 3
        assert snap["fired"]["worker.execute.crash"] == 1

    def test_env_var_activates_lazily(self, tmp_path, monkeypatch):
        plan_path = tmp_path / "env-plan.json"
        plan_path.write_text(json.dumps(FaultPlan(
            rules=[rule(hits=(1,), error="OSError")]
        ).to_dict()), encoding="utf-8")
        monkeypatch.setenv(ENV_FAULT_PLAN, str(plan_path))
        plane_module._reset_for_env()
        with pytest.raises(OSError):
            fire("worker.execute.crash")
        # A second fire does not re-trigger (hits=[1] is spent).
        fire("worker.execute.crash")


class TestWiredSites:
    def test_torn_tail_truncates_the_ledger_and_dies(self, tmp_path, monkeypatch):
        import repro.api.events as events_module

        class Died(BaseException):
            def __init__(self, code):
                self.code = code

        def fake_exit(code):
            raise Died(code)

        # hard_exit never returns in production; raising here models the
        # process vanishing mid-write without killing the test runner.
        monkeypatch.setattr(events_module, "hard_exit", fake_exit)
        activate(FaultPlan(rules=[FaultRule(
            site="ledger.write.torn-tail", effect="torn", hits=(2,),
            exit_code=43,
        )]))
        ledger = tmp_path / "ledger.jsonl"
        recorder = JsonlRecorder(ledger, fsync=False)
        event = CampaignStarted(campaign="q1", index=0, backend="t", n_steps=1)
        recorder(event)          # hit 1: clean line
        with pytest.raises(Died) as death:
            recorder(event)      # hit 2: half a line, then death
        assert death.value.code == 43
        recorder.close()
        lines = ledger.read_text(encoding="utf-8").splitlines()
        full_line = json.dumps(event.to_dict(), sort_keys=True)
        assert lines[0] == full_line
        # The torn tail is a strict prefix of a real line — exactly what
        # a crash mid-write leaves behind.
        assert lines[-1] != full_line and full_line.startswith(lines[-1])

    def test_spool_heartbeat_stall_is_injectable(self, tmp_path):
        from tests.test_distributed import make_cells

        spool = Spool(tmp_path / "spool")
        (cell,) = make_cells(1)
        spool.seed([cell])
        assert spool.claim(cell.id, "w1")
        activate(FaultPlan(rules=[FaultRule(
            site="spool.heartbeat.stall", effect="error", hits=(1,),
        )]))
        with pytest.raises(OSError):
            spool.heartbeat(cell.id, "w1")
        spool.heartbeat(cell.id, "w1")     # the stall was transient

    def test_daemon_client_conn_drop_is_retried(self, monkeypatch):
        import random

        from repro.daemon.client import DaemonClient

        class FakeResponse:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def read(self):
                return b'{"pong": true}'

        calls = []

        def fake_urlopen(request, timeout=None):
            calls.append(request.full_url)
            return FakeResponse()

        monkeypatch.setattr(
            "urllib.request.urlopen", fake_urlopen
        )
        activate(FaultPlan(rules=[FaultRule(
            site="daemon.client.conn-drop", effect="error", hits=(1,),
            error="URLError",
        )]))
        client = DaemonClient(
            "http://127.0.0.1:9", retries=3, retry_rng=random.Random(1),
        )
        monkeypatch.setattr(
            "repro.utils.retry.time.sleep", lambda _: None
        )
        assert client._request("GET", "/ping") == {"pong": True}
        # The injected drop consumed attempt 1; the retry reached the
        # (faked) socket exactly once.
        assert len(calls) == 1
