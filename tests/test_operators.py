"""Unit tests for the operator taxonomy (Table I) and spec validation."""

from __future__ import annotations

import pytest

from repro.dataflow.operators import (
    AggregateFunction,
    DataType,
    KeyClass,
    OperatorSpec,
    OperatorType,
    WindowPolicy,
    WindowType,
    sink,
    source,
)


def make_spec(**overrides) -> OperatorSpec:
    base = dict(name="op", op_type=OperatorType.FILTER)
    base.update(overrides)
    return OperatorSpec(**base)


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            make_spec(name="")

    def test_negative_selectivity_rejected(self):
        with pytest.raises(ValueError, match="selectivity"):
            make_spec(selectivity=-0.1)

    def test_zero_cost_factor_rejected(self):
        with pytest.raises(ValueError, match="cost_factor"):
            make_spec(cost_factor=0.0)

    def test_window_requires_length(self):
        with pytest.raises(ValueError, match="window_length"):
            make_spec(
                op_type=OperatorType.WINDOW_AGGREGATE,
                window_type=WindowType.TUMBLING,
                window_length=0.0,
                aggregate_function=AggregateFunction.SUM,
            )

    def test_sliding_requires_slide(self):
        with pytest.raises(ValueError, match="sliding_length"):
            make_spec(
                op_type=OperatorType.WINDOW_AGGREGATE,
                window_type=WindowType.SLIDING,
                window_length=10.0,
                sliding_length=0.0,
                aggregate_function=AggregateFunction.SUM,
            )

    def test_aggregate_requires_function(self):
        with pytest.raises(ValueError, match="aggregate_function"):
            make_spec(op_type=OperatorType.AGGREGATE)

    def test_valid_window_aggregate(self):
        spec = make_spec(
            op_type=OperatorType.WINDOW_AGGREGATE,
            window_type=WindowType.SLIDING,
            window_policy=WindowPolicy.TIME,
            window_length=60.0,
            sliding_length=10.0,
            aggregate_function=AggregateFunction.AVG,
        )
        assert spec.is_windowed
        assert spec.is_stateful


class TestProperties:
    def test_source_flags(self):
        spec = source("s", DataType.BID)
        assert spec.is_source and not spec.is_sink
        assert not spec.is_stateful

    def test_sink_flags(self):
        spec = sink("k")
        assert spec.is_sink and not spec.is_source

    @pytest.mark.parametrize(
        "op_type,stateful",
        [
            (OperatorType.MAP, False),
            (OperatorType.FLAT_MAP, False),
            (OperatorType.FILTER, False),
            (OperatorType.JOIN, True),
            (OperatorType.WINDOW_JOIN, True),
            (OperatorType.AGGREGATE, True),
            (OperatorType.WINDOW_AGGREGATE, True),
        ],
    )
    def test_statefulness_by_type(self, op_type, stateful):
        kwargs = {}
        if op_type in (OperatorType.AGGREGATE, OperatorType.WINDOW_AGGREGATE):
            kwargs["aggregate_function"] = AggregateFunction.SUM
        if op_type in (OperatorType.WINDOW_AGGREGATE, OperatorType.WINDOW_JOIN):
            kwargs["window_type"] = WindowType.TUMBLING
            kwargs["window_length"] = 10.0
        assert make_spec(op_type=op_type, **kwargs).is_stateful is stateful

    def test_structural_label_is_type(self):
        assert make_spec(op_type=OperatorType.JOIN, join_key_class=KeyClass.INT).structural_label() == "join"

    def test_renamed_preserves_everything_else(self):
        spec = make_spec(selectivity=0.3, cost_factor=2.0)
        renamed = spec.renamed("other")
        assert renamed.name == "other"
        assert renamed.selectivity == spec.selectivity
        assert renamed.cost_factor == spec.cost_factor


class TestSerde:
    def test_round_trip_simple(self):
        spec = make_spec(selectivity=0.7, cost_factor=3.0)
        assert OperatorSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_windowed(self):
        spec = make_spec(
            op_type=OperatorType.WINDOW_JOIN,
            window_type=WindowType.SLIDING,
            window_policy=WindowPolicy.COUNT,
            window_length=120.0,
            sliding_length=30.0,
            join_key_class=KeyClass.STRING,
            tuple_width_in=96.0,
            tuple_width_out=192.0,
            tuple_data_type=DataType.JOINED,
        )
        assert OperatorSpec.from_dict(spec.to_dict()) == spec

    def test_dict_uses_plain_values(self):
        data = make_spec().to_dict()
        assert data["op_type"] == "filter"
        assert isinstance(data["window_length"], float)

    def test_frozen(self):
        spec = make_spec()
        with pytest.raises(AttributeError):
            spec.selectivity = 0.9
