"""Unit tests for the extended-ablation harness (smoke-scale plumbing).

The heavy comparisons live in ``benchmarks/bench_ablations.py``; these
tests pin the harness mechanics — splits, variant wiring, row shapes —
on a miniature footprint so the suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.history import ExecutionRecord
from repro.experiments import ablations
from repro.experiments.scale import SMOKE


def test_holdout_split_fractions():
    records = list(range(10))
    train, holdout = ablations._holdout_split(records, fraction=0.8)
    assert train == list(range(8))
    assert holdout == [8, 9]


def test_holdout_split_never_empty_train():
    records = [1]
    train, holdout = ablations._holdout_split(records, fraction=0.1)
    assert train == [1]
    assert holdout == []


def test_ablation_constants_cover_all_scales():
    for table in (
        ablations.ABLATION_HISTORY,
        ablations.ABLATION_EPOCHS,
        ablations.ABLATION_MULTIPLIERS,
    ):
        assert set(table) == {"smoke", "default", "paper"}


def test_thresholds_are_sorted_and_bracket_default():
    assert list(ablations.THRESHOLDS) == sorted(ablations.THRESHOLDS)
    assert ablations.THRESHOLDS[0] < 0.35 <= ablations.THRESHOLDS[-1]


def test_contains_heldout_detects_heldout_kind(tiny_history):
    flagged = [r for r in tiny_history if ablations._contains_heldout(r)]
    unflagged = [r for r in tiny_history if not ablations._contains_heldout(r)]
    assert flagged, "corpus must contain held-out-kind queries (e.g. Q3)"
    assert unflagged, "corpus must contain held-out-free queries (Q1/Q2/...)"
    for record in flagged:
        assert any(
            spec.op_type is ablations.HELDOUT_TYPE for spec in record.flow
        )


def test_heldout_scores_only_score_heldout_kind(tiny_pretrained, tiny_history):
    heldout = [r for r in tiny_history if ablations._contains_heldout(r)][:5]
    scores, labels = ablations._heldout_scores(tiny_pretrained, heldout)
    assert len(scores) == len(labels)
    assert np.all((scores >= 0.0) & (scores <= 1.0))
    assert set(np.unique(labels)) <= {0.0, 1.0}


def test_holdout_accuracy_bounds(tiny_pretrained, tiny_history):
    accuracy = ablations._holdout_accuracy(tiny_pretrained, tiny_history[:10])
    assert 0.0 <= accuracy <= 1.0


def test_holdout_accuracy_empty_records(tiny_pretrained):
    assert ablations._holdout_accuracy(tiny_pretrained, []) == 0.0


def test_encoder_ablation_raises_without_heldout_records(monkeypatch):
    monkeypatch.setattr(
        ablations, "_ablation_history", lambda scale: _window_join_free_history()
    )
    monkeypatch.setattr(ablations.context, "corpus", lambda engine_name: [])
    with pytest.raises(ValueError, match="no held-out-kind"):
        ablations.run_encoder_ablation(SMOKE)


def test_ranking_auc_basics():
    import numpy as np

    scores = np.array([0.9, 0.8, 0.2, 0.1])
    labels = np.array([1, 1, 0, 0])
    assert ablations.ranking_auc(scores, labels) == 1.0
    assert ablations.ranking_auc(scores, labels[::-1]) == 0.0
    assert ablations.ranking_auc(
        np.array([0.5, 0.5]), np.array([1, 0])
    ) == 0.5
    assert np.isnan(ablations.ranking_auc(scores, np.zeros(4)))


def _window_join_free_history() -> list[ExecutionRecord]:
    from repro.dataflow.graph import LogicalDataflow
    from repro.dataflow.operators import OperatorSpec, OperatorType

    flow = LogicalDataflow("plain")
    flow.chain(
        OperatorSpec(name="src", op_type=OperatorType.SOURCE),
        OperatorSpec(name="map", op_type=OperatorType.MAP),
        OperatorSpec(name="sink", op_type=OperatorType.SINK),
    )
    flow.validate()
    record = ExecutionRecord(
        flow=flow,
        source_rates={"src": 100.0},
        parallelisms={"src": 1, "map": 1, "sink": 1},
        labels={"src": 0, "map": 0, "sink": 0},
        engine_name="flink",
        has_backpressure=False,
        job_latency_seconds=0.1,
    )
    return [record]
