"""The repro.perf benchmark subsystem: registry, reports, regression gate.

The heavy fixture construction (smoke-scale pre-training) is exercised by
the perf-smoke CI job, not here — these tests pin the harness semantics:
benchmark/ratio registry consistency, timing mechanics on synthetic
benchmarks, report round-trips, and the gate's regression arithmetic.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf import (
    BENCHMARKS,
    RATIO_DEFINITIONS,
    Benchmark,
    PerfError,
    benchmark_names,
    build_report,
    compare_reports,
    compute_ratios,
    load_report,
    time_benchmark,
    write_report,
)
class TestRegistry:
    def test_names_are_unique(self):
        names = benchmark_names()
        assert len(set(names)) == len(names)

    def test_every_ratio_references_registered_benchmarks(self):
        names = set(benchmark_names())
        for ratio, (slow, fast) in RATIO_DEFINITIONS.items():
            assert slow in names, (ratio, slow)
            assert fast in names, (ratio, fast)
            assert slow != fast, ratio

    def test_every_hot_path_has_a_ratio(self):
        # Each optimised hot path ships with the measurement backing it.
        ratio_benches = {name for pair in RATIO_DEFINITIONS.values() for name in pair}
        for bench in BENCHMARKS:
            assert bench.name in ratio_benches, bench.name

    def test_repeats_are_positive(self):
        for bench in BENCHMARKS:
            assert bench.repeats >= 1
            assert bench.smoke_repeats >= 1


class TestTiming:
    def _counting_benchmark(self, calls):
        return Benchmark(
            name="probe",
            hot_path="test",
            description="records its invocations",
            run=lambda fixtures: calls.append(fixtures),
            repeats=4,
            smoke_repeats=2,
        )

    def test_time_benchmark_repeats_and_reports(self):
        calls: list = []
        result = time_benchmark(self._counting_benchmark(calls), "fx", smoke=False)
        assert len(calls) == 4
        assert calls == ["fx"] * 4
        assert result["repeats"] == 4
        assert 0 <= result["min_seconds"] <= result["seconds"] <= result["max_seconds"]
        assert result["hot_path"] == "test"

    def test_smoke_uses_smoke_repeats(self):
        calls: list = []
        result = time_benchmark(self._counting_benchmark(calls), None, smoke=True)
        assert len(calls) == 2
        assert result["repeats"] == 2

    def test_compute_ratios_skips_incomplete_pairs(self):
        results = {
            "ged_assign_exhaustive": {"seconds": 2.0},
            "ged_assign_pruned": {"seconds": 0.5},
            "svm_fit_duplicated": {"seconds": 1.0},   # partner missing
        }
        ratios = compute_ratios(results)
        assert ratios == {"ged_assign_speedup": 4.0}


def _report(ratios, benchmarks=None, smoke=True):
    return build_report(benchmarks or {}, ratios, smoke=smoke)


class TestReportRoundTrip:
    def test_write_and_load(self, tmp_path):
        report = _report({"service_speedup": 3.0})
        path = write_report(report, tmp_path / "bench.json")
        loaded = load_report(path)
        assert loaded["ratios"] == {"service_speedup": 3.0}
        assert loaded["format"] == "repro.perf"
        assert loaded["bench"] == "PR8"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(PerfError, match="does not exist"):
            load_report(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PerfError, match="not valid JSON"):
            load_report(path)

    def test_load_foreign_json(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(PerfError, match="not a repro.perf report"):
            load_report(path)


class TestRegressionGate:
    def test_pass_when_ratios_hold(self):
        baseline = _report({"a_speedup": 4.0})
        current = _report({"a_speedup": 3.9})
        assert compare_reports(current, baseline) == []

    def test_improvements_always_pass(self):
        baseline = _report({"a_speedup": 4.0})
        current = _report({"a_speedup": 40.0})
        assert compare_reports(current, baseline) == []

    def test_fails_beyond_tolerance(self):
        baseline = _report({"a_speedup": 4.0})
        current = _report({"a_speedup": 2.9})     # floor at 25% is 3.0
        violations = compare_reports(current, baseline)
        assert len(violations) == 1
        assert "a_speedup" in violations[0]
        assert "regressed" in violations[0]

    def test_tolerance_is_configurable(self):
        baseline = _report({"a_speedup": 4.0})
        current = _report({"a_speedup": 2.9})
        assert compare_reports(current, baseline, tolerance=0.5) == []

    def test_missing_ratio_is_a_violation(self):
        baseline = _report({"a_speedup": 4.0})
        current = _report({})
        violations = compare_reports(current, baseline)
        assert len(violations) == 1
        assert "missing" in violations[0]

    def test_absolute_gate_is_opt_in(self):
        baseline = _report({}, benchmarks={"b": {"seconds": 1.0}})
        current = _report({}, benchmarks={"b": {"seconds": 10.0}})
        assert compare_reports(current, baseline) == []
        violations = compare_reports(current, baseline, gate_absolute=True)
        assert len(violations) == 1
        assert "benchmark b regressed" in violations[0]

    def test_bad_tolerance_rejected(self):
        report = _report({})
        with pytest.raises(PerfError, match="tolerance"):
            compare_reports(report, report, tolerance=1.5)


class TestPerfCli:
    def test_list_exits_zero_and_names_every_benchmark(self, capsys):
        assert main(["perf", "--list"]) == 0
        out = capsys.readouterr().out
        for name in benchmark_names():
            assert name in out

    def test_only_with_update_baseline_exits_two(self, capsys):
        # A partial baseline would hollow out the gate for every
        # unselected ratio; the combination is refused outright.
        code = main([
            "perf", "--smoke", "--only", "svm_fit_weighted", "--update-baseline",
        ])
        assert code == 2
        assert "--only" in capsys.readouterr().err

    def test_unknown_only_exits_two(self, capsys):
        # Validated before fixtures are built: instant, one line.
        code = main(["perf", "--smoke", "--only", "no_such_bench"])
        assert code == 2
        err = capsys.readouterr().err
        assert "no_such_bench" in err
        assert err.count("\n") == 1

    def test_missing_explicit_baseline_exits_two(self, tmp_path, capsys):
        # Validated before any fixture construction: the failure is
        # immediate and one line, never a traceback after a full timing run.
        code = main([
            "perf", "--smoke", "--baseline", str(tmp_path / "missing.json"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "missing.json" in err
        assert err.count("\n") == 1

    def test_bad_tolerance_exits_two(self, capsys):
        code = main(["perf", "--smoke", "--tolerance", "1.5"])
        assert code == 2
        assert "tolerance" in capsys.readouterr().err

    def test_smoke_full_baseline_mismatch_exits_two(self, tmp_path, capsys):
        # Smoke and full fixtures are different workloads: gating one
        # against the other's baseline is refused before any timing runs.
        baseline = write_report(
            _report({"service_speedup": 3.0}, smoke=False),
            tmp_path / "full_baseline.json",
        )
        code = main(["perf", "--smoke", "--baseline", str(baseline)])
        assert code == 2
        err = capsys.readouterr().err
        assert "full baseline" in err and "smoke run" in err
