"""Unit tests for the logical dataflow DAG."""

from __future__ import annotations

import pytest

from repro.dataflow.graph import DataflowError, LogicalDataflow
from repro.dataflow.operators import OperatorSpec, OperatorType
from tests.conftest import build_diamond_flow, build_linear_flow


def op(name: str, kind: OperatorType = OperatorType.MAP) -> OperatorSpec:
    return OperatorSpec(name=name, op_type=kind)


class TestConstruction:
    def test_duplicate_operator_rejected(self):
        flow = LogicalDataflow("f")
        flow.add_operator(op("a"))
        with pytest.raises(DataflowError, match="duplicate"):
            flow.add_operator(op("a"))

    def test_unknown_edge_endpoint_rejected(self):
        flow = LogicalDataflow("f")
        flow.add_operator(op("a"))
        with pytest.raises(DataflowError, match="unknown"):
            flow.connect("a", "b")

    def test_self_loop_rejected(self):
        flow = LogicalDataflow("f")
        flow.add_operator(op("a"))
        with pytest.raises(DataflowError, match="self-loop"):
            flow.connect("a", "a")

    def test_duplicate_edge_rejected(self):
        flow = LogicalDataflow("f")
        flow.add_operator(op("a"))
        flow.add_operator(op("b"))
        flow.connect("a", "b")
        with pytest.raises(DataflowError, match="duplicate edge"):
            flow.connect("a", "b")

    def test_empty_name_rejected(self):
        with pytest.raises(DataflowError):
            LogicalDataflow("")

    def test_chain_builds_pipeline(self):
        flow = LogicalDataflow("f")
        flow.chain(
            op("s", OperatorType.SOURCE), op("m"), op("k", OperatorType.SINK)
        )
        assert flow.edges == [("s", "m"), ("m", "k")]


class TestTraversal:
    def test_topological_order_respects_edges(self, diamond_flow):
        order = diamond_flow.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for u, v in diamond_flow.edges:
            assert position[u] < position[v]

    def test_cycle_detected(self):
        flow = LogicalDataflow("f")
        flow.add_operator(op("a", OperatorType.SOURCE))
        flow.add_operator(op("b"))
        flow.add_operator(op("c"))
        flow.connect("a", "b")
        flow.connect("b", "c")
        flow._succ["c"].append("b")   # force a cycle past the guard
        flow._pred["b"].append("c")
        with pytest.raises(DataflowError, match="cycle"):
            flow.topological_order()

    def test_ancestors_and_descendants(self, diamond_flow):
        assert diamond_flow.ancestors("join") == {"src", "left", "right"}
        assert diamond_flow.descendants("src") == {"left", "right", "join", "sink"}
        assert diamond_flow.ancestors("src") == set()
        assert diamond_flow.descendants("sink") == set()

    def test_upstream_downstream(self, diamond_flow):
        assert set(diamond_flow.upstream("join")) == {"left", "right"}
        assert diamond_flow.downstream("src") == ["left", "right"]

    def test_first_level_downstream(self, diamond_flow):
        assert set(diamond_flow.first_level_downstream()) == {"left", "right"}

    def test_sources_and_sinks(self, diamond_flow):
        assert diamond_flow.sources() == ["src"]
        assert diamond_flow.sinks() == ["sink"]


class TestValidation:
    def test_empty_flow_invalid(self):
        with pytest.raises(DataflowError, match="empty"):
            LogicalDataflow("f").validate()

    def test_disconnected_flow_invalid(self):
        flow = LogicalDataflow("f")
        flow.add_operator(op("s", OperatorType.SOURCE))
        flow.add_operator(op("island"))
        with pytest.raises(DataflowError, match="connected"):
            flow.validate()

    def test_no_source_invalid(self):
        flow = LogicalDataflow("f")
        flow.add_operator(op("a"))
        flow.add_operator(op("b"))
        flow.connect("a", "b")
        with pytest.raises(DataflowError, match="source"):
            flow.validate()

    def test_source_with_upstream_invalid(self):
        flow = LogicalDataflow("f")
        flow.add_operator(op("s1", OperatorType.SOURCE))
        flow.add_operator(op("s2", OperatorType.SOURCE))
        flow.connect("s1", "s2")
        with pytest.raises(DataflowError, match="upstream"):
            flow.validate()

    def test_sink_with_downstream_invalid(self):
        flow = LogicalDataflow("f")
        flow.add_operator(op("s", OperatorType.SOURCE))
        flow.add_operator(op("k", OperatorType.SINK))
        flow.add_operator(op("m"))
        flow.connect("s", "k")
        flow.connect("k", "m")
        with pytest.raises(DataflowError, match="downstream"):
            flow.validate()

    def test_valid_flow_passes(self, linear_flow, diamond_flow, window_flow):
        linear_flow.validate()
        diamond_flow.validate()
        window_flow.validate()


class TestStructure:
    def test_signature_identical_for_renamed_copy(self):
        a = build_linear_flow("one")
        b = build_linear_flow("two")
        assert a.structural_signature() == b.structural_signature()

    def test_signature_distinguishes_structures(self):
        assert (
            build_linear_flow().structural_signature()
            != build_diamond_flow().structural_signature()
        )

    def test_copy_is_equal_but_independent(self, diamond_flow):
        clone = diamond_flow.copy("clone")
        assert clone.structural_signature() == diamond_flow.structural_signature()
        clone.add_operator(op("extra"))
        assert "extra" not in diamond_flow

    def test_to_networkx(self, diamond_flow):
        graph = diamond_flow.to_networkx()
        assert graph.number_of_nodes() == len(diamond_flow)
        assert graph.number_of_edges() == diamond_flow.n_edges
        assert graph.nodes["join"]["label"] == "join"

    def test_serde_round_trip(self, diamond_flow):
        restored = LogicalDataflow.from_dict(diamond_flow.to_dict())
        assert restored.structural_signature() == diamond_flow.structural_signature()
        assert restored.operator("join").selectivity == 0.5

    def test_from_specs_validates(self):
        with pytest.raises(DataflowError):
            LogicalDataflow.from_specs("f", [op("a")], [])

    def test_len_contains_iter(self, linear_flow):
        assert len(linear_flow) == 3
        assert "filter" in linear_flow
        assert {s.name for s in linear_flow} == {"src", "filter", "sink"}
