"""Determinism regressions: same seed => identical tuning trajectories.

Covers the plain tuner, the deduplicated/warm-started service fitting
path, and the concurrent service (per-campaign seeding must make results
independent of worker interleaving and dispatch order).
"""

from __future__ import annotations

import pytest

from repro.core.tuner import StreamTuneTuner
from repro.engines import FlinkCluster
from repro.service import CampaignSpec, TuningService
from repro.workloads import nexmark_query


def _step_trace(result):
    """Everything that must reproduce (timings legitimately vary)."""
    return [
        (step.parallelisms, step.reconfigured, step.backpressure_after)
        for step in result.steps
    ]


def _run_once(pretrained, seed: int, fit_dedup: bool):
    query = nexmark_query("q5", "flink")
    engine = FlinkCluster(seed=seed)
    tuner = StreamTuneTuner(engine, pretrained, seed=seed, fit_dedup=fit_dedup)
    tuner.prepare(query)
    deployment = engine.deploy(
        query.flow, dict.fromkeys(query.flow.operator_names, 1), query.rates_at(3)
    )
    results = [tuner.tune(deployment, query.rates_at(m)) for m in (3, 7, 4)]
    engine.stop(deployment)
    return [_step_trace(result) for result in results]


@pytest.mark.parametrize("fit_dedup", [False, True])
def test_same_seed_reproduces_step_sequences(tiny_pretrained, fit_dedup):
    first = _run_once(tiny_pretrained, seed=123, fit_dedup=fit_dedup)
    second = _run_once(tiny_pretrained, seed=123, fit_dedup=fit_dedup)
    assert first == second


def test_different_engine_seeds_diverge_eventually(tiny_pretrained):
    # Sanity check that the trace actually depends on the seed (otherwise
    # the reproducibility assertion above would be vacuous).
    first = _run_once(tiny_pretrained, seed=123, fit_dedup=False)
    second = _run_once(tiny_pretrained, seed=321, fit_dedup=False)
    assert first != second


class TestServiceDeterminism:
    def _specs(self, multipliers=(3, 7)):
        return [
            CampaignSpec(
                query=nexmark_query(name, "flink"),
                multipliers=multipliers,
                engine_seed=11,
                seed=23,
            )
            for name in ("q1", "q2", "q5")
        ]

    def _traces(self, outcomes):
        return [
            [_step_trace(process) for process in outcome.result.processes]
            for outcome in outcomes
        ]

    def test_concurrent_identical_to_sequential(self, tiny_pretrained):
        sequential = TuningService(tiny_pretrained, backend="sequential").run(
            self._specs()
        )
        threaded = TuningService(tiny_pretrained, backend="thread", max_workers=3).run(
            self._specs()
        )
        assert self._traces(threaded) == self._traces(sequential)

    def test_repeat_concurrent_runs_identical(self, tiny_pretrained):
        service = TuningService(tiny_pretrained, backend="thread", max_workers=2)
        first = service.run(self._specs())
        second = service.run(self._specs())
        assert self._traces(first) == self._traces(second)

    def test_dispatch_order_does_not_change_results(self, tiny_pretrained):
        prioritized = TuningService(
            tiny_pretrained, backend="thread", max_workers=2,
            prioritize_backpressure=True,
        ).run(self._specs())
        fifo = TuningService(
            tiny_pretrained, backend="thread", max_workers=2,
            prioritize_backpressure=False,
        ).run(self._specs())
        assert self._traces(prioritized) == self._traces(fifo)
