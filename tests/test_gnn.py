"""Tests for the numpy GNN: layers, message passing, model, training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.data import GraphSample, build_sample
from repro.gnn.layers import Linear, Parameter, ReLU, glorot
from repro.gnn.loss import bce_with_logits, sigmoid
from repro.gnn.model import BottleneckGNN, EncoderConfig
from repro.gnn.mpnn import FuseLayer, MessagePassingLayer, normalized_adjacency
from repro.gnn.optim import Adam
from repro.gnn.train import evaluate_accuracy, train_bottleneck_gnn
from repro.dataflow.features import FeatureEncoder
from repro.utils.rng import seeded_rng
from tests.conftest import build_diamond_flow


def toy_sample(seed=0, n=6, d=10, labels=(1, 0, -1, 1, 0, 1)) -> GraphSample:
    rng = np.random.default_rng(seed)
    edges = [(0, 1), (1, 2), (2, 3), (1, 4), (4, 5)]
    agg_in, agg_out = normalized_adjacency(n, edges)
    label_array = np.array(labels)
    return GraphSample(
        name="toy",
        node_names=[str(i) for i in range(n)],
        features=rng.normal(size=(n, d)),
        agg_in=agg_in,
        agg_out=agg_out,
        parallelism=rng.uniform(0, 1, size=n),
        labels=label_array,
        mask=label_array >= 0,
    )


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(seeded_rng(0), 4, 3)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)
        grad_in = layer.backward(np.ones((5, 3)))
        assert grad_in.shape == (5, 4)

    def test_linear_gradient_numeric(self):
        rng = seeded_rng(1)
        layer = Linear(rng, 3, 2)
        x = rng.normal(size=(4, 3))

        def loss():
            return float((layer.forward(x) ** 2).sum())

        base = layer.forward(x)
        layer.backward(2 * base)
        eps = 1e-6
        w = layer.weight.value
        orig = w[0, 0]
        w[0, 0] = orig + eps
        up = loss()
        w[0, 0] = orig - eps
        down = loss()
        w[0, 0] = orig
        assert layer.weight.grad[0, 0] == pytest.approx((up - down) / (2 * eps), rel=1e-4)

    def test_relu_masks_negatives(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 2.0]])
        grad = relu.backward(np.array([[5.0, 5.0]]))
        assert np.array_equal(grad, [[0.0, 5.0]])

    def test_backward_before_forward_fails(self):
        with pytest.raises(AssertionError):
            Linear(seeded_rng(0), 2, 2).backward(np.ones((1, 2)))

    def test_glorot_bounds(self):
        values = glorot(seeded_rng(0), 100, 100)
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(values) <= limit)

    def test_parameter_zero_grad(self):
        p = Parameter(np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        assert np.array_equal(p.grad, np.zeros(3))


class TestAdjacency:
    def test_rows_normalised(self):
        agg_in, agg_out = normalized_adjacency(4, [(0, 2), (1, 2), (2, 3)])
        assert agg_in[2].sum() == pytest.approx(1.0)
        assert agg_in[2, 0] == pytest.approx(0.5)
        assert agg_out[2, 3] == pytest.approx(1.0)
        assert agg_in[0].sum() == 0.0   # no in-edges

    def test_mean_aggregation_semantics(self):
        agg_in, _ = normalized_adjacency(3, [(0, 2), (1, 2)])
        h = np.array([[2.0], [4.0], [0.0]])
        assert (agg_in @ h)[2, 0] == pytest.approx(3.0)


class TestLoss:
    def test_masked_nodes_ignored(self):
        logits = np.array([10.0, -10.0, 999.0])
        labels = np.array([1, 0, -1])
        mask = labels >= 0
        loss, grad = bce_with_logits(logits, labels, mask)
        assert loss < 1e-3
        assert grad[2] == 0.0

    def test_empty_mask_zero(self):
        loss, grad = bce_with_logits(np.zeros(3), np.full(3, -1), np.zeros(3, bool))
        assert loss == 0.0
        assert np.array_equal(grad, np.zeros(3))

    def test_pos_weight_scales_positive_gradient(self):
        logits = np.zeros(2)
        labels = np.array([1, 0])
        mask = np.ones(2, bool)
        _, grad_plain = bce_with_logits(logits, labels, mask, pos_weight=1.0)
        _, grad_weighted = bce_with_logits(logits, labels, mask, pos_weight=5.0)
        ratio = abs(grad_weighted[0] / grad_weighted[1])
        assert ratio == pytest.approx(5.0)
        assert abs(grad_plain[0] / grad_plain[1]) == pytest.approx(1.0)

    def test_invalid_pos_weight(self):
        with pytest.raises(ValueError):
            bce_with_logits(np.zeros(1), np.zeros(1), np.ones(1, bool), pos_weight=0)

    def test_sigmoid_stable_extremes(self):
        values = sigmoid(np.array([-1e4, 0.0, 1e4]))
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(0.5)
        assert values[2] == pytest.approx(1.0)


class TestModel:
    def test_forward_shapes(self):
        sample = toy_sample()
        model = BottleneckGNN(EncoderConfig(input_dim=10, hidden_dim=8, seed=1))
        logits = model.forward(sample)
        assert logits.shape == (6, 1)
        probs = model.predict_probabilities(sample)
        assert probs.shape == (6,)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_agnostic_embedding_ignores_parallelism(self):
        sample = toy_sample()
        model = BottleneckGNN(EncoderConfig(input_dim=10, hidden_dim=8, seed=1))
        h1 = model.encode(sample, parallelism_aware=False)
        sample.parallelism = np.zeros(6)
        h2 = model.encode(sample, parallelism_aware=False)
        assert np.array_equal(h1, h2)

    def test_aware_embedding_depends_on_parallelism(self):
        sample = toy_sample()
        model = BottleneckGNN(EncoderConfig(input_dim=10, hidden_dim=8, seed=1))
        h1 = model.encoder.forward(sample, parallelism_aware=True)
        sample.parallelism = 1.0 - sample.parallelism
        h2 = model.encoder.forward(sample, parallelism_aware=True)
        assert not np.array_equal(h1, h2)

    def test_jumping_knowledge_doubles_embedding(self):
        with_jk = EncoderConfig(input_dim=10, hidden_dim=8, jumping_knowledge=True)
        without = EncoderConfig(input_dim=10, hidden_dim=8, jumping_knowledge=False)
        assert with_jk.embedding_dim == 16
        assert without.embedding_dim == 8

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EncoderConfig(input_dim=0)
        with pytest.raises(ValueError):
            EncoderConfig(input_dim=4, n_message_passing=0)

    def test_deterministic_by_seed(self):
        sample = toy_sample()
        a = BottleneckGNN(EncoderConfig(input_dim=10, seed=3)).forward(sample)
        b = BottleneckGNN(EncoderConfig(input_dim=10, seed=3)).forward(sample)
        assert np.array_equal(a, b)


class TestAdam:
    def test_minimises_quadratic(self):
        p = Parameter(np.array([5.0]))
        optimizer = Adam([p], learning_rate=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            p.grad[:] = 2 * p.value
            optimizer.step()
        assert abs(p.value[0]) < 1e-2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Adam([], learning_rate=0.0)
        with pytest.raises(ValueError):
            Adam([], beta1=1.0)


class TestTraining:
    def test_loss_decreases(self):
        samples = [toy_sample(seed=s) for s in range(6)]
        _, report = train_bottleneck_gnn(
            samples,
            config=EncoderConfig(input_dim=10, hidden_dim=8, seed=2),
            epochs=15,
            seed=2,
        )
        assert report.losses[-1] < report.losses[0]

    def test_learns_separable_rule(self):
        """Bottleneck iff parallelism below 0.5: learnable via FUSE."""
        rng = np.random.default_rng(0)
        samples = []
        for s in range(25):
            sample = toy_sample(seed=s, labels=(0,) * 6)
            parallelism = rng.uniform(0, 1, size=6)
            labels = (parallelism < 0.5).astype(np.int64)
            sample.parallelism = parallelism
            sample.labels = labels
            sample.mask = np.ones(6, bool)
            samples.append(sample)
        model, report = train_bottleneck_gnn(
            samples,
            config=EncoderConfig(input_dim=10, hidden_dim=12, seed=4),
            epochs=60,
            learning_rate=1e-2,
            seed=4,
        )
        assert report.final_accuracy > 0.85
        assert evaluate_accuracy(model, samples) > 0.85

    def test_requires_labelled_samples(self):
        sample = toy_sample(labels=(-1,) * 6)
        with pytest.raises(ValueError, match="labelled"):
            train_bottleneck_gnn([sample])


class TestBuildSample:
    def test_from_dataflow(self):
        flow = build_diamond_flow()
        encoder = FeatureEncoder()
        sample = build_sample(
            flow,
            {"src": 1e5},
            dict.fromkeys(flow.operator_names, 4),
            {"join": 1, "left": 0},
            encoder=encoder,
            max_parallelism=100,
        )
        assert sample.n_nodes == 5
        assert sample.n_labelled == 2
        assert sample.labels[sample.index_of("join")] == 1
        assert sample.labels[sample.index_of("left")] == 0
        assert sample.labels[sample.index_of("sink")] == -1
        assert sample.features.shape == (5, encoder.dimension)
        assert np.all(sample.parallelism == sample.parallelism[0])
