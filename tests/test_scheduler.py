"""Tests for the scheduling-aware tuning substrate (§VII extension)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.graph import LogicalDataflow
from repro.dataflow.operators import OperatorSpec, OperatorType
from repro.engines.base import EngineError
from repro.engines.scheduler import (
    STRATEGIES,
    ClusterTopology,
    ContendedPerformanceModel,
    Machine,
    SchedulingAwareTimely,
    choose_strategy,
    place_instances,
)
from repro.engines.perf import PerformanceModel
from repro.engines.timely import TimelyCluster


def two_machine_topology(cores: int = 4) -> ClusterTopology:
    return ClusterTopology.uniform(n_machines=2, cores_each=cores)


class TestTopology:
    def test_uniform_builder(self):
        topology = ClusterTopology.uniform(3, 8)
        assert len(topology.machines) == 3
        assert topology.total_cores == 24

    def test_rejects_empty_topology(self):
        with pytest.raises(ValueError, match="at least one machine"):
            ClusterTopology(machines=())

    def test_rejects_duplicate_machine_names(self):
        with pytest.raises(ValueError, match="unique"):
            ClusterTopology(machines=(Machine("m", 2), Machine("m", 4)))

    def test_rejects_bad_machine(self):
        with pytest.raises(ValueError):
            Machine("", 2)
        with pytest.raises(ValueError):
            Machine("m", 0)

    def test_machine_lookup(self):
        topology = two_machine_topology()
        assert topology.machine("machine-0").cores == 4
        with pytest.raises(KeyError):
            topology.machine("nope")


class TestPlacement:
    def test_all_instances_placed(self, linear_flow):
        parallelisms = {"src": 2, "filter": 3, "sink": 1}
        plan = place_instances(linear_flow, parallelisms, two_machine_topology())
        for name, count in parallelisms.items():
            assert plan.instance_count(name) == count

    def test_unknown_strategy_rejected(self, linear_flow):
        with pytest.raises(ValueError, match="unknown strategy"):
            place_instances(
                linear_flow, {"src": 1, "filter": 1, "sink": 1},
                two_machine_topology(), "zigzag",
            )

    def test_missing_parallelism_rejected(self, linear_flow):
        with pytest.raises(EngineError, match="no parallelism"):
            place_instances(linear_flow, {"src": 1}, two_machine_topology())

    def test_nonpositive_parallelism_rejected(self, linear_flow):
        with pytest.raises(EngineError, match=">= 1"):
            place_instances(
                linear_flow, {"src": 0, "filter": 1, "sink": 1},
                two_machine_topology(),
            )

    def test_placement_is_deterministic(self, diamond_flow):
        parallelisms = dict.fromkeys(diamond_flow.operator_names, 3)
        topology = two_machine_topology()
        a = place_instances(diamond_flow, parallelisms, topology, "spread")
        b = place_instances(diamond_flow, parallelisms, topology, "spread")
        assert a.instances == b.instances

    def test_spread_balances_compact_concentrates(self, diamond_flow):
        parallelisms = dict.fromkeys(diamond_flow.operator_names, 2)
        topology = two_machine_topology(cores=4)
        spread = place_instances(diamond_flow, parallelisms, topology, "spread")
        compact = place_instances(diamond_flow, parallelisms, topology, "compact")
        assert spread.imbalance() <= compact.imbalance()
        # Compact fills machine-0 to its core count before machine-1.
        assert compact.threads_on("machine-0") == 4

    def test_compact_overflows_last_machine(self, linear_flow):
        """More tasks than cores: the final machine absorbs the excess."""
        parallelisms = {"src": 4, "filter": 4, "sink": 4}
        topology = two_machine_topology(cores=4)
        plan = place_instances(linear_flow, parallelisms, topology, "compact")
        assert plan.threads_on("machine-0") == 4
        assert plan.threads_on("machine-1") == 8

    def test_machines_hosting(self, linear_flow):
        parallelisms = {"src": 1, "filter": 1, "sink": 1}
        plan = place_instances(
            linear_flow, parallelisms, two_machine_topology(cores=1), "compact"
        )
        assert plan.machines_hosting("src") == ["machine-0"]


class TestContention:
    def test_idle_machines_have_unit_slowdown(self, linear_flow):
        parallelisms = {"src": 1, "filter": 1, "sink": 1}
        plan = place_instances(
            linear_flow, parallelisms, two_machine_topology(cores=8), "spread"
        )
        assert all(f == 1.0 for f in plan.machine_slowdowns().values())
        assert all(f == 1.0 for f in plan.operator_slowdowns().values())

    def test_oversubscribed_machine_slows_hosted_operators(self, linear_flow):
        parallelisms = {"src": 4, "filter": 4, "sink": 4}
        topology = ClusterTopology.uniform(1, 4)   # 12 threads on 4 cores
        plan = place_instances(linear_flow, parallelisms, topology, "compact")
        assert plan.machine_slowdowns()["machine-0"] == pytest.approx(3.0)
        slowdowns = plan.operator_slowdowns()
        assert all(f == pytest.approx(3.0) for f in slowdowns.values())

    def test_compact_hurts_front_operators_more_than_spread(self, linear_flow):
        """With compact packing the first machine saturates while the
        second idles; spread shares the pain evenly."""
        parallelisms = {"src": 6, "filter": 6, "sink": 6}
        topology = two_machine_topology(cores=4)
        compact = place_instances(linear_flow, parallelisms, topology, "compact")
        spread = place_instances(linear_flow, parallelisms, topology, "spread")
        assert max(compact.operator_slowdowns().values()) > max(
            spread.operator_slowdowns().values()
        )

    def test_contended_model_scales_rates(self):
        base = PerformanceModel()
        spec = OperatorSpec(name="f", op_type=OperatorType.FILTER)
        contended = ContendedPerformanceModel(base, {"f": 2.0})
        assert contended.per_instance_rate(spec) == pytest.approx(
            base.per_instance_rate(spec) / 2.0
        )
        assert contended.processing_ability(spec, 4) == pytest.approx(
            base.processing_ability(spec, 4) / 2.0
        )
        assert contended.scaling_alpha(spec) == base.scaling_alpha(spec)

    def test_contended_model_needs_more_parallelism(self):
        base = PerformanceModel()
        spec = OperatorSpec(name="f", op_type=OperatorType.FILTER)
        demand = base.processing_ability(spec, 4)
        contended = ContendedPerformanceModel(base, {"f": 2.0})
        assert contended.min_parallelism_for(spec, demand, 100) > 4

    def test_contended_model_rejects_speedups(self):
        with pytest.raises(ValueError, match=">= 1"):
            ContendedPerformanceModel(PerformanceModel(), {"f": 0.5})

    def test_unlisted_operator_runs_at_full_speed(self):
        base = PerformanceModel()
        spec = OperatorSpec(name="g", op_type=OperatorType.MAP)
        contended = ContendedPerformanceModel(base, {"f": 2.0})
        assert contended.per_instance_rate(spec) == base.per_instance_rate(spec)


class TestSchedulingAwareTimely:
    def test_default_topology(self):
        engine = SchedulingAwareTimely(seed=1)
        assert engine.topology.total_cores == 128

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            SchedulingAwareTimely(strategy="diagonal", seed=1)

    def test_contention_induces_backpressure(self, linear_flow):
        """The same deployment is fine on a large topology and saturated on
        a tiny one — placement is now part of the physics."""
        roomy = SchedulingAwareTimely(
            topology=ClusterTopology.uniform(2, 64), seed=3
        )
        cramped = SchedulingAwareTimely(
            topology=ClusterTopology.uniform(1, 2), strategy="compact", seed=3
        )
        parallelisms = {"src": 2, "filter": 6, "sink": 2}

        # Pick a demand the uncontended deployment just sustains.
        plain = TimelyCluster(seed=3)
        probe = plain.deploy(linear_flow, parallelisms, {"src": 1.0})
        perf = plain.perf
        sustainable = perf.processing_ability(linear_flow.operator("filter"), 6)
        plain.stop(probe)
        rate = {"src": sustainable * 0.9}

        roomy_job = roomy.deploy(linear_flow, parallelisms, rate)
        cramped_job = cramped.deploy(linear_flow, parallelisms, rate)
        assert not roomy.ground_truth(roomy_job).has_backpressure
        assert cramped.ground_truth(cramped_job).has_backpressure

    def test_placement_recomputed_after_reconfigure(self, linear_flow):
        engine = SchedulingAwareTimely(
            topology=ClusterTopology.uniform(1, 4), strategy="compact", seed=5
        )
        deployment = engine.deploy(
            linear_flow, {"src": 1, "filter": 1, "sink": 1}, {"src": 100.0}
        )
        before = engine.placement_for(deployment).threads_on("machine-0")
        engine.reconfigure(deployment, {"src": 2, "filter": 4, "sink": 2})
        after = engine.placement_for(deployment).threads_on("machine-0")
        assert (before, after) == (3, 8)

    def test_measure_uses_contended_perf(self, linear_flow):
        engine = SchedulingAwareTimely(
            topology=ClusterTopology.uniform(1, 1), strategy="compact",
            seed=7, noise_std=0.0,
        )
        deployment = engine.deploy(
            linear_flow, {"src": 4, "filter": 4, "sink": 4}, {"src": 1000.0}
        )
        contended = engine.perf_for(deployment)
        spec = linear_flow.operator("filter")
        assert contended.per_instance_rate(spec) < engine.perf.per_instance_rate(spec)


class TestChooseStrategy:
    def test_prefers_spread_when_contention_ties(self, linear_flow):
        parallelisms = {"src": 1, "filter": 1, "sink": 1}
        strategy = choose_strategy(
            linear_flow, parallelisms, two_machine_topology(cores=8)
        )
        assert strategy == "spread"

    def test_returns_a_known_strategy(self, diamond_flow):
        parallelisms = dict.fromkeys(diamond_flow.operator_names, 5)
        strategy = choose_strategy(
            diamond_flow, parallelisms, ClusterTopology.uniform(3, 2)
        )
        assert strategy in STRATEGIES


@settings(max_examples=25, deadline=None)
@given(
    degrees=st.lists(st.integers(min_value=1, max_value=9), min_size=3, max_size=3),
    cores=st.integers(min_value=1, max_value=16),
    strategy=st.sampled_from(STRATEGIES),
)
def test_placement_conserves_instances_and_bounds_slowdown(degrees, cores, strategy):
    """Placement never loses or invents instances, and slowdowns are >= 1."""
    flow = LogicalDataflow("prop_flow")
    flow.chain(
        OperatorSpec(name="src", op_type=OperatorType.SOURCE),
        OperatorSpec(name="filter", op_type=OperatorType.FILTER, selectivity=0.5),
        OperatorSpec(name="sink", op_type=OperatorType.SINK),
    )
    parallelisms = dict(zip(["src", "filter", "sink"], degrees))
    topology = ClusterTopology.uniform(2, cores)
    plan = place_instances(flow, parallelisms, topology, strategy)
    assert sum(plan.threads_on(m.name) for m in topology.machines) == sum(degrees)
    for name, count in parallelisms.items():
        assert plan.instance_count(name) == count
    assert all(f >= 1.0 for f in plan.operator_slowdowns().values())
    assert all(f >= 1.0 for f in plan.machine_slowdowns().values())
