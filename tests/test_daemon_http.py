"""End-to-end daemon tests over real sockets.

The daemon here is the real thing: a bound ``ThreadingHTTPServer``, the
real dispatcher thread, real fsynced ledgers — driven through
:class:`~repro.daemon.DaemonClient` exactly as ``repro submit`` does.
The kill test SIGKILLs a daemon subprocess outright and asserts the
``--resume auto`` restart contract: finished jobs replay bit-identically,
interrupted jobs execute only their missing cells.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.daemon import DaemonClient, DaemonClientError, TuningDaemon

TINY_PLAN = {
    "kind": "tuning", "query": "q1", "rates": [3.0, 5.0],
    "tuner": "ds2", "scale": "smoke",
}

TWO_CELL_PLAN = {
    "kind": "campaign", "queries": ["q1", "q5"], "rates": [3.0, 5.0],
    "tuner": "ds2", "backend": "sequential", "scale": "smoke", "seed": 17,
}


@pytest.fixture
def daemon(tmp_path):
    """A served, in-process daemon on an ephemeral port; always stopped."""
    instance = TuningDaemon(port=0, ledger_dir=tmp_path / "ledger")
    instance.start()
    try:
        yield instance
    finally:
        instance.stop()


def _client(daemon: TuningDaemon) -> DaemonClient:
    return DaemonClient(daemon.url, timeout=30.0)


class TestSubmitFollowFinish:
    def test_submit_runs_streams_and_persists(self, daemon, tmp_path):
        client = _client(daemon)
        assert client.health()["status"] == "ok"
        job = client.submit_plan(TINY_PLAN, tenant="alice", priority=2)
        assert job["job"] == "j000001"
        assert job["tenant"] == "alice" and job["priority"] == 2
        assert job["plan_kind"] == "tuning" and job["n_cells"] == 1

        followed = list(client.follow(job["job"]))
        kinds = [event["event"] for event in followed]
        assert kinds[0] == "CampaignStarted"
        assert "StepCompleted" in kinds
        assert kinds[-2:] == ["CampaignFinished", "CacheStats"]

        final = client.job(job["job"])
        assert final["state"] == "finished" and not final["replayed"]
        assert final["n_events"] == len(followed)

        # The live stream, the re-read stream and the on-disk ledger are
        # the same bytes.
        lines = client.event_lines(job["job"])
        ledger = tmp_path / "ledger" / "j000001.jsonl"
        assert lines == ledger.read_text().splitlines()
        assert [json.loads(line) for line in lines] == followed

    def test_jobs_listing_and_filters(self, daemon):
        client = _client(daemon)
        first = client.submit_plan(TINY_PLAN, tenant="alice")
        second = client.submit_plan(TINY_PLAN, tenant="bob")
        for job in (first, second):
            list(client.follow(job["job"]))  # wait for both
        assert [j["job"] for j in client.jobs()] == ["j000001", "j000002"]
        assert [j["job"] for j in client.jobs(tenant="bob")] == ["j000002"]
        assert len(client.jobs(state="finished")) == 2
        assert client.jobs(state="failed") == []

    def test_toml_submission(self, daemon, tmp_path):
        plan_file = tmp_path / "plan.toml"
        plan_file.write_text(
            'kind = "tuning"\nquery = "q1"\nrates = [3.0, 5.0]\n'
            'tuner = "ds2"\nscale = "smoke"\n'
        )
        client = _client(daemon)
        job = client.submit_plan(plan_file)
        assert job["plan_kind"] == "tuning"
        list(client.follow(job["job"]))
        assert client.job(job["job"])["state"] == "finished"

    def test_metrics_scrape(self, daemon):
        client = _client(daemon)
        job = client.submit_plan(TINY_PLAN, tenant="alice")
        list(client.follow(job["job"]))
        text = client.metrics_text()
        assert 'repro_jobs_total{state="finished"} 1' in text
        assert 'repro_tenant_submitted_total{tenant="alice"} 1' in text
        assert "repro_campaigns_finished_total 1" in text
        assert "repro_steps_total 2" in text  # one per rate in the trace
        assert "# TYPE repro_cache_hit_ratio gauge" in text
        uptime = [
            line for line in text.splitlines()
            if line.startswith("repro_uptime_seconds ")
        ]
        assert len(uptime) == 1 and float(uptime[0].split()[1]) >= 0.0


class TestHttpErrors:
    def test_invalid_plan_is_400(self, daemon):
        client = _client(daemon)
        with pytest.raises(DaemonClientError) as excinfo:
            client.submit_plan({"kind": "tuning", "query": "q1", "rates": []})
        assert excinfo.value.status == 400
        with pytest.raises(DaemonClientError) as excinfo:
            client.submit_plan({"no": "kind"})
        assert excinfo.value.status == 400

    def test_unparseable_body_is_400(self, daemon):
        with pytest.raises(DaemonClientError) as excinfo:
            _client(daemon)._request(
                "POST", "/v1/plans", body=b"not json {", stream=False
            )
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, daemon):
        client = _client(daemon)
        for path in ("/v1/jobs/j999999", "/v1/jobs/j999999/events"):
            with pytest.raises(DaemonClientError) as excinfo:
                client._request("GET", path)
            assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, daemon):
        with pytest.raises(DaemonClientError) as excinfo:
            _client(daemon)._request("GET", "/v2/everything")
        assert excinfo.value.status == 404

    def test_failed_plan_marks_job_failed(self, daemon):
        client = _client(daemon)
        # A model directory that does not exist passes plan validation
        # (paths resolve at execution time) and fails in the run — the
        # daemon must survive it, record the failure, and keep serving.
        job = client.submit_plan({
            "kind": "tuning", "query": "q1", "rates": [3.0],
            "model": "/nonexistent/model", "scale": "smoke",
        })
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            state = client.job(job["job"])["state"]
            if state in ("finished", "failed"):
                break
            time.sleep(0.05)
        final = client.job(job["job"])
        assert final["state"] == "failed"
        assert final["error"]
        # The daemon is still alive and serving.
        assert client.health()["status"] == "ok"
        next_job = client.submit_plan(TINY_PLAN)
        list(client.follow(next_job["job"]))
        assert client.job(next_job["job"])["state"] == "finished"


class TestAdmissionAndShutdown:
    def test_backpressure_draining_and_graceful_drain(self, tmp_path):
        daemon = TuningDaemon(
            port=0, ledger_dir=tmp_path / "ledger", max_queue_depth=1
        )
        gate = threading.Event()
        real_run = daemon.session.run

        def gated_run(plan, **kwargs):
            gate.wait(timeout=60)
            return real_run(plan, **kwargs)

        daemon.session.run = gated_run
        daemon.start()
        try:
            client = _client(daemon)
            running = client.submit_plan(TINY_PLAN, tenant="alice")
            deadline = time.monotonic() + 10
            while client.job(running["job"])["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            queued = client.submit_plan(TINY_PLAN, tenant="alice")
            # alice's slice (depth 1) is now full: 429.
            with pytest.raises(DaemonClientError) as excinfo:
                client.submit_plan(TINY_PLAN, tenant="alice")
            assert excinfo.value.status == 429
            # Other tenants are unaffected by alice's backlog.
            other = client.submit_plan(TINY_PLAN, tenant="bob")
            text = client.metrics_text()
            assert 'repro_queue_depth{tenant="alice"} 1' in text
            assert 'repro_queue_depth{tenant="bob"} 1' in text

            assert client.shutdown() == {"status": "draining"}
            with pytest.raises(DaemonClientError) as excinfo:
                client.submit_plan(TINY_PLAN, tenant="carol")
            assert excinfo.value.status == 503

            gate.set()
            daemon.stop()
            # The in-flight job drained to completion; the queued jobs
            # stayed "queued" in the manifest, ready for --resume auto.
            from repro.daemon import JobStore

            recovered = JobStore(tmp_path / "ledger", fsync=False)
            to_requeue = recovered.recover()
            assert recovered.get(running["job"]).state == "finished"
            assert {job.id for job in to_requeue} == {
                queued["job"], other["job"],
            }
        finally:
            gate.set()
            daemon.stop()

    def test_stop_leaves_no_shm_segments(self, tmp_path):
        daemon = TuningDaemon(port=0, ledger_dir=tmp_path / "ledger")
        daemon.start()
        client = _client(daemon)
        job = client.submit_plan(TINY_PLAN)
        list(client.follow(job["job"]))
        daemon.stop()
        shm_dir = Path("/dev/shm")
        if shm_dir.is_dir():
            assert not [
                path for path in shm_dir.iterdir()
                if path.name.startswith("reprocache")
            ]


class TestResumeAuto:
    def test_restart_executes_only_missing_cells(self, tmp_path):
        """A job interrupted mid-campaign re-runs only what the partial
        ledger does not cover (deterministic: the interruption is staged,
        not raced)."""
        from repro.api import EventBus, JsonlRecorder, plan_from_dict
        from repro.api.session import TuningSession
        from repro.daemon import JobStore

        ledger_dir = tmp_path / "ledger"
        store = JobStore(ledger_dir, fsync=False)
        plan = plan_from_dict(TWO_CELL_PLAN)
        job = store.submit(plan, TWO_CELL_PLAN)
        store.mark(job, "running")
        # Stage the kill point: the ledger holds cell 1 (q1) only — a
        # single-query plan with identical axes stamps the same cell key.
        one_cell = plan_from_dict({**TWO_CELL_PLAN, "queries": ["q1"]})
        recorder = JsonlRecorder(job.ledger_path)
        TuningSession().run(one_cell, bus=EventBus(recorder))
        recorder.close()

        daemon = TuningDaemon(
            port=0, ledger_dir=ledger_dir, resume="auto"
        )
        daemon.start()
        try:
            client = _client(daemon)
            events = list(client.follow(job.id))
            kinds = [event["event"] for event in events]
            # q1 was replayed from the checkpoint, q5 actually executed.
            assert kinds.count("CampaignSkipped") == 1
            assert kinds.count("CampaignFinished") == 2
            skipped = next(e for e in events if e["event"] == "CampaignSkipped")
            assert "q1" in skipped["cell_key"]
            assert client.job(job.id)["state"] == "finished"
        finally:
            daemon.stop()

    def test_sigkill_then_restart_replays_bit_identically(self, tmp_path):
        """The full acceptance path: a real daemon process, a real -9."""
        ledger_dir = tmp_path / "ledger"
        script = (
            "import sys\n"
            "from repro.daemon import TuningDaemon\n"
            "daemon = TuningDaemon(port=0, ledger_dir=sys.argv[1],\n"
            "                      resume=(sys.argv[2] or None))\n"
            "daemon.serve(on_ready=lambda ready: print(ready.url, flush=True))\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        def spawn(resume: str) -> "tuple[subprocess.Popen, DaemonClient]":
            process = subprocess.Popen(
                [sys.executable, "-c", script, str(ledger_dir), resume],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                text=True,
            )
            url = process.stdout.readline().strip()
            assert url.startswith("http://"), "daemon failed to start"
            return process, DaemonClient(url, timeout=30.0)

        process, client = spawn("")
        try:
            done = client.submit_plan(TINY_PLAN, tenant="alice")
            list(client.follow(done["job"]))
            assert client.job(done["job"])["state"] == "finished"
            pre_kill_lines = client.event_lines(done["job"])
            assert pre_kill_lines
            # A second job goes in and the daemon dies immediately —
            # whatever state the kill caught it in must be recoverable.
            interrupted = client.submit_plan(TWO_CELL_PLAN, tenant="alice")
        finally:
            process.kill()  # SIGKILL: no drain, no atexit, no flush
            process.wait(timeout=30)

        process, client = spawn("auto")
        try:
            # The finished job replays bit-identically, marked as such.
            replayed = client.job(done["job"])
            assert replayed["state"] == "finished" and replayed["replayed"]
            assert client.event_lines(done["job"]) == pre_kill_lines
            # The interrupted job re-runs to completion.
            deadline = time.monotonic() + 60
            while client.job(interrupted["job"])["state"] != "finished":
                assert time.monotonic() < deadline, "interrupted job hung"
                time.sleep(0.05)
            kinds = [
                event["event"]
                for event in client.events(interrupted["job"])
            ]
            # Every cell accounted for: executed or replayed, never lost
            # and never run twice.
            assert kinds.count("CampaignFinished") == 2
            client.shutdown()
            process.wait(timeout=30)
            assert process.returncode == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
