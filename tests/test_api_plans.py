"""Tests for the declarative plan layer (dict/JSON/TOML round-trips)."""

from __future__ import annotations

import json

import pytest

try:
    import tomllib  # noqa: F401  (Python 3.11+)

    HAS_TOML = True
except ModuleNotFoundError:
    try:
        import tomli  # noqa: F401

        HAS_TOML = True
    except ModuleNotFoundError:
        HAS_TOML = False

requires_toml = pytest.mark.skipif(
    not HAS_TOML, reason="no TOML parser on this interpreter (Python < 3.11)"
)

from repro.api import (
    CampaignPlan,
    PlanError,
    SweepPlan,
    TuningPlan,
    load_plan,
    plan_from_dict,
    replace,
    save_plan,
)


class TestTuningPlanValidation:
    def test_defaults_validate(self):
        plan = TuningPlan(query="q5")
        assert plan.rates == (3.0, 10.0, 5.0)
        assert plan.engine == "flink"

    def test_rates_normalised_to_float_tuple(self):
        plan = TuningPlan(query="q1", rates=[3, 7])
        assert plan.rates == (3.0, 7.0)
        assert isinstance(plan.rates, tuple)

    def test_unknown_query_token(self):
        with pytest.raises(PlanError, match="q7"):
            TuningPlan(query="q7")

    def test_unknown_engine_names_alternatives(self):
        with pytest.raises(PlanError, match="flink"):
            TuningPlan(query="q1", engine="spark")

    def test_unknown_layer(self):
        with pytest.raises(PlanError, match="svm"):
            TuningPlan(query="q1", layer="forest")

    def test_unknown_tuner(self):
        with pytest.raises(PlanError, match="streamtune"):
            TuningPlan(query="q1", tuner="autoscale")

    def test_ablation_tuner_spelling_accepted(self):
        assert TuningPlan(query="q1", tuner="streamtune-xgboost").tuner

    def test_ablation_tuner_bad_model_suffix_fails_at_plan_time(self):
        with pytest.raises(PlanError, match="model suffix"):
            TuningPlan(query="q1", tuner="streamtune-forest")

    def test_dashed_garbage_tuner_fails_at_plan_time(self):
        with pytest.raises(PlanError, match="ds2-foo"):
            TuningPlan(query="q1", tuner="ds2-foo")

    def test_ablation_tuner_spelling_is_case_insensitive(self):
        assert TuningPlan(query="q1", tuner="StreamTune-xgboost").tuner

    def test_pqp_index_out_of_range_fails_at_plan_time(self):
        with pytest.raises(PlanError, match="0..7"):
            TuningPlan(query="linear/99")
        with pytest.raises(PlanError, match="0..7"):
            CampaignPlan(queries=("q1", "linear/-1"))

    def test_cache_path_with_baseline_tuner_rejected(self):
        with pytest.raises(PlanError, match="streamtune"):
            TuningPlan(query="q1", tuner="ds2", cache_path="caches.pkl")

    def test_unknown_scale(self):
        with pytest.raises(PlanError, match="smoke"):
            TuningPlan(query="q1", scale="tiny")

    def test_empty_rates(self):
        with pytest.raises(PlanError, match="at least one"):
            TuningPlan(query="q1", rates=())

    def test_nonpositive_rate(self):
        with pytest.raises(PlanError, match="> 0"):
            TuningPlan(query="q1", rates=(3, 0))

    def test_rates_string_rejected_with_hint(self):
        with pytest.raises(PlanError, match="split"):
            TuningPlan(query="q1", rates="3,7")


class TestCampaignPlanValidation:
    def test_defaults_validate(self):
        plan = CampaignPlan(queries=("q1", "q5"))
        assert plan.backend == "thread"
        assert plan.rates_for() == [
            ("q1", (3.0, 7.0, 4.0, 2.0)),
            ("q5", (3.0, 7.0, 4.0, 2.0)),
        ]

    def test_queries_string_rejected_with_hint(self):
        with pytest.raises(PlanError, match="split"):
            CampaignPlan(queries="q1,q5")

    def test_empty_queries(self):
        with pytest.raises(PlanError, match="at least one"):
            CampaignPlan(queries=())

    def test_unknown_backend(self):
        with pytest.raises(PlanError, match="sequential"):
            CampaignPlan(queries=("q1",), backend="fibers")

    def test_bad_workers(self):
        with pytest.raises(PlanError, match="workers"):
            CampaignPlan(queries=("q1",), workers=0)

    def test_rates_per_query_requires_multiple(self):
        with pytest.raises(PlanError) as exc_info:
            CampaignPlan(queries=("q1", "q5"), rates=(3, 7, 4), rates_per_query=True)
        message = str(exc_info.value)
        assert "3 multipliers" in message
        assert "2 queries" in message
        assert "multiple" in message

    def test_cache_path_with_process_backend_accepted(self):
        # Historically rejected (worker-local cache sets left the parent's
        # snapshot empty); the service now snapshots worker sections back
        # to the parent on pool shutdown, so the combination is supported.
        plan = CampaignPlan(
            queries=("q1",), backend="process", cache_path="caches.pkl"
        )
        assert plan.cache_path == "caches.pkl"
        assert plan.backend == "process"

    def test_rates_per_query_chunks_in_order(self):
        plan = CampaignPlan(
            queries=("q1", "q5"), rates=(3, 7, 4, 2), rates_per_query=True
        )
        assert plan.rates_for() == [("q1", (3.0, 7.0)), ("q5", (4.0, 2.0))]


class TestRoundTrips:
    def _campaign(self) -> CampaignPlan:
        return CampaignPlan(
            queries=("q1", "2-way-join/3"),
            rates=(3, 7, 4, 2),
            backend="sequential",
            workers=2,
            scale="smoke",
            seed=23,
            cache_path="caches.pkl",
        )

    def test_dict_round_trip_equality(self):
        plan = self._campaign()
        assert CampaignPlan.from_dict(plan.to_dict()) == plan
        tuning = TuningPlan(query="q5", rates=(2, 9), scale="smoke")
        assert TuningPlan.from_dict(tuning.to_dict()) == tuning

    def test_json_round_trip_equality(self):
        plan = self._campaign()
        assert CampaignPlan.from_json(plan.to_json()) == plan

    def test_kind_inference(self):
        assert isinstance(plan_from_dict({"query": "q1"}), TuningPlan)
        assert isinstance(plan_from_dict({"queries": ["q1"]}), CampaignPlan)
        with pytest.raises(PlanError, match="kind"):
            plan_from_dict({"rates": [1, 2]})
        with pytest.raises(PlanError, match="campaign"):
            plan_from_dict({"kind": "fleet"})

    def test_kind_mismatch_rejected(self):
        with pytest.raises(PlanError, match="declares kind"):
            TuningPlan.from_dict({"kind": "campaign", "query": "q1"})

    def test_unknown_field_lists_valid_fields(self):
        with pytest.raises(PlanError, match="'ratez'"):
            CampaignPlan.from_dict({"queries": ["q1"], "ratez": [1]})

    def test_json_file_round_trip(self, tmp_path):
        plan = self._campaign()
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        assert load_plan(path) == plan

    @requires_toml
    def test_toml_file_round_trip(self, tmp_path):
        plan = self._campaign()
        path = tmp_path / "plan.toml"
        save_plan(plan, path)
        assert load_plan(path) == plan

    @requires_toml
    def test_toml_written_by_hand(self, tmp_path):
        path = tmp_path / "plan.toml"
        path.write_text(
            'kind = "campaign"\n'
            'queries = ["q1", "q5"]\n'
            "rates = [3, 7]\n"
            'backend = "sequential"\n'
            'scale = "smoke"\n'
        )
        plan = load_plan(path)
        assert isinstance(plan, CampaignPlan)
        assert plan.rates == (3.0, 7.0)
        assert plan.scale == "smoke"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(PlanError, match="does not exist"):
            load_plan(tmp_path / "nope.json")

    def test_load_bad_suffix(self, tmp_path):
        path = tmp_path / "plan.yaml"
        path.write_text("queries: [q1]\n")
        with pytest.raises(PlanError, match="suffix"):
            load_plan(path)

    def test_load_invalid_json_names_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{queries: [q1]}")
        with pytest.raises(PlanError, match="plan.json"):
            load_plan(path)

    def test_load_validation_error_names_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"queries": ["q1"], "backend": "fibers"}))
        with pytest.raises(PlanError, match="plan.json"):
            load_plan(path)

    def test_replace_revalidates(self):
        plan = self._campaign()
        assert replace(plan, backend="thread").backend == "thread"
        with pytest.raises(PlanError):
            replace(plan, backend="fibers")


class TestSweepPlan:
    def _sweep(self, **overrides):
        defaults = dict(
            queries=("q1", "q5"),
            tuners=("streamtune", "ds2"),
            engines=("flink",),
            rate_traces=((3, 7), (4, 2)),
            backend="sequential",
            scale="smoke",
            seed=23,
        )
        defaults.update(overrides)
        return SweepPlan(**defaults)

    def test_defaults_validate(self):
        plan = SweepPlan(queries=("q1",))
        assert plan.tuners == ("streamtune",)
        assert plan.rate_traces == ((3.0, 7.0, 4.0, 2.0),)
        assert plan.kind == "sweep"

    def test_expansion_grid_order_and_size(self):
        plan = self._sweep(engines=("flink", "timely"))
        cells = plan.expand()
        assert plan.n_scenarios == len(cells) == 2 * 2 * 2
        # engines slowest, rate traces fastest
        assert [c.engine for c in cells[:4]] == ["flink"] * 4
        assert [c.tuner for c in cells[:4]] == [
            "streamtune", "streamtune", "ds2", "ds2"
        ]
        assert cells[0].rates == (3.0, 7.0) and cells[1].rates == (4.0, 2.0)
        for cell in cells:
            assert isinstance(cell, CampaignPlan)
            assert cell.queries == ("q1", "q5")
            assert cell.seed == 23 and cell.scale == "smoke"

    def test_scenario_labels_unique(self):
        plan = self._sweep()
        labels = [plan.scenario_label(cell) for cell in plan.expand()]
        assert len(set(labels)) == len(labels)
        assert "ds2@flink/x3-7" in labels

    def test_unknown_tuner_named(self):
        with pytest.raises(PlanError, match="tuner"):
            self._sweep(tuners=("streamtune", "dsz"))

    def test_zerotune_rejected_with_guidance(self):
        with pytest.raises(PlanError, match="zerotune.*TuningPlan"):
            self._sweep(tuners=("zerotune",))

    def test_unknown_engine_named(self):
        with pytest.raises(PlanError, match="engine"):
            self._sweep(engines=("spark",))

    def test_empty_axis_rejected(self):
        with pytest.raises(PlanError, match="tuners"):
            self._sweep(tuners=())
        with pytest.raises(PlanError, match="rate_traces"):
            self._sweep(rate_traces=())

    def test_duplicate_axis_entries_rejected(self):
        with pytest.raises(PlanError, match="tuners.*unique"):
            self._sweep(tuners=("streamtune", "streamtune"))
        with pytest.raises(PlanError, match="engines.*unique"):
            self._sweep(engines=("flink", "flink"))
        with pytest.raises(PlanError, match="rate_traces.*unique"):
            self._sweep(rate_traces=((3, 7), (3.0, 7.0)))

    def test_string_axis_rejected_with_hint(self):
        with pytest.raises(PlanError, match="split"):
            self._sweep(tuners="streamtune,ds2")

    def test_bad_trace_names_its_index(self):
        with pytest.raises(PlanError, match=r"rate_traces\[1\]"):
            self._sweep(rate_traces=((3, 7), (0,)))

    def test_dict_round_trip_equality(self):
        plan = self._sweep()
        assert SweepPlan.from_dict(plan.to_dict()) == plan
        data = plan.to_dict()
        assert data["rate_traces"] == [[3.0, 7.0], [4.0, 2.0]]

    def test_kind_inference(self):
        assert isinstance(
            plan_from_dict({"queries": ["q1"], "tuners": ["ds2"]}), SweepPlan
        )
        assert isinstance(plan_from_dict({"kind": "sweep", "queries": ["q1"]}), SweepPlan)

    @requires_toml
    def test_toml_file_round_trip(self, tmp_path):
        plan = self._sweep()
        path = tmp_path / "sweep.toml"
        save_plan(plan, path)
        assert load_plan(path) == plan

    @requires_toml
    def test_example_sweep_smoke_loads(self):
        from pathlib import Path

        plan = load_plan(Path(__file__).parent.parent / "examples" / "sweep_smoke.toml")
        assert isinstance(plan, SweepPlan)
        assert len(plan.queries) >= 2 and len(plan.tuners) >= 2
        assert plan.n_scenarios == len(plan.expand())


class TestCampaignPlanTunerAndShards:
    def test_defaults(self):
        plan = CampaignPlan(queries=("q1",), scale="smoke")
        assert plan.tuner == "streamtune" and plan.trace_shards == 1

    def test_baseline_tuner_accepted(self):
        plan = CampaignPlan(queries=("q1",), tuner="ds2", scale="smoke")
        assert plan.tuner == "ds2"

    def test_zerotune_rejected(self):
        with pytest.raises(PlanError, match="zerotune"):
            CampaignPlan(queries=("q1",), tuner="zerotune", scale="smoke")

    def test_cache_path_with_baseline_tuner_rejected(self):
        with pytest.raises(PlanError, match="cache_path"):
            CampaignPlan(
                queries=("q1",), tuner="ds2", backend="sequential",
                cache_path="x.pkl", scale="smoke",
            )

    def test_bad_trace_shards_rejected(self):
        for bad in (0, -1, 1.5, True):
            with pytest.raises(PlanError, match="trace_shards"):
                CampaignPlan(queries=("q1",), trace_shards=bad, scale="smoke")

    def test_trace_shards_round_trips(self):
        plan = CampaignPlan(queries=("q1",), trace_shards=3, scale="smoke")
        assert CampaignPlan.from_dict(plan.to_dict()).trace_shards == 3
