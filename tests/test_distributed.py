"""Tests for the multi-host distributed executor (``repro.distributed``).

Covers the spool protocol's atomicity guarantees (exactly-one claim,
reclaim-after-expiry, exclusive completion), worker-agent execution and
abandonment, the coordinator's bit-identity with single-host backends,
fleet-death failure (never a hang), the paced engine, the retry helper
and the ``--json`` CLI output.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api.events import CampaignFailed, CampaignFinished, CampaignSkipped
from repro.api.plans import CampaignPlan, PlanError, SweepPlan, TuningPlan
from repro.api.resume import ResumeError, ResumeLog, discover_latest_log
from repro.api.session import TuningSession
from repro.distributed import (
    DistributedSession,
    LeaseLost,
    Spool,
    SpoolCell,
    WorkerAgent,
    plan_cells,
)
from repro.service import CampaignExecutionError
from repro.utils.retry import backoff_delays, with_retries


def tiny_plan(**overrides) -> CampaignPlan:
    settings = dict(
        queries=("q1", "q2"),
        rates=(3.0, 5.0),
        engine="flink",
        tuner="ds2",
        backend="sequential",
        scale="smoke",
    )
    settings.update(overrides)
    return CampaignPlan(**settings)


def deterministic_result(outcome) -> dict:
    """An outcome's result with host-timing fields removed (the repo's
    bit-identity convention, mirroring scripts/resume_check.py)."""
    result = dataclasses.asdict(outcome.result)
    for process in result["processes"]:
        for step in process["steps"]:
            step.pop("recommendation_seconds", None)
    return result


def assert_outcomes_identical(left, right) -> None:
    assert len(left.outcomes) == len(right.outcomes)
    for a, b in zip(left.outcomes, right.outcomes):
        assert a.spec_name == b.spec_name
        assert deterministic_result(a) == deterministic_result(b)


# ----------------------------------------------------------------------
# the spool protocol
# ----------------------------------------------------------------------

def make_cells(n: int, plan: CampaignPlan | None = None) -> list[SpoolCell]:
    plan = plan or CampaignPlan(
        queries=("q1",), rates=(3.0,), tuner="ds2", backend="sequential",
        scale="smoke",
    )
    return [
        SpoolCell(
            index=i,
            cell_key=f"cell-key-{i}",
            campaign=f"campaign_{i}",
            plan=plan.to_dict(),
        )
        for i in range(n)
    ]


class TestSpool:
    def test_seed_is_idempotent(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        cells = make_cells(3)
        assert spool.seed(cells) == 3
        assert spool.seed(cells) == 0
        assert len(spool.cell_ids()) == 3
        assert spool.pending_ids() == spool.cell_ids()
        loaded = spool.cell(cells[1].id)
        assert loaded == cells[1]

    def test_claim_is_exclusive(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        (cell,) = make_cells(1)
        spool.seed([cell])
        assert spool.claim(cell.id, "alpha")
        assert not spool.claim(cell.id, "beta")
        assert not spool.claim(cell.id, "alpha")   # even by the same owner
        assert spool.lease_owner(cell.id) == "alpha"
        spool.release(cell.id, "beta")             # not beta's to release
        assert spool.lease_owner(cell.id) == "alpha"
        spool.release(cell.id, "alpha")
        assert spool.lease_owner(cell.id) is None
        assert spool.claim(cell.id, "beta")

    def test_concurrent_claims_have_one_winner(self, tmp_path):
        """K threads race for one cell; exactly one claim succeeds."""
        spool = Spool(tmp_path / "spool")
        (cell,) = make_cells(1)
        spool.seed([cell])
        barrier = threading.Barrier(8)
        wins: list[str] = []
        lock = threading.Lock()

        def racer(owner: str) -> None:
            barrier.wait()
            if spool.claim(cell.id, owner):
                with lock:
                    wins.append(owner)

        threads = [
            threading.Thread(target=racer, args=(f"worker-{i}",))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1
        assert spool.lease_owner(cell.id) == wins[0]

    def test_expired_lease_is_reclaimed(self, tmp_path):
        spool = Spool(tmp_path / "spool", ttl_seconds=0.2)
        (cell,) = make_cells(1)
        spool.seed([cell])
        assert spool.claim(cell.id, "crashed-host")
        assert not spool.claim(cell.id, "survivor")
        time.sleep(0.3)
        assert spool.stale_leases() == [cell.id]
        assert spool.claim(cell.id, "survivor")
        assert spool.lease_owner(cell.id) == "survivor"

    def test_heartbeat_keeps_lease_fresh_and_detects_loss(self, tmp_path):
        spool = Spool(tmp_path / "spool", ttl_seconds=0.4)
        (cell,) = make_cells(1)
        spool.seed([cell])
        spool.claim(cell.id, "alpha")
        for _ in range(3):
            time.sleep(0.2)
            spool.heartbeat(cell.id, "alpha")
        # Heartbeats kept the lease fresh across > TTL of wall time.
        assert spool.stale_leases() == []
        # A stolen lease raises LeaseLost for the previous owner.
        time.sleep(0.5)
        assert spool.claim(cell.id, "thief")
        with pytest.raises(LeaseLost):
            spool.heartbeat(cell.id, "alpha")
        spool.release(cell.id, "thief")
        with pytest.raises(LeaseLost):
            spool.heartbeat(cell.id, "alpha")

    def test_mark_done_has_one_winner(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        (cell,) = make_cells(1)
        spool.seed([cell])
        assert spool.mark_done(cell.id, {"owner": "alpha"})
        assert not spool.mark_done(cell.id, {"owner": "beta"})
        assert spool.done_payload(cell.id) == {"owner": "alpha"}
        assert spool.pending_ids() == []
        assert spool.all_done()

    def test_worker_liveness(self, tmp_path):
        spool = Spool(tmp_path / "spool", ttl_seconds=0.3)
        spool.ensure()
        assert not spool.has_live_activity()
        spool.worker_heartbeat("agent-1")
        assert spool.live_workers() == ["agent-1"]
        assert spool.has_live_activity()
        time.sleep(0.4)
        assert spool.live_workers() == []
        assert not spool.has_live_activity()

    def test_ledger_path_is_per_attempt_and_safe(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        first = spool.ledger_path("0001-abc", "host-1")
        second = spool.ledger_path("0001-abc", "host/2:evil")
        assert first != second
        assert "/" not in second.name.replace(second.suffix, "")
        assert second.parent == spool.ledgers_dir


# ----------------------------------------------------------------------
# lease contention: racing workers execute every cell exactly once
# ----------------------------------------------------------------------

class TestLeaseContention:
    def test_racing_workers_execute_each_cell_exactly_once(self, tmp_path):
        """Three agents race one spool; every cell completes exactly once."""
        plan = tiny_plan(queries=("q1", "q2", "q3", "q5"), rates=(3.0,))
        cells = plan_cells(plan)
        spool = Spool(tmp_path / "spool")
        spool.seed(cells)
        agents = [
            WorkerAgent(
                Spool(tmp_path / "spool"),
                worker_id=f"racer-{i}",
                poll_seconds=0.01,
                exit_when_done=True,
                fsync=False,
            )
            for i in range(3)
        ]
        threads = [threading.Thread(target=agent.run) for agent in agents]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert spool.all_done()
        completions = sum(agent.n_completed for agent in agents)
        assert completions == len(cells)       # exactly once, fleet-wide
        for cell in cells:
            payload = spool.done_payload(cell.id)
            assert payload["status"] == "ok"
            ledger = spool.ledgers_dir / payload["ledger"]
            assert ledger.is_file() and ledger.stat().st_size > 0

    def test_killed_worker_subprocess_cells_are_reclaimed(self, tmp_path):
        """A SIGKILLed worker's lease expires; a second agent finishes.

        The paced engine stretches each cell past the kill window, so
        the victim dies holding a lease mid-campaign — the crashed-host
        scenario the reclaim path exists for.
        """
        spool_root = tmp_path / "spool"
        plan = tiny_plan(
            queries=("q1", "q2", "q3"), rates=(3.0, 5.0),
            engine="flink-paced",
        )
        spool = Spool(spool_root, ttl_seconds=1.0)
        spool.seed(plan_cells(plan))
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        victim = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "worker", str(spool_root),
                "--exit-when-done", "--ttl", "1.0", "--no-fsync",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.time() + 60
        while time.time() < deadline and not spool.leases():
            time.sleep(0.05)               # wait for a claim to exist
        assert spool.leases(), "worker subprocess never claimed a cell"
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait()
        survivor = WorkerAgent(
            Spool(spool_root, ttl_seconds=1.0),
            worker_id="survivor",
            poll_seconds=0.05,
            exit_when_done=True,
            fsync=False,
        )
        survivor.run()
        assert spool.all_done()
        for cell_id in spool.cell_ids():
            assert spool.done_payload(cell_id)["status"] == "ok"


# ----------------------------------------------------------------------
# the worker agent
# ----------------------------------------------------------------------

class TestWorkerAgent:
    def test_executes_cells_and_writes_ledgers(self, tmp_path):
        plan = tiny_plan()
        cells = plan_cells(plan)
        spool = Spool(tmp_path / "spool")
        spool.seed(cells)
        agent = WorkerAgent(
            spool, worker_id="solo", exit_when_done=True, fsync=False
        )
        assert agent.run() == len(cells)
        for cell in cells:
            payload = spool.done_payload(cell.id)
            assert payload["owner"] == "solo"
            lines = (
                (spool.ledgers_dir / payload["ledger"])
                .read_text().strip().splitlines()
            )
            events = [json.loads(line) for line in lines]
            kinds = [event["event"] for event in events]
            assert kinds[0] == "CampaignStarted"
            assert "CampaignFinished" in kinds
            finished = events[kinds.index("CampaignFinished")]
            assert finished["cell_key"] == cell.cell_key
            assert "result" in finished
        # Leases were released on completion; nothing stale remains.
        assert spool.leases() == []

    def test_deterministic_failure_publishes_failed_cell(self, tmp_path):
        plan = tiny_plan(
            queries=("q1",), tuner="streamtune",
            model=str(tmp_path / "no-such-model"),
        )
        cells = plan_cells(plan)
        spool = Spool(tmp_path / "spool")
        spool.seed(cells)
        agent = WorkerAgent(
            spool, worker_id="solo", exit_when_done=True, fsync=False
        )
        agent.run()
        payload = spool.done_payload(cells[0].id)
        assert payload["status"] == "failed"
        lines = (
            (spool.ledgers_dir / payload["ledger"]).read_text().splitlines()
        )
        kinds = [json.loads(line)["event"] for line in lines if line.strip()]
        assert "CampaignFailed" in kinds

    def test_lost_lease_abandons_the_attempt(self, tmp_path):
        plan = tiny_plan(
            queries=("q1",), rates=(3.0, 5.0, 4.0), engine="flink-paced"
        )
        (cell,) = plan_cells(plan)
        spool = Spool(tmp_path / "spool", ttl_seconds=0.4)
        spool.seed([cell])
        agent = WorkerAgent(
            spool, worker_id="slowpoke", fsync=False, heartbeat_seconds=0.05
        )
        assert spool.claim(cell.id, "slowpoke")
        # Steal the lease out from under the in-flight attempt, as a
        # reclaimer would after presumed death.
        stolen = threading.Timer(0.15, lambda: (
            spool.release(cell.id, "slowpoke"),
            spool.claim(cell.id, "reclaimer"),
        ))
        stolen.start()
        published = agent.execute(cell)
        stolen.join()
        assert not published
        assert agent.n_abandoned == 1
        assert spool.done_payload(cell.id) is None      # reclaimer's to publish
        assert spool.lease_owner(cell.id) == "reclaimer"


# ----------------------------------------------------------------------
# plan flattening
# ----------------------------------------------------------------------

class TestPlanCells:
    def test_campaign_cells_match_parent_keys(self):
        plan = tiny_plan()
        cells = plan_cells(plan)
        assert [cell.cell_key for cell in cells] == plan.cell_keys()
        assert [cell.fleet_index for cell in cells] == [0, 1]
        for cell in cells:
            derived = CampaignPlan.from_dict(cell.plan)
            assert derived.backend == "sequential"
            assert derived.cell_keys() == [cell.cell_key]
            assert cell.scenario is None

    def test_sweep_cells_carry_scenarios_and_restart_fleet_index(self):
        plan = SweepPlan(
            queries=("q1", "q2"),
            tuners=("ds2", "streamtune"),
            rate_traces=((3.0, 5.0),),
            backend="distributed",
            scale="smoke",
        )
        cells = plan_cells(plan)
        assert [cell.cell_key for cell in cells] == plan.cell_keys()
        assert [cell.index for cell in cells] == [0, 1, 2, 3]
        assert [cell.fleet_index for cell in cells] == [0, 1, 0, 1]
        labels = [plan.scenario_label(fleet) for fleet in plan.expand()]
        assert [cell.scenario for cell in cells] == [
            labels[0], labels[0], labels[1], labels[1],
        ]

    def test_rejects_tuning_plans(self):
        with pytest.raises(PlanError, match="campaign and sweep"):
            plan_cells(TuningPlan(query="q1"))

    def test_distributed_backend_validates_in_plans(self):
        plan = tiny_plan(backend="distributed", spool_dir="/tmp/spool")
        assert plan.backend == "distributed"
        round_tripped = CampaignPlan.from_dict(plan.to_dict())
        assert round_tripped.spool_dir == "/tmp/spool"
        with pytest.raises(PlanError, match="spool_dir"):
            tiny_plan(spool_dir=7)


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------

class TestDistributedSession:
    def test_campaign_bit_identical_to_sequential(self, tmp_path):
        plan = tiny_plan(backend="distributed")
        distributed = TuningSession().run(plan)
        sequential = TuningSession().run(
            dataclasses.replace(plan, backend="sequential")
        )
        assert distributed.backend == "distributed"
        assert_outcomes_identical(distributed, sequential)

    def test_sweep_bit_identical_and_events_in_plan_order(self, tmp_path):
        from repro.api.events import EventBus, JsonlRecorder

        plan = SweepPlan(
            queries=("q1", "q5"),
            tuners=("ds2",),
            rate_traces=((3.0, 5.0),),
            backend="distributed",
            scale="smoke",
        )
        record = tmp_path / "events.jsonl"
        recorder = JsonlRecorder(record)
        distributed = TuningSession().run(plan, bus=EventBus(recorder))
        recorder.close()
        sequential = TuningSession().run(
            dataclasses.replace(plan, backend="sequential")
        )
        for (label_a, cell_a), (label_b, cell_b) in zip(
            distributed.scenarios, sequential.scenarios
        ):
            assert label_a == label_b
            assert_outcomes_identical(cell_a, cell_b)
        events = [
            json.loads(line) for line in record.read_text().splitlines()
        ]
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        campaign_events = [
            event for event in events
            if event["event"].startswith("Campaign")
        ]
        assert all(event["scenario"] for event in campaign_events)
        assert all(
            event["backend"] == "distributed" for event in campaign_events
        )
        assert events[-1]["event"] == "SweepFinished"

    def test_resume_replays_recorded_cells_verbatim(self, tmp_path):
        from repro.api.events import EventBus, JsonlRecorder

        plan = tiny_plan(backend="distributed")
        record = tmp_path / "record.jsonl"
        recorder = JsonlRecorder(record)
        first = TuningSession().run(plan, bus=EventBus(recorder))
        recorder.close()
        log = ResumeLog.load(record)
        assert log.n_completed == 2
        started = time.perf_counter()
        events = []
        stream = TuningSession().stream(plan, resume=log)
        while True:
            try:
                events.append(next(stream))
            except StopIteration as stop:
                replayed = stop.value
                break
        # A full replay spawns no workers: it must be near-instant.
        assert time.perf_counter() - started < 1.0
        assert [type(e).__name__ for e in events if isinstance(
            e, (CampaignSkipped, CampaignFinished)
        )] == ["CampaignSkipped", "CampaignFinished"] * 2
        assert_outcomes_identical(replayed, first)

    def test_dead_fleet_fails_instead_of_hanging(self, tmp_path):
        plan = tiny_plan(
            backend="distributed", spool_dir=str(tmp_path / "spool")
        )
        session = DistributedSession(
            local_workers=0, ttl_seconds=0.2, stall_seconds=0.5,
            poll_seconds=0.02,
        )
        started = time.perf_counter()
        with pytest.raises(CampaignExecutionError) as excinfo:
            session.run(plan)
        assert time.perf_counter() - started < 30
        failures = excinfo.value.failures
        assert len(failures) == 2
        assert all(f.error_type == "WorkerLost" for f in failures)
        assert all(f.backend == "distributed" for f in failures)

    def test_spool_level_resume_replays_done_cells(self, tmp_path):
        """Pre-completed spool cells replay without re-execution."""
        spool_root = tmp_path / "spool"
        plan = tiny_plan(backend="distributed", spool_dir=str(spool_root))
        cells = plan_cells(plan)
        spool = Spool(spool_root)
        spool.seed(cells)
        WorkerAgent(
            spool, worker_id="pre", exit_when_done=True, fsync=False
        ).run()
        session = DistributedSession(local_workers=0, stall_seconds=2.0)
        result = session.run(plan)
        sequential = TuningSession().run(
            dataclasses.replace(plan, backend="sequential", spool_dir=None)
        )
        assert_outcomes_identical(result, sequential)


# ----------------------------------------------------------------------
# the paced engine
# ----------------------------------------------------------------------

class TestPacedEngine:
    def test_registered_with_flink_family(self):
        from repro.api.components import ENGINE_FAMILIES
        from repro.api.registry import ENGINES

        assert "flink-paced" in ENGINES.names()
        assert ENGINE_FAMILIES["flink-paced"] == "flink"

    def test_bit_identical_to_plain_flink(self):
        plan = tiny_plan(queries=("q1",), rates=(3.0,))
        plain = TuningSession().run(plan)
        paced = TuningSession().run(
            dataclasses.replace(plan, engine="flink-paced")
        )
        assert deterministic_result(paced.outcomes[0]) == deterministic_result(
            plain.outcomes[0]
        )

    def test_rejects_negative_pause(self):
        from repro.engines.paced import PacedFlink

        with pytest.raises(ValueError, match="telemetry_seconds"):
            PacedFlink(telemetry_seconds=-0.1)


# ----------------------------------------------------------------------
# the retry helper (also exercised by DaemonClient)
# ----------------------------------------------------------------------

class TestRetryHelper:
    def test_backoff_is_deterministic_under_seeded_rng(self):
        first = [
            delay for _, delay in zip(
                range(5), backoff_delays(rng=random.Random(7))
            )
        ]
        second = [
            delay for _, delay in zip(
                range(5), backoff_delays(rng=random.Random(7))
            )
        ]
        assert first == second
        # Exponential envelope: each undithered delay doubles up to the cap.
        undithered = [
            delay for _, delay in zip(
                range(8), backoff_delays(jitter=0.0)
            )
        ]
        assert undithered[:4] == [0.05, 0.1, 0.2, 0.4]
        assert undithered[-1] == 2.0

    def test_with_retries_retries_only_retryable_errors(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "done"

        sleeps = []
        assert with_retries(
            flaky, retryable=(OSError,), attempts=3,
            rng=random.Random(1), sleep=sleeps.append,
        ) == "done"
        assert len(calls) == 3 and len(sleeps) == 2

        def poisoned():
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            with_retries(
                poisoned, retryable=(OSError,), attempts=3, sleep=lambda _: None
            )

    def test_with_retries_exhausts_and_reraises(self):
        def always_broken():
            raise OSError("permanent")

        with pytest.raises(OSError, match="permanent"):
            with_retries(
                always_broken, retryable=(OSError,), attempts=3,
                sleep=lambda _: None,
            )


# ----------------------------------------------------------------------
# resume discovery hygiene
# ----------------------------------------------------------------------

class TestDiscoverLatestLogSkipsEmptyFiles:
    def test_zero_byte_ledgers_are_skipped(self, tmp_path):
        real = tmp_path / "real.jsonl"
        real.write_text('{"event": "CacheStats", "seq": 0, "stats": {}}\n')
        time.sleep(0.01)
        empty = tmp_path / "newest-but-empty.jsonl"
        empty.touch()
        assert discover_latest_log(tmp_path) == real

    def test_all_empty_raises(self, tmp_path):
        (tmp_path / "empty.jsonl").touch()
        with pytest.raises(ResumeError, match="no .*record found"):
            discover_latest_log(tmp_path)


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------

class TestCliJson:
    def test_jobs_json_prints_one_object_per_line(self, monkeypatch, capsys):
        import repro.daemon as daemon_module
        from repro.cli import main

        class FakeClient:
            def __init__(self, url, **kwargs):
                self.url = url

            def jobs(self, tenant=None, state=None):
                return [
                    {"job": "job-1", "tenant": "default", "priority": 0,
                     "state": "finished", "plan_kind": "campaign",
                     "n_cells": 2, "n_events": 9, "replayed": False},
                    {"job": "job-2", "tenant": "default", "priority": 1,
                     "state": "queued", "plan_kind": "sweep",
                     "n_cells": 4, "n_events": 0, "replayed": True},
                ]

        monkeypatch.setattr(daemon_module, "DaemonClient", FakeClient)
        assert main(["jobs", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert [job["job"] for job in parsed] == ["job-1", "job-2"]

    def test_submit_json_prints_submission_and_final_state(
        self, monkeypatch, capsys, tmp_path
    ):
        import repro.daemon as daemon_module
        from repro.cli import main

        class FakeClient:
            def __init__(self, url, **kwargs):
                self.url = url

            def submit_plan(self, path, tenant="default", priority=0):
                return {"job": "job-9", "plan_kind": "campaign",
                        "n_cells": 1, "tenant": tenant}

            def follow(self, job):
                yield {"event": "CampaignStarted", "seq": 0}

            def job(self, job):
                return {"job": job, "state": "finished"}

        monkeypatch.setattr(daemon_module, "DaemonClient", FakeClient)
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(tiny_plan().to_json())
        assert main(["submit", str(plan_file), "--json", "--follow"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["job"] == "job-9"
        assert parsed[1]["event"] == "CampaignStarted"
        assert parsed[-1]["state"] == "finished"

    def test_dispatch_rejects_tuning_plans(self, tmp_path, capsys):
        from repro.cli import main

        plan_file = tmp_path / "plan.json"
        plan_file.write_text(TuningPlan(query="q1").to_json())
        assert main(["dispatch", str(plan_file)]) == 2
        assert "campaign and sweep" in capsys.readouterr().err
