"""End-to-end integration tests: the whole pipeline on small scales."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ContTuneTuner,
    DS2Tuner,
    FlinkCluster,
    OracleTuner,
    StreamTuneTuner,
    TimelyCluster,
    ZeroTuneTuner,
)
from repro.core import HistoryGenerator, pretrain
from repro.workloads import nexmark_queries, nexmark_query


@pytest.fixture(scope="module")
def timely_pretrained():
    engine = TimelyCluster(seed=91)
    records = HistoryGenerator(engine, seed=92).generate(
        nexmark_queries("timely"), 500
    )
    return pretrain(records, max_parallelism=engine.max_parallelism,
                    n_clusters=2, epochs=10, seed=93)


class TestFlinkEndToEnd:
    def test_all_methods_survive_a_rate_sweep(self, tiny_pretrained, tiny_history):
        query = nexmark_query("q2", "flink")
        engine = FlinkCluster(seed=51)
        tuners = [
            OracleTuner(engine),
            DS2Tuner(engine),
            ContTuneTuner(engine),
            StreamTuneTuner(engine, tiny_pretrained, seed=52),
            ZeroTuneTuner(engine, tiny_history[:120], epochs=2, seed=53),
        ]
        for tuner in tuners:
            tuner.prepare(query)
            deployment = engine.deploy(
                query.flow, dict.fromkeys(query.flow.operator_names, 1),
                query.rates_at(2),
            )
            for multiplier in (2, 8, 4):
                result = tuner.tune(deployment, query.rates_at(multiplier))
                assert result.steps, tuner.name
            engine.stop(deployment)

    def test_streamtune_tracks_demand_direction(self, tiny_pretrained):
        """Recommendations rise with the source rate and fall back."""
        query = nexmark_query("q2", "flink")
        engine = FlinkCluster(seed=54)
        tuner = StreamTuneTuner(engine, tiny_pretrained, seed=55)
        tuner.prepare(query)
        deployment = engine.deploy(
            query.flow, dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(2),
        )
        low = tuner.tune(deployment, query.rates_at(2)).final_total_parallelism
        high = tuner.tune(deployment, query.rates_at(10)).final_total_parallelism
        low_again = tuner.tune(deployment, query.rates_at(2)).final_total_parallelism
        assert high > low
        assert low_again < high

    def test_streamtune_feedback_prevents_bp_recurrence(self, tiny_pretrained):
        """After one visit to a rate, revisiting it causes no backpressure."""
        query = nexmark_query("q5", "flink")
        engine = FlinkCluster(seed=56)
        tuner = StreamTuneTuner(engine, tiny_pretrained, seed=57)
        tuner.prepare(query)
        deployment = engine.deploy(
            query.flow, dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(3),
        )
        tuner.tune(deployment, query.rates_at(9))
        tuner.tune(deployment, query.rates_at(2))
        revisit = tuner.tune(deployment, query.rates_at(9))
        assert revisit.n_backpressure_events <= 1
        assert not engine.measure(deployment).has_backpressure

    def test_methods_agree_on_order_of_magnitude(self, tiny_pretrained):
        query = nexmark_query("q1", "flink")
        totals = {}
        for name, make in (
            ("oracle", lambda e: OracleTuner(e)),
            ("ds2", lambda e: DS2Tuner(e)),
            ("streamtune", lambda e: StreamTuneTuner(e, tiny_pretrained, seed=58)),
        ):
            engine = FlinkCluster(seed=59)
            tuner = make(engine)
            tuner.prepare(query)
            deployment = engine.deploy(
                query.flow, dict.fromkeys(query.flow.operator_names, 1),
                query.rates_at(3),
            )
            tuner.tune(deployment, query.rates_at(3))
            totals[name] = tuner.tune(
                deployment, query.rates_at(10)
            ).final_total_parallelism
        assert totals["oracle"] <= totals["ds2"] <= 3 * totals["oracle"]
        assert totals["streamtune"] <= 3 * totals["oracle"]


class TestTimelyEndToEnd:
    def test_streamtune_beats_ds2_on_resources(self, timely_pretrained):
        query = nexmark_query("q8", "timely")
        results = {}
        for name, make in (
            ("ds2", lambda e: DS2Tuner(e)),
            ("streamtune", lambda e: StreamTuneTuner(e, timely_pretrained, seed=61)),
        ):
            engine = TimelyCluster(seed=62)
            tuner = make(engine)
            tuner.prepare(query)
            deployment = engine.deploy(
                query.flow, dict.fromkeys(query.flow.operator_names, 1),
                query.rates_at(3),
            )
            tuner.tune(deployment, query.rates_at(3))
            result = tuner.tune(deployment, query.rates_at(10))
            results[name] = result.final_total_parallelism
            engine.stop(deployment)
        assert results["streamtune"] <= results["ds2"]

    def test_latency_comparable_despite_fewer_workers(self, timely_pretrained):
        query = nexmark_query("q3", "timely")
        engine = TimelyCluster(seed=63)
        tuner = StreamTuneTuner(engine, timely_pretrained, seed=64)
        tuner.prepare(query)
        deployment = engine.deploy(
            query.flow, dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(3),
        )
        tuner.tune(deployment, query.rates_at(6))
        latencies = engine.sample_epoch_latencies(deployment, n_epochs=100)
        # StreamTune may settle inside the 85%-rule dead band (mild,
        # undetectable overload), so its latencies can sit above the
        # over-provisioned baselines — but must stay far from the 200 s
        # saturation cap ("comparable processing performance", §V-F).
        assert float(np.median(latencies)) < 60.0


class TestGlobalEncoderFallback:
    def test_single_cluster_pipeline(self, tiny_history):
        """§VII limited-data mode: one global encoder, no clustering."""
        artifact = pretrain(
            tiny_history[:200], max_parallelism=100,
            n_clusters=1, epochs=5, seed=71,
        )
        engine = FlinkCluster(seed=72)
        tuner = StreamTuneTuner(engine, artifact, seed=73)
        query = nexmark_query("q1", "flink")
        tuner.prepare(query)
        deployment = engine.deploy(
            query.flow, dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(4),
        )
        result = tuner.tune(deployment, query.rates_at(4))
        assert result.steps
        assert not engine.measure(deployment).has_backpressure
