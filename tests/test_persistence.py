"""Tests for history/model/artifact persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.persistence import (
    load_history,
    load_model,
    load_pretrained,
    save_history,
    save_model,
    save_pretrained,
)
from repro.core.tuner import StreamTuneTuner
from repro.engines.flink import FlinkCluster
from repro.gnn.model import BottleneckGNN, EncoderConfig
from repro.workloads.nexmark import nexmark_query
from tests.test_gnn import toy_sample


class TestHistoryPersistence:
    def test_round_trip(self, tiny_history, tmp_path):
        path = tmp_path / "history.jsonl"
        save_history(tiny_history[:50], path)
        restored = load_history(path)
        assert len(restored) == 50
        for original, loaded in zip(tiny_history[:50], restored):
            assert loaded.parallelisms == original.parallelisms
            assert loaded.labels == original.labels
            assert loaded.source_rates == original.source_rates
            assert (
                loaded.flow.structural_signature()
                == original.flow.structural_signature()
            )

    def test_creates_parent_directories(self, tiny_history, tmp_path):
        path = tmp_path / "deep" / "nested" / "history.jsonl"
        save_history(tiny_history[:2], path)
        assert len(load_history(path)) == 2

    def test_empty_history(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_history([], path)
        assert load_history(path) == []


class TestModelPersistence:
    def test_weights_round_trip_exactly(self, tmp_path):
        model = BottleneckGNN(EncoderConfig(input_dim=10, hidden_dim=8, seed=3))
        sample = toy_sample()
        expected = model.predict_probabilities(sample)
        path = tmp_path / "model.npz"
        save_model(model, path)
        restored = load_model(path)
        assert np.array_equal(restored.predict_probabilities(sample), expected)

    def test_config_round_trip(self, tmp_path):
        config = EncoderConfig(
            input_dim=7, hidden_dim=6, n_message_passing=3,
            head_hidden_dim=4, jumping_knowledge=False, fuse_per_step=True,
            seed=9,
        )
        path = tmp_path / "model.npz"
        save_model(BottleneckGNN(config), path)
        assert load_model(path).config == config

    def test_corrupted_shapes_rejected(self, tmp_path):
        small = BottleneckGNN(EncoderConfig(input_dim=4, hidden_dim=4))
        big = BottleneckGNN(EncoderConfig(input_dim=4, hidden_dim=16))
        path = tmp_path / "model.npz"
        save_model(small, path)
        import json

        import numpy as np

        data = dict(np.load(path))
        meta = json.loads(bytes(data["__config__"]).decode())
        meta["hidden_dim"] = 16
        data["__config__"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="shape mismatch"):
            load_model(path)
        del big


class TestArtifactPersistence:
    def test_round_trip_preserves_behaviour(self, tiny_pretrained, tmp_path):
        directory = tmp_path / "artifact"
        save_pretrained(tiny_pretrained, directory)
        restored = load_pretrained(directory)

        assert restored.n_clusters == tiny_pretrained.n_clusters
        assert restored.max_parallelism == tiny_pretrained.max_parallelism

        # Cluster assignment agrees for every corpus query seen in training.
        for record in tiny_pretrained.records_by_cluster[0][:5]:
            assert restored.assign_cluster(record.flow) == (
                tiny_pretrained.assign_cluster(record.flow)
            )

        # Encoder outputs are bit-identical.
        record = tiny_pretrained.records_by_cluster[0][0]
        sample = tiny_pretrained.sample_for(record)
        original = tiny_pretrained.encoders[0].encode(sample)
        loaded = restored.encoders[0].encode(restored.sample_for(record))
        assert np.array_equal(original, loaded)

    def test_loaded_artifact_tunes(self, tiny_pretrained, tmp_path):
        directory = tmp_path / "artifact"
        save_pretrained(tiny_pretrained, directory)
        restored = load_pretrained(directory)

        engine = FlinkCluster(seed=81)
        tuner = StreamTuneTuner(engine, restored, seed=82)
        query = nexmark_query("q1", "flink")
        tuner.prepare(query)
        deployment = engine.deploy(
            query.flow, dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(4),
        )
        result = tuner.tune(deployment, query.rates_at(4))
        assert result.steps
        assert not engine.measure(deployment).has_backpressure
