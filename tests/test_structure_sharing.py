"""Cross-query structure-signature sharing of tuning cache entries.

PR 5 keys distilled operating points and parallelism-agnostic embeddings
by the dataflow's *full-fidelity* tuning signature instead of its name,
so campaigns over structurally identical queries share one cached entry.
Sharing is only sound if (a) the signature captures every feature-
relevant field (unlike the GED-level structural signature) and (b) a
query's results are unchanged by who populated the cache first.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.finetune import shared_structure_key
from repro.service import CampaignSpec, TuningService
from repro.workloads import nexmark_query
from repro.workloads.query import StreamingQuery
from tests.conftest import build_linear_flow, build_window_flow


class TestTuningSignature:
    def test_renamed_flow_shares_the_signature(self):
        original = build_linear_flow("one")
        renamed = build_linear_flow("two")
        assert original.tuning_signature() == renamed.tuning_signature()

    def test_renamed_operators_share_the_signature(self):
        original = build_linear_flow()
        clone = original.copy(name="clone")
        assert original.tuning_signature() == clone.tuning_signature()

    def test_feature_relevant_fields_split_the_signature(self):
        # selectivity never enters the GED labels (structural_signature is
        # deliberately lossy) but does change engine behaviour — the
        # tuning signature must keep such flows apart.
        plain = build_linear_flow(selectivity=0.5)
        skewed = build_linear_flow(selectivity=0.9)
        assert plain.structural_signature() == skewed.structural_signature()
        assert plain.tuning_signature() != skewed.tuning_signature()

    def test_different_structures_differ(self):
        assert (
            build_linear_flow().tuning_signature()
            != build_window_flow().tuning_signature()
        )


class TestSharedStructureKey:
    def test_renamed_flows_canonicalise_to_one_key(self):
        original = build_linear_flow("one")
        renamed = build_linear_flow("two")
        rates = {"src": 1000.0}
        assert shared_structure_key(original, 0, rates) == shared_structure_key(
            renamed, 0, rates
        )

    def test_rates_split_keys(self):
        flow = build_linear_flow()
        assert shared_structure_key(flow, 0, {"src": 1.0}) != shared_structure_key(
            flow, 0, {"src": 2.0}
        )

    def test_cluster_splits_keys(self):
        flow = build_linear_flow()
        rates = {"src": 1.0}
        assert shared_structure_key(flow, 0, rates) != shared_structure_key(
            flow, 1, rates
        )

    def test_foreign_rate_names_are_ignored(self):
        # A rate for an operator the flow does not contain cannot affect
        # the encoding, so it must not split the cache key either.
        flow = build_linear_flow()
        assert shared_structure_key(flow, 0, {"src": 1.0}) == shared_structure_key(
            flow, 0, {"src": 1.0, "elsewhere": 9.0}
        )


def _renamed_query(query: StreamingQuery, name: str) -> StreamingQuery:
    """A structurally identical query under a different job name."""
    return dataclasses.replace(query, name=name, flow=query.flow.copy(name=name))


def _steps(outcome):
    return [
        [step.parallelisms for step in process.steps]
        for process in outcome.result.processes
    ]


class TestServiceSharing:
    def _query(self):
        return nexmark_query("q1", "flink")

    def _spec(self, query, seed=41):
        return CampaignSpec(
            query=query, multipliers=(3, 7), engine_seed=31, seed=seed
        )

    def test_identical_structures_share_distill_and_embed_entries(
        self, tiny_pretrained
    ):
        query = self._query()
        twin = _renamed_query(query, "q1_twin")
        service = TuningService(tiny_pretrained, backend="sequential")
        service.run([self._spec(query), self._spec(twin)])
        stats = service.cache_stats()
        # The twin's iterations hit the entries the first campaign built:
        # distinct job names, one cache entry per (structure, rates).
        assert stats["distill"]["hits"] >= stats["distill"]["misses"]
        assert stats["embed"]["hits"] >= stats["embed"]["misses"]
        assert stats["assign"]["hits"] >= 1

    def test_shared_rows_equal_per_query_rows(self, tiny_pretrained):
        # The renamed twin tuned *alongside* the original (warm shared
        # entries) must recommend exactly what it recommends when tuned
        # *alone* on cold caches — a cache hit is a recomputation.
        query = self._query()
        twin = _renamed_query(query, "q1_twin")
        alone = TuningService(tiny_pretrained, backend="sequential").run(
            [self._spec(twin)]
        )
        together = TuningService(tiny_pretrained, backend="sequential").run(
            [self._spec(query), self._spec(twin)]
        )
        assert _steps(together[1]) == _steps(alone[0])

    def test_shared_entries_are_bit_identical_values(self, tiny_pretrained):
        # Directly compare the shared cached values against fresh
        # recomputation for the renamed flow.
        from repro.core.finetune import agnostic_embeddings, distill_rows

        query = self._query()
        twin = _renamed_query(query, "q1_twin")
        cluster = tiny_pretrained.assign_cluster(query.flow)
        assert tiny_pretrained.assign_cluster(twin.flow) == cluster
        encoder = tiny_pretrained.encoders[cluster]
        rates = query.rates_at(3.0)
        twin_rates = twin.rates_at(3.0)
        shared = shared_structure_key(query.flow, cluster, rates)
        assert shared == shared_structure_key(twin.flow, cluster, twin_rates)
        np.testing.assert_array_equal(
            agnostic_embeddings(tiny_pretrained, encoder, query.flow, rates),
            agnostic_embeddings(tiny_pretrained, encoder, twin.flow, twin_rates),
        )
        ours = distill_rows(tiny_pretrained, encoder, query.flow, rates)
        theirs = distill_rows(tiny_pretrained, encoder, twin.flow, twin_rates)
        assert ours.labels == theirs.labels
        np.testing.assert_array_equal(
            np.stack(ours.features), np.stack(theirs.features)
        )


class TestSnapshotVersionBump:
    def test_v1_snapshots_are_rejected_by_name(self, tmp_path):
        # The key/value layout changed (structure-keyed sections, matrix-
        # only embed values), so v1 snapshots must be refused loudly.
        import pickle

        from repro.service.cache import SnapshotError, TuningCacheSet

        path = tmp_path / "old.pkl"
        payload = {
            "format": "repro.service.TuningCacheSet",
            "version": 1,
            "sections": {},
        }
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(SnapshotError, match="version 1"):
            TuningCacheSet.load(path)
