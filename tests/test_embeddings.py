"""Tests for embedding-based operator representations (§VII extension)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.embeddings import (
    BUILTIN_PROPERTIES,
    PROPERTY_DIMENSION,
    OperatorProperties,
    OperatorTaxonomy,
    SemanticFeatureEncoder,
    embedding_generalisation_gap,
    interpolate_properties,
    log_odds,
    property_distance_matrix,
)
from repro.dataflow.features import FeatureEncoder
from repro.dataflow.operators import OperatorSpec, OperatorType


class TestOperatorProperties:
    def test_vector_has_fixed_dimension(self):
        for properties in BUILTIN_PROPERTIES.values():
            assert properties.vector().shape == (PROPERTY_DIMENSION,)

    def test_rejects_out_of_range_fields(self):
        with pytest.raises(ValueError, match="must be in"):
            OperatorProperties(
                emits=1.5, consumes=1.0, stateful=0.0, windowed=0.0,
                keyed=0.0, fan_in=0.0, amplification=0.5, cost_class=0.0,
            )

    def test_every_builtin_type_is_covered(self):
        assert set(BUILTIN_PROPERTIES) == {t.value for t in OperatorType}

    def test_vector_field_order_matches_as_dict(self):
        properties = BUILTIN_PROPERTIES[OperatorType.JOIN.value]
        assert np.allclose(
            properties.vector(), list(properties.as_dict().values())
        )


class TestOperatorTaxonomy:
    def test_contains_builtins(self):
        taxonomy = OperatorTaxonomy()
        assert "map" in taxonomy
        assert "window_join" in taxonomy
        assert "quantum_sort" not in taxonomy

    def test_register_new_kind(self):
        taxonomy = OperatorTaxonomy()
        dedupe = interpolate_properties(taxonomy, {"filter": 0.5, "aggregate": 0.5})
        taxonomy.register("dedupe", dedupe)
        assert "dedupe" in taxonomy
        assert taxonomy.vector_for("dedupe").shape == (PROPERTY_DIMENSION,)

    def test_register_rejects_silent_redefinition(self):
        taxonomy = OperatorTaxonomy()
        changed = interpolate_properties(taxonomy, {"join": 1.0})
        with pytest.raises(ValueError, match="already registered"):
            taxonomy.register("map", changed)

    def test_register_idempotent_for_identical_properties(self):
        taxonomy = OperatorTaxonomy()
        taxonomy.register("map", BUILTIN_PROPERTIES["map"])   # no raise

    def test_register_rejects_empty_name(self):
        taxonomy = OperatorTaxonomy()
        with pytest.raises(ValueError, match="non-empty"):
            taxonomy.register("", BUILTIN_PROPERTIES["map"])

    def test_unknown_kind_raises_with_known_kinds_listed(self):
        taxonomy = OperatorTaxonomy()
        with pytest.raises(KeyError, match="register"):
            taxonomy.properties_for("teleport")

    def test_similarity_is_symmetric_and_unit_on_self(self):
        taxonomy = OperatorTaxonomy()
        assert taxonomy.similarity("map", "map") == pytest.approx(1.0)
        ab = taxonomy.similarity("map", "flat_map")
        ba = taxonomy.similarity("flat_map", "map")
        assert ab == pytest.approx(ba)

    def test_flat_map_is_nearer_to_map_than_to_window_join(self):
        taxonomy = OperatorTaxonomy()
        to_map = taxonomy.similarity("flat_map", "map")
        to_wjoin = taxonomy.similarity("flat_map", "window_join")
        assert to_map > to_wjoin

    def test_nearest_known_finds_behavioural_neighbour(self):
        taxonomy = OperatorTaxonomy()
        assert taxonomy.nearest_known("flat_map") == "map"
        assert taxonomy.nearest_known("window_join") == "join"

    def test_nearest_known_respects_candidate_restriction(self):
        taxonomy = OperatorTaxonomy()
        nearest = taxonomy.nearest_known("flat_map", among=["filter", "window_join"])
        assert nearest == "filter"

    def test_nearest_known_without_candidates_raises(self):
        taxonomy = OperatorTaxonomy()
        with pytest.raises(ValueError, match="no candidate"):
            taxonomy.nearest_known("map", among=["map"])

    def test_distance_matrix_is_symmetric_with_zero_diagonal(self):
        taxonomy = OperatorTaxonomy()
        matrix, kinds = property_distance_matrix(taxonomy)
        assert matrix.shape == (len(kinds), len(kinds))
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)


class TestInterpolateProperties:
    def test_blend_stays_in_unit_interval(self):
        taxonomy = OperatorTaxonomy()
        blended = interpolate_properties(
            taxonomy, {"map": 0.7, "window_aggregate": 0.3}
        )
        for value in blended.as_dict().values():
            assert 0.0 <= value <= 1.0

    def test_single_kind_blend_is_identity(self):
        taxonomy = OperatorTaxonomy()
        blended = interpolate_properties(taxonomy, {"join": 1.0})
        assert blended == BUILTIN_PROPERTIES["join"]

    def test_weights_normalised(self):
        taxonomy = OperatorTaxonomy()
        a = interpolate_properties(taxonomy, {"map": 1.0, "filter": 1.0})
        b = interpolate_properties(taxonomy, {"map": 5.0, "filter": 5.0})
        assert np.allclose(a.vector(), b.vector())

    def test_rejects_empty_and_negative_weights(self):
        taxonomy = OperatorTaxonomy()
        with pytest.raises(ValueError):
            interpolate_properties(taxonomy, {})
        with pytest.raises(ValueError):
            interpolate_properties(taxonomy, {"map": -1.0})


class TestSemanticFeatureEncoder:
    def test_dimension_swaps_one_hot_for_properties(self):
        one_hot = FeatureEncoder()
        semantic = SemanticFeatureEncoder()
        expected = one_hot.dimension - len(OperatorType) + PROPERTY_DIMENSION
        assert semantic.dimension == expected

    def test_encoding_length_matches_dimension(self):
        encoder = SemanticFeatureEncoder()
        spec = OperatorSpec(name="f", op_type=OperatorType.FILTER)
        vector = encoder.encode_operator(spec, source_rate=1000.0)
        assert vector.shape == (encoder.dimension,)

    def test_semantic_block_leads_the_vector(self):
        encoder = SemanticFeatureEncoder()
        spec = OperatorSpec(name="f", op_type=OperatorType.FILTER)
        vector = encoder.encode_operator(spec)
        expected = encoder.taxonomy.vector_for("filter")
        assert np.allclose(vector[:PROPERTY_DIMENSION], expected)

    def test_non_type_blocks_agree_with_one_hot_encoder(self):
        """Everything after the type block must be identical to the parent."""
        one_hot = FeatureEncoder()
        semantic = SemanticFeatureEncoder()
        spec = OperatorSpec(name="m", op_type=OperatorType.MAP, tuple_width_in=128.0)
        base = one_hot.encode_operator(spec, source_rate=5e4)
        lifted = semantic.encode_operator(spec, source_rate=5e4)
        assert np.allclose(lifted[PROPERTY_DIMENSION:], base[len(OperatorType):])

    def test_encode_dataflow_matches_topological_order(self, linear_flow):
        encoder = SemanticFeatureEncoder()
        matrix, order = encoder.encode_dataflow(linear_flow, {"src": 1000.0})
        assert order == linear_flow.topological_order()
        assert matrix.shape == (len(order), encoder.dimension)

    def test_behaviourally_close_kinds_encode_close(self):
        encoder = SemanticFeatureEncoder()
        map_vec = encoder.encode_operator(
            OperatorSpec(name="a", op_type=OperatorType.MAP)
        )
        flat_vec = encoder.encode_operator(
            OperatorSpec(name="b", op_type=OperatorType.FLAT_MAP)
        )
        wjoin_vec = encoder.encode_operator(
            OperatorSpec(
                name="c",
                op_type=OperatorType.JOIN,
            )
        )
        assert np.linalg.norm(map_vec - flat_vec) < np.linalg.norm(map_vec - wjoin_vec)

    def test_pluggable_into_pretraining(self, tiny_history):
        """The encoder drops into pretrain() without code changes."""
        from repro.core import pretrain

        model = pretrain(
            tiny_history[:60],
            max_parallelism=100,
            n_clusters=1,
            epochs=2,
            seed=3,
            feature_encoder=SemanticFeatureEncoder(),
        )
        assert model.feature_encoder.dimension == SemanticFeatureEncoder().dimension


class TestGeneralisationGap:
    def test_gap_positive_when_semantic_scores_are_better(self):
        labels = np.array([1.0, 0.0, 1.0, 0.0])
        semantic = np.array([0.9, 0.1, 0.8, 0.2])
        one_hot = np.array([0.5, 0.5, 0.5, 0.5])
        report = embedding_generalisation_gap(one_hot, semantic, labels)
        assert report["gap"] > 0
        assert report["n_heldout"] == 4

    def test_identical_scores_give_zero_gap(self):
        labels = np.array([1.0, 0.0])
        scores = np.array([0.7, 0.3])
        report = embedding_generalisation_gap(scores, scores, labels)
        assert report["gap"] == pytest.approx(0.0)

    def test_rejects_mismatched_lengths_and_empty(self):
        with pytest.raises(ValueError):
            embedding_generalisation_gap(np.ones(2), np.ones(3), np.ones(2))
        with pytest.raises(ValueError):
            embedding_generalisation_gap(np.ones(0), np.ones(0), np.ones(0))

    def test_extreme_scores_do_not_overflow(self):
        labels = np.array([1.0, 0.0])
        report = embedding_generalisation_gap(
            np.array([0.0, 1.0]), np.array([1.0, 0.0]), labels
        )
        assert np.isfinite(report["one_hot_bce"])
        assert np.isfinite(report["semantic_bce"])


class TestLogOdds:
    def test_symmetry(self):
        assert log_odds(0.5) == pytest.approx(0.0)
        assert log_odds(0.9) == pytest.approx(-log_odds(0.1))

    def test_clipping_keeps_finite(self):
        assert np.isfinite(log_odds(0.0))
        assert np.isfinite(log_odds(1.0))


@settings(max_examples=30, deadline=None)
@given(
    weights=st.dictionaries(
        st.sampled_from(sorted(BUILTIN_PROPERTIES)),
        st.floats(min_value=0.01, max_value=10.0),
        min_size=1,
        max_size=4,
    )
)
def test_property_interpolation_always_valid(weights):
    """Any convex blend of registered kinds is itself a valid property set."""
    taxonomy = OperatorTaxonomy()
    blended = interpolate_properties(taxonomy, weights)
    vector = blended.vector()
    assert np.all(vector >= 0.0)
    assert np.all(vector <= 1.0)
