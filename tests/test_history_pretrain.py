"""Tests for execution histories and the pre-training pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.history import ExecutionRecord, HistoryGenerator
from repro.core.pretrain import pretrain
from repro.engines.flink import FlinkCluster
from repro.workloads.nexmark import nexmark_queries


class TestHistoryGenerator:
    def test_record_fields_populated(self, tiny_history):
        record = tiny_history[0]
        assert record.engine_name == "flink"
        assert set(record.parallelisms) == set(record.flow.operator_names)
        assert set(record.labels) == set(record.flow.operator_names)
        assert record.job_latency_seconds > 0

    def test_parallelism_in_paper_range(self, tiny_history):
        for record in tiny_history[:100]:
            for p in record.parallelisms.values():
                assert 1 <= p <= 60

    def test_rates_inside_band(self, tiny_history):
        for record in tiny_history[:100]:
            # rates are multiplier * Wu with multiplier in (1, 10)
            assert all(rate > 0 for rate in record.source_rates.values())

    def test_labels_are_valid(self, tiny_history):
        for record in tiny_history[:200]:
            assert set(record.labels.values()) <= {-1, 0, 1}

    def test_some_bottlenecks_found(self, tiny_history):
        assert sum(r.n_bottlenecks for r in tiny_history) > 0

    def test_no_backpressure_means_all_zero(self, tiny_history):
        for record in tiny_history[:200]:
            if not record.has_backpressure:
                assert set(record.labels.values()) == {0}

    def test_deterministic_by_seed(self):
        queries = nexmark_queries("flink")
        a = HistoryGenerator(FlinkCluster(seed=5), seed=6).generate(queries, 20)
        b = HistoryGenerator(FlinkCluster(seed=5), seed=6).generate(queries, 20)
        for ra, rb in zip(a, b):
            assert ra.parallelisms == rb.parallelisms
            assert ra.labels == rb.labels

    def test_invalid_args(self):
        generator = HistoryGenerator(FlinkCluster(seed=1))
        with pytest.raises(ValueError):
            generator.generate([], 10)
        with pytest.raises(ValueError):
            generator.generate(nexmark_queries("flink"), 0)
        with pytest.raises(ValueError):
            HistoryGenerator(FlinkCluster(seed=1), parallelism_range=(0, 5))

    def test_range_capped_by_engine(self):
        engine = FlinkCluster(task_managers=5, slots_per_task_manager=2, seed=1)
        generator = HistoryGenerator(engine, parallelism_range=(1, 60), seed=2)
        record = generator.run_once(nexmark_queries("flink")[0])
        assert max(record.parallelisms.values()) <= 10


class TestRecordSerde:
    def test_round_trip(self, tiny_history):
        record = tiny_history[0]
        restored = ExecutionRecord.from_dict(record.to_dict())
        assert restored.parallelisms == record.parallelisms
        assert restored.labels == record.labels
        assert restored.flow.structural_signature() == record.flow.structural_signature()
        assert restored.job_latency_seconds == record.job_latency_seconds


class TestPretrain:
    def test_artifact_shape(self, tiny_pretrained):
        assert tiny_pretrained.n_clusters == 2
        assert len(tiny_pretrained.encoders) == 2
        assert len(tiny_pretrained.records_by_cluster) == 2

    def test_cluster_assignment_valid(self, tiny_pretrained, corpus):
        for query in corpus[:10]:
            cluster = tiny_pretrained.assign_cluster(query.flow)
            assert 0 <= cluster < tiny_pretrained.n_clusters

    def test_encoder_for_returns_matching_pair(self, tiny_pretrained, corpus):
        cluster, encoder = tiny_pretrained.encoder_for(corpus[0].flow)
        assert encoder is tiny_pretrained.encoders[cluster]

    def test_training_reports_improve(self, tiny_pretrained):
        for report in tiny_pretrained.reports:
            assert report.final_accuracy > 0.7

    def test_sample_for_round_trip(self, tiny_pretrained, tiny_history):
        sample = tiny_pretrained.sample_for(tiny_history[0])
        assert sample.n_nodes == len(tiny_history[0].flow)

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            pretrain([], max_parallelism=100)

    def test_global_encoder_bypass(self, tiny_history):
        """§VII fallback: n_clusters=1 trains a single global encoder."""
        artifact = pretrain(
            tiny_history[:150], max_parallelism=100, n_clusters=1, epochs=3, seed=1
        )
        assert artifact.n_clusters == 1
        assert artifact.assign_cluster(tiny_history[0].flow) == 0
