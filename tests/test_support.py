"""Tests for pre-training support diagnostics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.support import (
    BOUNDARY_BAND,
    DimensionSupport,
    SupportProfile,
    cluster_support_profiles,
    preflight_check,
)


class TestDimensionSupport:
    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError, match="high must be >= low"):
            DimensionSupport("x", 2.0, 1.0)

    def test_inside_near_and_outside(self):
        support = DimensionSupport("rate", 100.0, 200.0)
        assert support.verdict(150.0) == "inside"
        assert support.verdict(100.0 + 1.0) == "near-boundary"
        assert support.verdict(199.5) == "near-boundary"
        assert support.verdict(50.0) == "extrapolating"
        assert support.verdict(250.0) == "extrapolating"

    def test_band_width_matches_constant(self):
        support = DimensionSupport("rate", 0.0, 100.0)
        inside_edge = BOUNDARY_BAND * 100.0
        assert support.verdict(inside_edge - 0.1) == "near-boundary"
        assert support.verdict(inside_edge + 0.1) == "inside"

    def test_degenerate_support_flags_boundary(self):
        support = DimensionSupport("rate", 5.0, 5.0)
        assert support.verdict(5.0) == "near-boundary"
        assert support.verdict(6.0) == "extrapolating"

    def test_margin_sign(self):
        support = DimensionSupport("rate", 10.0, 20.0)
        assert support.margin(15.0) == 5.0
        assert support.margin(9.0) == -1.0
        assert support.margin(25.0) == -5.0


class TestSupportProfile:
    def test_from_records_spans_history(self, tiny_history):
        profile = SupportProfile.from_records(tiny_history[:50])
        totals = [sum(r.source_rates.values()) for r in tiny_history[:50]]
        assert profile.rate_support.low == min(totals)
        assert profile.rate_support.high == max(totals)

    def test_from_empty_records_raises(self):
        with pytest.raises(ValueError, match="empty"):
            SupportProfile.from_records([])

    def test_check_rates_only(self, tiny_history):
        profile = SupportProfile.from_records(tiny_history[:50])
        mid = (profile.rate_support.low + profile.rate_support.high) / 2
        verdict = profile.check({"src": mid})
        assert verdict.per_dimension["total_source_rate"] == "inside"
        assert "parallelism" not in verdict.per_dimension
        assert verdict.is_safe

    def test_check_flags_extrapolating_rates(self, tiny_history):
        profile = SupportProfile.from_records(tiny_history[:50])
        verdict = profile.check({"src": profile.rate_support.high * 10})
        assert verdict.verdict == "extrapolating"
        assert not verdict.is_safe
        assert verdict.margins["total_source_rate"] < 0

    def test_check_includes_parallelism_when_given(self, tiny_history):
        profile = SupportProfile.from_records(tiny_history[:50])
        mid = (profile.rate_support.low + profile.rate_support.high) / 2
        huge_degree = int(profile.parallelism_support.high) * 3
        verdict = profile.check({"src": mid}, {"op": huge_degree})
        assert verdict.per_dimension["parallelism"] == "extrapolating"
        assert verdict.verdict == "extrapolating"

    def test_overall_verdict_is_worst_dimension(self, tiny_history):
        profile = SupportProfile.from_records(tiny_history[:50])
        mid = (profile.rate_support.low + profile.rate_support.high) / 2
        mid_degree = int(
            (profile.parallelism_support.low + profile.parallelism_support.high) / 2
        )
        verdict = profile.check({"src": mid}, {"op": mid_degree})
        assert verdict.verdict == "inside"


class TestPretrainedIntegration:
    def test_one_profile_per_cluster(self, tiny_pretrained):
        profiles = cluster_support_profiles(tiny_pretrained)
        assert len(profiles) == tiny_pretrained.n_clusters

    def test_preflight_check_roundtrip(self, tiny_pretrained, tiny_history):
        record = tiny_history[0]
        verdict = preflight_check(
            tiny_pretrained, record.flow, record.source_rates
        )
        # A rate drawn from the history itself can never extrapolate.
        assert verdict.per_dimension["total_source_rate"] in (
            "inside",
            "near-boundary",
        )

    def test_preflight_flags_unseen_extreme(self, tiny_pretrained, tiny_history):
        record = tiny_history[0]
        extreme = {name: rate * 1e4 for name, rate in record.source_rates.items()}
        verdict = preflight_check(tiny_pretrained, record.flow, extreme)
        assert verdict.verdict == "extrapolating"


@settings(max_examples=40, deadline=None)
@given(
    low=st.floats(min_value=0.0, max_value=1e6),
    width=st.floats(min_value=0.0, max_value=1e6),
    value=st.floats(min_value=-1e7, max_value=1e7),
)
def test_dimension_verdict_margin_consistency(low, width, value):
    """Margin sign always agrees with the inside/outside classification."""
    support = DimensionSupport("x", low, low + width)
    verdict = support.verdict(value)
    margin = support.margin(value)
    if verdict == "extrapolating":
        assert margin < 0
    else:
        assert margin >= 0
