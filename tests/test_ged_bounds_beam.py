"""Tests for GED lower bounds, beam-search upper bounds, and prefiltering.

The critical invariant chain:  lower bound <= exact GED <= beam bound,
for every pair — exercised against exact values on small random DAGs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.graph import LogicalDataflow
from repro.dataflow.operators import OperatorSpec, OperatorType
from repro.ged import (
    beam_ged,
    beam_within,
    combined_bound,
    degree_sequence_bound,
    exact_ged,
    label_multiset_bound,
    prefilter_indices,
    similarity_search,
)
from repro.ged.view import as_view
from repro.utils.rng import seeded_rng

_CHAINABLE = [
    OperatorType.MAP,
    OperatorType.FLAT_MAP,
    OperatorType.FILTER,
    OperatorType.AGGREGATE,
]


def random_chain_flow(seed: int, max_middle: int = 4) -> LogicalDataflow:
    """source -> 1..max_middle random middle operators -> sink."""
    rng = seeded_rng(seed)
    flow = LogicalDataflow(f"rand_{seed}")
    middle = [
        OperatorSpec(
            name=f"op{i}",
            op_type=_CHAINABLE[int(rng.integers(len(_CHAINABLE)))],
            aggregate_function=__import__(
                "repro.dataflow.operators", fromlist=["AggregateFunction"]
            ).AggregateFunction.SUM,
        )
        for i in range(1 + int(rng.integers(max_middle)))
    ]
    flow.chain(
        OperatorSpec(name="src", op_type=OperatorType.SOURCE),
        *middle,
        OperatorSpec(name="sink", op_type=OperatorType.SINK),
    )
    flow.validate()
    return flow


class TestLowerBounds:
    def test_zero_on_identical_graphs(self, linear_flow):
        view = as_view(linear_flow)
        assert label_multiset_bound(view, view) == 0.0
        assert degree_sequence_bound(view, view) == 0.0
        assert combined_bound(linear_flow, linear_flow) == 0.0

    def test_label_bound_counts_substitutions(self, linear_flow, window_flow):
        bound = label_multiset_bound(as_view(linear_flow), as_view(window_flow))
        assert bound > 0

    def test_degree_bound_sees_structural_difference(self, linear_flow, diamond_flow):
        bound = degree_sequence_bound(as_view(linear_flow), as_view(diamond_flow))
        assert bound > 0

    @pytest.mark.parametrize("seed_pair", [(1, 2), (3, 9), (5, 11), (7, 20), (13, 4)])
    def test_bounds_are_admissible(self, seed_pair):
        a = random_chain_flow(seed_pair[0])
        b = random_chain_flow(seed_pair[1])
        exact = exact_ged(a, b)
        assert label_multiset_bound(as_view(a), as_view(b)) <= exact + 1e-9
        assert degree_sequence_bound(as_view(a), as_view(b)) <= exact + 1e-9
        assert combined_bound(a, b) <= exact + 1e-9

    def test_bounds_are_symmetric(self, linear_flow, diamond_flow):
        forward = combined_bound(linear_flow, diamond_flow)
        backward = combined_bound(diamond_flow, linear_flow)
        assert forward == pytest.approx(backward)


class TestPrefilter:
    def test_rejections_are_sound(self, linear_flow):
        dataset = [random_chain_flow(seed) for seed in range(8)]
        tau = 3.0
        survivors = set(prefilter_indices(linear_flow, dataset, tau))
        for index, graph in enumerate(dataset):
            if index not in survivors:
                assert exact_ged(linear_flow, graph) > tau

    def test_prefiltered_search_equals_plain_search(self, linear_flow):
        dataset = [random_chain_flow(seed) for seed in range(10)]
        tau = 4.0
        plain = similarity_search(linear_flow, dataset, tau)
        filtered = similarity_search(linear_flow, dataset, tau, prefilter=True)
        assert plain == filtered

    def test_negative_threshold_rejected(self, linear_flow):
        with pytest.raises(ValueError):
            prefilter_indices(linear_flow, [linear_flow], -1.0)


class TestBeamGED:
    def test_zero_on_identical_graphs(self, diamond_flow):
        assert beam_ged(diamond_flow, diamond_flow) == 0.0

    def test_rejects_bad_width(self, linear_flow):
        with pytest.raises(ValueError):
            beam_ged(linear_flow, linear_flow, beam_width=0)

    @pytest.mark.parametrize("seed_pair", [(1, 2), (3, 9), (5, 11), (7, 20)])
    def test_beam_upper_bounds_exact(self, seed_pair):
        a = random_chain_flow(seed_pair[0])
        b = random_chain_flow(seed_pair[1])
        exact = exact_ged(a, b)
        for width in (1, 4, 16):
            assert beam_ged(a, b, beam_width=width) >= exact - 1e-9

    @pytest.mark.parametrize("seed_pair", [(1, 2), (3, 9), (5, 11)])
    def test_wide_beam_reaches_exact(self, seed_pair):
        a = random_chain_flow(seed_pair[0])
        b = random_chain_flow(seed_pair[1])
        assert beam_ged(a, b, beam_width=256) == pytest.approx(exact_ged(a, b))

    def test_widening_never_hurts(self):
        a = random_chain_flow(21)
        b = random_chain_flow(34)
        bounds = [beam_ged(a, b, beam_width=w) for w in (1, 2, 8, 64)]
        assert all(x >= y - 1e-9 for x, y in zip(bounds, bounds[1:]))

    def test_beam_within_certifies_only_yes(self, linear_flow, diamond_flow):
        exact = exact_ged(linear_flow, diamond_flow)
        assert beam_within(linear_flow, diamond_flow, exact + 10, beam_width=64) is True
        # Below the true distance the beam can never certify membership.
        assert beam_within(linear_flow, diamond_flow, exact - 1, beam_width=64) is None

    def test_beam_within_validates_threshold(self, linear_flow):
        with pytest.raises(ValueError):
            beam_within(linear_flow, linear_flow, -0.5)


@settings(max_examples=20, deadline=None)
@given(
    seed_a=st.integers(min_value=0, max_value=60),
    seed_b=st.integers(min_value=0, max_value=60),
)
def test_bound_sandwich_property(seed_a, seed_b):
    """lower bound <= exact <= beam bound, on arbitrary DAG pairs."""
    a = random_chain_flow(seed_a, max_middle=3)
    b = random_chain_flow(seed_b, max_middle=3)
    exact = exact_ged(a, b)
    lower = combined_bound(a, b)
    upper = beam_ged(a, b, beam_width=8)
    assert lower <= exact + 1e-9
    assert exact <= upper + 1e-9
