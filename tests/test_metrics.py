"""Unit tests for the observation channel (noise, inflation, rules)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines.flow import solve_flow
from repro.engines.metrics import (
    JobTelemetry,
    MetricsChannel,
    ObservedOperatorMetrics,
)
from repro.engines.perf import PerformanceModel
from repro.utils.rng import seeded_rng
from tests.conftest import build_linear_flow

PERF = PerformanceModel()


def observe(flow, parallelisms, rates, noise_std=0.06, inflation=None, seed=3):
    truth = solve_flow(flow, parallelisms, rates, PERF)
    channel = MetricsChannel(seeded_rng(seed), noise_std=noise_std)
    inflation = inflation or dict.fromkeys(flow.operator_names, 1.0)
    observed = channel.observe(
        flow, truth, inflation, lambda f, n, d, t: False
    )
    return truth, observed


class TestNoise:
    def test_zero_noise_reports_truth(self, linear_flow):
        truth, observed = observe(
            linear_flow, {"src": 2, "filter": 30, "sink": 4}, {"src": 1e5},
            noise_std=0.0,
        )
        for name, metrics in observed.items():
            assert metrics.input_rate == pytest.approx(truth[name].served_in)
            assert metrics.busy_ms_per_second == pytest.approx(
                1000.0 * truth[name].busy_fraction
            )

    def test_noise_perturbs_rates(self, linear_flow):
        truth, observed = observe(
            linear_flow, {"src": 2, "filter": 30, "sink": 4}, {"src": 1e5}
        )
        assert observed["filter"].input_rate != truth["filter"].served_in
        # within a plausible multiplicative band
        ratio = observed["filter"].input_rate / truth["filter"].served_in
        assert 0.7 < ratio < 1.4

    def test_noise_deterministic_by_seed(self, linear_flow):
        _, a = observe(linear_flow, {"src": 2, "filter": 30, "sink": 4}, {"src": 1e5}, seed=9)
        _, b = observe(linear_flow, {"src": 2, "filter": 30, "sink": 4}, {"src": 1e5}, seed=9)
        assert a["filter"].input_rate == b["filter"].input_rate

    def test_invalid_noise_rejected(self):
        with pytest.raises(ValueError):
            MetricsChannel(seeded_rng(0), noise_std=-0.1)


class TestInflation:
    def test_busy_time_inflated(self, linear_flow):
        _, honest = observe(
            linear_flow, {"src": 4, "filter": 30, "sink": 4}, {"src": 1e6},
            noise_std=0.0,
        )
        _, inflated = observe(
            linear_flow, {"src": 4, "filter": 30, "sink": 4}, {"src": 1e6},
            noise_std=0.0,
            inflation={"src": 1.0, "filter": 3.0, "sink": 1.0},
        )
        assert inflated["filter"].busy_ms_per_second == pytest.approx(
            min(1000.0, 3.0 * honest["filter"].busy_ms_per_second)
        )
        assert inflated["src"].busy_ms_per_second == pytest.approx(
            honest["src"].busy_ms_per_second
        )

    def test_inflation_deflates_true_rate_estimate(self, linear_flow):
        _, honest = observe(
            linear_flow, {"src": 4, "filter": 10, "sink": 4}, {"src": 1e6},
            noise_std=0.0,
        )
        _, inflated = observe(
            linear_flow, {"src": 4, "filter": 10, "sink": 4}, {"src": 1e6},
            noise_std=0.0, inflation={"src": 1.0, "filter": 2.0, "sink": 1.0},
        )
        assert (
            inflated["filter"].true_processing_rate
            < honest["filter"].true_processing_rate
        )


class TestObservedMetrics:
    def test_cpu_load_bounded(self):
        metrics = ObservedOperatorMetrics(
            name="x", parallelism=2, input_rate=10.0, output_rate=5.0,
            busy_ms_per_second=1500.0, idle_ms_per_second=0.0,
            backpressured_ms_per_second=0.0, is_backpressured=False,
        )
        assert metrics.cpu_load == 1.0

    def test_true_rate_zero_when_idle(self):
        metrics = ObservedOperatorMetrics(
            name="x", parallelism=1, input_rate=0.0, output_rate=0.0,
            busy_ms_per_second=0.0, idle_ms_per_second=1000.0,
            backpressured_ms_per_second=0.0, is_backpressured=False,
        )
        assert metrics.true_processing_rate == 0.0

    def test_true_rate_extrapolates(self):
        metrics = ObservedOperatorMetrics(
            name="x", parallelism=1, input_rate=500.0, output_rate=500.0,
            busy_ms_per_second=250.0, idle_ms_per_second=750.0,
            backpressured_ms_per_second=0.0, is_backpressured=False,
        )
        assert metrics.true_processing_rate == pytest.approx(2000.0)


class TestJobTelemetry:
    def test_lookup_and_backpressured_listing(self, linear_flow):
        _, observed = observe(linear_flow, {"src": 2, "filter": 30, "sink": 4}, {"src": 1e5})
        telemetry = JobTelemetry(
            job_name="j", operators=observed, has_backpressure=False
        )
        assert telemetry["filter"].name == "filter"
        assert telemetry.backpressured_operators() == []
