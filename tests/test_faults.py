"""Failure-injection tests: lost instances, degraded capacity, recovery."""

from __future__ import annotations

import pytest

from repro.dataflow.operators import OperatorSpec, OperatorType
from repro.engines.base import EngineError
from repro.engines.faults import DegradedPerformanceModel, FaultInjectingFlink
from repro.engines.perf import PerformanceModel


@pytest.fixture()
def faulty():
    return FaultInjectingFlink(seed=11, noise_std=0.0)


def deploy_linear(engine, linear_flow, filter_p=6, rate_fraction=0.8):
    """Deploy with the filter sized so it just sustains the rate."""
    spec = linear_flow.operator("filter")
    sustainable = engine.perf.processing_ability(spec, filter_p)
    rates = {"src": sustainable * rate_fraction}
    parallelisms = {"src": 2, "filter": filter_p, "sink": 2}
    return engine.deploy(linear_flow, parallelisms, rates)


class TestDegradedPerformanceModel:
    def test_capacity_shrinks_by_lost_instances(self):
        base = PerformanceModel()
        spec = OperatorSpec(name="f", op_type=OperatorType.FILTER)
        degraded = DegradedPerformanceModel(base, {"f": 3})
        assert degraded.processing_ability(spec, 8) == pytest.approx(
            base.processing_ability(spec, 5)
        )

    def test_never_below_one_instance(self):
        base = PerformanceModel()
        spec = OperatorSpec(name="f", op_type=OperatorType.FILTER)
        degraded = DegradedPerformanceModel(base, {"f": 10})
        assert degraded.processing_ability(spec, 2) == pytest.approx(
            base.processing_ability(spec, 1)
        )

    def test_unaffected_operator_full_speed(self):
        base = PerformanceModel()
        spec = OperatorSpec(name="g", op_type=OperatorType.MAP)
        degraded = DegradedPerformanceModel(base, {"f": 3})
        assert degraded.processing_ability(spec, 4) == base.processing_ability(spec, 4)

    def test_min_parallelism_compensates_for_losses(self):
        base = PerformanceModel()
        spec = OperatorSpec(name="f", op_type=OperatorType.FILTER)
        demand = base.processing_ability(spec, 6)
        degraded = DegradedPerformanceModel(base, {"f": 2})
        assert degraded.min_parallelism_for(spec, demand, 100) == (
            base.min_parallelism_for(spec, demand, 100) + 2
        )

    def test_rejects_negative_losses(self):
        with pytest.raises(ValueError):
            DegradedPerformanceModel(PerformanceModel(), {"f": -1})


class TestFaultLifecycle:
    def test_fault_creates_backpressure(self, faulty, linear_flow):
        deployment = deploy_linear(faulty, linear_flow)
        assert not faulty.ground_truth(deployment).has_backpressure
        faulty.fail_instances(deployment, "filter", 3)
        assert faulty.ground_truth(deployment).has_backpressure
        assert faulty.lost_instances(deployment) == {"filter": 3}

    def test_heal_restores_capacity(self, faulty, linear_flow):
        deployment = deploy_linear(faulty, linear_flow)
        faulty.fail_instances(deployment, "filter", 3)
        faulty.heal_instances(deployment, "filter")
        assert not faulty.ground_truth(deployment).has_backpressure
        assert faulty.lost_instances(deployment) == {}

    def test_heal_all(self, faulty, linear_flow):
        deployment = deploy_linear(faulty, linear_flow)
        faulty.fail_instances(deployment, "filter", 1)
        faulty.fail_instances(deployment, "sink", 1)
        faulty.heal_instances(deployment)
        assert faulty.lost_instances(deployment) == {}

    def test_restart_reschedules_and_clears_faults(self, faulty, linear_flow):
        deployment = deploy_linear(faulty, linear_flow)
        faulty.fail_instances(deployment, "filter", 3)
        faulty.reconfigure(deployment, dict(deployment.parallelisms))
        assert faulty.lost_instances(deployment) == {}
        assert not faulty.ground_truth(deployment).has_backpressure

    def test_cannot_fail_every_instance(self, faulty, linear_flow):
        deployment = deploy_linear(faulty, linear_flow)
        with pytest.raises(EngineError, match="survive"):
            faulty.fail_instances(deployment, "filter", 6)

    def test_cumulative_failures_respect_survivor_rule(self, faulty, linear_flow):
        deployment = deploy_linear(faulty, linear_flow)
        faulty.fail_instances(deployment, "filter", 4)
        with pytest.raises(EngineError, match="survive"):
            faulty.fail_instances(deployment, "filter", 2)

    def test_unknown_operator_and_bad_count(self, faulty, linear_flow):
        deployment = deploy_linear(faulty, linear_flow)
        with pytest.raises(EngineError, match="unknown operator"):
            faulty.fail_instances(deployment, "nope")
        with pytest.raises(EngineError, match=">= 1"):
            faulty.fail_instances(deployment, "filter", 0)

    def test_faults_are_per_deployment(self, faulty, linear_flow):
        first = deploy_linear(faulty, linear_flow)
        second = faulty.deploy(
            linear_flow.copy("second"),
            {"src": 2, "filter": 6, "sink": 2},
            dict(first.source_rates),
        )
        faulty.fail_instances(first, "filter", 2)
        assert faulty.lost_instances(second) == {}
        faulty.stop(first)
        faulty.stop(second)

    def test_stop_clears_fault_state(self, faulty, linear_flow):
        deployment = deploy_linear(faulty, linear_flow)
        faulty.fail_instances(deployment, "filter", 1)
        faulty.stop(deployment)
        assert deployment.job_id not in faulty._lost


class TestTunerRecoversFromFault:
    def test_streamtune_clears_fault_induced_backpressure(
        self, tiny_pretrained, linear_flow
    ):
        """Closed loop: fault -> backpressure -> re-tune -> clear.

        The restart performed by the first reconfiguration reschedules the
        failed instances, so recovery needs no fault-specific logic in the
        tuner — exactly how DS2-style controllers ride out TaskManager
        loss in practice.
        """
        from repro.core import StreamTuneTuner
        from repro.workloads import nexmark_query

        engine = FaultInjectingFlink(seed=23)
        query = nexmark_query("q2", "flink")
        tuner = StreamTuneTuner(engine, tiny_pretrained, seed=31)
        tuner.prepare(query)
        deployment = engine.deploy(
            query.flow,
            dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(2),
        )
        tuner.tune(deployment, query.rates_at(6))
        assert not engine.measure(deployment).has_backpressure

        # Fail instances of the busiest non-source operator, if it has
        # enough; otherwise the fault is unrepresentable at this scale.
        victim = max(
            (name for name in query.flow.operator_names
             if not query.flow.operator(name).is_source),
            key=lambda name: deployment.parallelisms[name],
        )
        if deployment.parallelisms[victim] < 2:
            pytest.skip("deployment too small to lose an instance")
        engine.fail_instances(deployment, victim, deployment.parallelisms[victim] - 1)
        result = tuner.tune(deployment, query.rates_at(6))
        assert result.steps
        assert not engine.measure(deployment).has_backpressure
        engine.stop(deployment)
