"""Property-based tests for the minimum-parallelism search.

For any *monotone* bottleneck predicate (bottleneck at low degrees, safe
from some threshold on), :func:`min_feasible_parallelism` must return the
exact threshold — the true minimum feasible degree.  For non-monotone
predictors the result must be rejected under ``strict=True`` and handled
deterministically otherwise.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.search import feasibility_profile, min_feasible_parallelism


def _identity_normalize(p: int) -> float:
    return float(p)


class ArrayPredictor:
    """A predictor whose verdicts are read off a fixed boolean array.

    Row ``i`` of the probe matrix corresponds to parallelism ``i + 1``
    because the search probes degrees in ascending order with the
    (normalised) degree in the last column; the stub looks the verdict up
    through that column, so it behaves identically however the search
    chooses to batch its probes.
    """

    def __init__(self, bottleneck: np.ndarray) -> None:
        self.bottleneck = np.asarray(bottleneck, dtype=bool)

    def _verdicts(self, features: np.ndarray) -> np.ndarray:
        degrees = features[:, -1].astype(int)
        return self.bottleneck[degrees - 1]

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._verdicts(features).astype(np.int64)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return np.where(self._verdicts(features), 0.9, 0.1)


def _monotone_array(p_max: int, threshold: int) -> np.ndarray:
    """Bottleneck below ``threshold``, feasible from it on (1-indexed)."""
    degrees = np.arange(1, p_max + 1)
    return degrees < threshold


@given(
    p_max=st.integers(min_value=1, max_value=120),
    data=st.data(),
)
@settings(max_examples=200, deadline=None)
def test_monotone_predictor_returns_true_minimum(p_max, data):
    threshold = data.draw(st.integers(min_value=1, max_value=p_max + 1))
    model = ArrayPredictor(_monotone_array(p_max, threshold))
    result = min_feasible_parallelism(
        model, np.zeros(3), p_max, _identity_normalize
    )
    expected = min(threshold, p_max)  # all-bottleneck arrays cap at p_max
    assert result == expected
    # strict mode accepts every monotone predicate
    assert (
        min_feasible_parallelism(
            model, np.zeros(3), p_max, _identity_normalize, strict=True
        )
        == expected
    )


@given(
    p_max=st.integers(min_value=1, max_value=120),
    data=st.data(),
)
@settings(max_examples=200, deadline=None)
def test_probability_threshold_path_matches_predict_path(p_max, data):
    threshold = data.draw(st.integers(min_value=1, max_value=p_max + 1))
    model = ArrayPredictor(_monotone_array(p_max, threshold))
    by_class = min_feasible_parallelism(model, np.zeros(3), p_max, _identity_normalize)
    by_probability = min_feasible_parallelism(
        model, np.zeros(3), p_max, _identity_normalize, probability_threshold=0.5
    )
    assert by_class == by_probability


@given(
    bottleneck=st.lists(st.booleans(), min_size=2, max_size=80),
)
@settings(max_examples=300, deadline=None)
def test_any_predicate_is_handled_deterministically(bottleneck):
    array = np.asarray(bottleneck, dtype=bool)
    p_max = len(array)
    model = ArrayPredictor(array)
    first = min_feasible_parallelism(model, np.zeros(2), p_max, _identity_normalize)
    second = min_feasible_parallelism(model, np.zeros(2), p_max, _identity_normalize)
    # Deterministic and in range, monotone or not.
    assert first == second
    assert 1 <= first <= p_max
    # The returned degree is never a *detectable* lie on monotone inputs;
    # on any input, returning p_max is allowed only when p_max is flagged
    # or the predicate is non-monotone.
    rising = bool(np.any(array[1:] & ~array[:-1]))
    if not rising:
        expected = p_max if array.all() else int(np.argmin(array)) + 1
        assert first == expected


@given(
    bottleneck=st.lists(st.booleans(), min_size=2, max_size=80),
)
@settings(max_examples=300, deadline=None)
def test_strict_rejects_exactly_the_non_monotone_predicates(bottleneck):
    array = np.asarray(bottleneck, dtype=bool)
    model = ArrayPredictor(array)
    rising = bool(np.any(array[1:] & ~array[:-1]))
    if rising:
        with pytest.raises(ValueError, match="not monotone"):
            min_feasible_parallelism(
                model, np.zeros(2), len(array), _identity_normalize, strict=True
            )
    else:
        result = min_feasible_parallelism(
            model, np.zeros(2), len(array), _identity_normalize, strict=True
        )
        assert 1 <= result <= len(array)


def test_invalid_p_max_rejected():
    model = ArrayPredictor(np.array([True]))
    with pytest.raises(ValueError):
        min_feasible_parallelism(model, np.zeros(2), 0, _identity_normalize)


def test_feasibility_profile_matches_predictor():
    array = _monotone_array(10, 4)
    model = ArrayPredictor(array)
    profile = feasibility_profile(model, np.zeros(2), 10, _identity_normalize)
    assert profile.shape == (10,)
    assert np.array_equal(profile >= 0.5, array)
