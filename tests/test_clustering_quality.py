"""Tests for GED-space cluster-quality diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    GEDKMeans,
    cluster_summary,
    mean_silhouette,
    silhouette_scores,
    within_cluster_dispersion,
)
from repro.dataflow.graph import LogicalDataflow
from repro.dataflow.operators import AggregateFunction, OperatorSpec, OperatorType
from repro.ged.search import GEDCache


def chain_flow(name: str, middle_types: list[OperatorType]) -> LogicalDataflow:
    flow = LogicalDataflow(name)
    middle = [
        OperatorSpec(
            name=f"op{i}",
            op_type=op_type,
            aggregate_function=(
                AggregateFunction.SUM
                if op_type
                in (OperatorType.AGGREGATE, OperatorType.WINDOW_AGGREGATE)
                else AggregateFunction.NONE
            ),
        )
        for i, op_type in enumerate(middle_types)
    ]
    flow.chain(
        OperatorSpec(name="src", op_type=OperatorType.SOURCE),
        *middle,
        OperatorSpec(name="sink", op_type=OperatorType.SINK),
    )
    flow.validate()
    return flow


@pytest.fixture()
def two_families():
    """Two structurally distinct families: short filter chains vs long
    aggregate pipelines."""
    filters = [
        chain_flow(f"filter_{i}", [OperatorType.FILTER]) for i in range(3)
    ]
    pipelines = [
        chain_flow(
            f"agg_{i}",
            [OperatorType.MAP, OperatorType.AGGREGATE, OperatorType.AGGREGATE,
             OperatorType.FLAT_MAP],
        )
        for i in range(3)
    ]
    graphs = filters + pipelines
    assignments = [0, 0, 0, 1, 1, 1]
    return graphs, assignments


class TestSilhouette:
    def test_crisp_families_score_high(self, two_families):
        graphs, assignments = two_families
        assert mean_silhouette(graphs, assignments) > 0.5

    def test_shuffled_assignments_score_lower(self, two_families):
        graphs, good = two_families
        bad = [0, 1, 0, 1, 0, 1]
        assert mean_silhouette(graphs, bad) < mean_silhouette(graphs, good)

    def test_scores_in_range(self, two_families):
        graphs, assignments = two_families
        scores = silhouette_scores(graphs, assignments)
        assert np.all(scores >= -1.0)
        assert np.all(scores <= 1.0)
        assert scores.shape == (len(graphs),)

    def test_single_cluster_scores_zero(self, two_families):
        graphs, _ = two_families
        scores = silhouette_scores(graphs, [0] * len(graphs))
        assert np.allclose(scores, 0.0)

    def test_singleton_cluster_scores_zero(self, two_families):
        graphs, _ = two_families
        assignments = [0, 0, 0, 0, 0, 1]   # one singleton
        scores = silhouette_scores(graphs, assignments)
        assert scores[-1] == 0.0

    def test_identical_graphs_in_same_cluster_score_perfect(self):
        same = [chain_flow(f"f{i}", [OperatorType.FILTER]) for i in range(2)]
        other = [
            chain_flow(
                f"g{i}",
                [OperatorType.MAP, OperatorType.AGGREGATE, OperatorType.FLAT_MAP],
            )
            for i in range(2)
        ]
        scores = silhouette_scores(same + other, [0, 0, 1, 1])
        assert np.allclose(scores, 1.0)

    def test_input_validation(self, two_families):
        graphs, _ = two_families
        with pytest.raises(ValueError):
            silhouette_scores(graphs, [0])
        with pytest.raises(ValueError):
            silhouette_scores([], [])

    def test_cache_is_reused(self, two_families):
        graphs, assignments = two_families
        cache = GEDCache()
        silhouette_scores(graphs, assignments, cache)
        first_misses = cache.misses
        silhouette_scores(graphs, assignments, cache)
        assert cache.misses == first_misses


class TestDispersion:
    def test_tight_cluster_has_low_dispersion(self, two_families):
        graphs, assignments = two_families
        centers = [graphs[0], graphs[3]]
        dispersion = within_cluster_dispersion(graphs, assignments, centers)
        assert set(dispersion) == {0, 1}
        assert all(value >= 0.0 for value in dispersion.values())

    def test_rejects_assignment_without_center(self, two_families):
        graphs, assignments = two_families
        with pytest.raises(ValueError, match="no center"):
            within_cluster_dispersion(graphs, assignments, centers=[graphs[0]])

    def test_rejects_misaligned_inputs(self, two_families):
        graphs, _ = two_families
        with pytest.raises(ValueError, match="align"):
            within_cluster_dispersion(graphs, [0], centers=[graphs[0]])


class TestClusterSummary:
    def test_one_row_per_cluster(self, two_families):
        graphs, assignments = two_families
        centers = [graphs[0], graphs[3]]
        rows = cluster_summary(graphs, assignments, centers)
        assert [row.cluster for row in rows] == [0, 1]
        assert [row.size for row in rows] == [3, 3]
        for row in rows:
            assert row.dispersion >= 0.0
            assert -1.0 <= row.silhouette <= 1.0

    def test_agrees_with_kmeans_output(self, two_families):
        graphs, _ = two_families
        result = GEDKMeans(n_clusters=2, tau=5.0, seed=3).fit(graphs)
        rows = cluster_summary(
            graphs, list(result.assignments), result.center_graphs
        )
        assert sum(row.size for row in rows) == len(graphs)
        # A clustering that recovers the two families must score well.
        sizes = sorted(row.size for row in rows)
        if sizes == [3, 3]:
            assert all(row.silhouette > 0.0 for row in rows)
