"""Tests for Algorithm 1 bottleneck identification (Flink + Timely modes)."""

from __future__ import annotations

import pytest

from repro.core.labeling import (
    CPU_THRESHOLD,
    label_operators,
    label_operators_flink,
    label_operators_timely,
)
from repro.engines.metrics import JobTelemetry, ObservedOperatorMetrics
from tests.conftest import build_diamond_flow, build_linear_flow


def metrics_for(
    name: str,
    backpressured: bool = False,
    cpu: float = 0.3,
    input_rate: float = 1000.0,
) -> ObservedOperatorMetrics:
    return ObservedOperatorMetrics(
        name=name,
        parallelism=2,
        input_rate=input_rate,
        output_rate=input_rate / 2,
        busy_ms_per_second=cpu * 1000.0,
        idle_ms_per_second=(1 - cpu) * 1000.0,
        backpressured_ms_per_second=200.0 if backpressured else 0.0,
        is_backpressured=backpressured,
    )


def telemetry_of(flow, has_bp: bool, **operator_kwargs) -> JobTelemetry:
    operators = {
        name: metrics_for(name, **operator_kwargs.get(name, {}))
        for name in flow.operator_names
    }
    return JobTelemetry(job_name=flow.name, operators=operators, has_backpressure=has_bp)


class TestFlinkLabeling:
    def test_no_backpressure_labels_all_zero(self, diamond_flow):
        telemetry = telemetry_of(diamond_flow, has_bp=False)
        labels = label_operators_flink(diamond_flow, telemetry)
        assert labels == dict.fromkeys(diamond_flow.operator_names, 0)

    def test_fig3_scenario(self, diamond_flow):
        """src backpressured; left hot (98%), right cool (15%)."""
        telemetry = telemetry_of(
            diamond_flow,
            has_bp=True,
            src={"backpressured": True},
            left={"cpu": 0.98},
            right={"cpu": 0.15},
        )
        labels = label_operators_flink(diamond_flow, telemetry)
        assert labels["left"] == 1      # the bottleneck
        assert labels["right"] == 0     # examined sibling, low CPU
        assert labels["src"] == -1      # the backpressured op itself: unlabelled
        assert labels["join"] == -1     # beyond the frontier: unlabelled
        assert labels["sink"] == -1

    def test_deepest_backpressured_selected(self, linear_flow):
        """If src and filter are both flagged, only the deepest matters."""
        telemetry = telemetry_of(
            linear_flow,
            has_bp=True,
            src={"backpressured": True},
            filter={"backpressured": True, "cpu": 0.5},
            sink={"cpu": 0.95},
        )
        labels = label_operators_flink(linear_flow, telemetry)
        # filter is the deepest flagged op -> its downstream (sink) examined.
        assert labels["sink"] == 1
        assert labels["filter"] == -1
        assert labels["src"] == -1

    def test_cpu_threshold_boundary(self, linear_flow):
        telemetry = telemetry_of(
            linear_flow,
            has_bp=True,
            src={"backpressured": True},
            filter={"cpu": CPU_THRESHOLD},   # exactly at T: not above -> 0
        )
        labels = label_operators_flink(linear_flow, telemetry)
        assert labels["filter"] == 0

    def test_custom_threshold(self, linear_flow):
        telemetry = telemetry_of(
            linear_flow,
            has_bp=True,
            src={"backpressured": True},
            filter={"cpu": 0.5},
        )
        labels = label_operators_flink(linear_flow, telemetry, cpu_threshold=0.4)
        assert labels["filter"] == 1

    def test_backpressure_without_flags_labels_nothing(self, linear_flow):
        """Job-level BP with no flagged operator: all stay unlabelled."""
        telemetry = telemetry_of(linear_flow, has_bp=True)
        labels = label_operators_flink(linear_flow, telemetry)
        assert set(labels.values()) == {-1}


class TestTimelyLabeling:
    def test_no_bottleneck_all_zero(self, diamond_flow):
        telemetry = telemetry_of(diamond_flow, has_bp=False)
        labels = label_operators_timely(diamond_flow, telemetry)
        assert labels == dict.fromkeys(diamond_flow.operator_names, 0)

    def test_flagged_operator_is_the_bottleneck(self, diamond_flow):
        """Timely's 85% rule flags the slow consumer directly."""
        telemetry = telemetry_of(
            diamond_flow,
            has_bp=True,
            join={"backpressured": True},
        )
        labels = label_operators_timely(diamond_flow, telemetry)
        assert labels["join"] == 1
        assert labels["sink"] == -1    # downstream of the bottleneck: distorted
        assert labels["src"] == 0      # upstream: saw full offered rate
        assert labels["left"] == 0
        assert labels["right"] == 0

    def test_multiple_bottlenecks(self, diamond_flow):
        telemetry = telemetry_of(
            diamond_flow,
            has_bp=True,
            left={"backpressured": True},
            right={"backpressured": True},
        )
        labels = label_operators_timely(diamond_flow, telemetry)
        assert labels["left"] == 1 and labels["right"] == 1
        assert labels["src"] == 0
        assert labels["join"] == -1 and labels["sink"] == -1


class TestDispatch:
    def test_engine_dispatch(self, linear_flow):
        telemetry = telemetry_of(linear_flow, has_bp=False)
        assert label_operators(linear_flow, telemetry, "flink") == (
            label_operators_flink(linear_flow, telemetry)
        )
        assert label_operators(linear_flow, telemetry, "timely") == (
            label_operators_timely(linear_flow, telemetry)
        )


class TestEndToEndLabels:
    def test_flink_pipeline_labels_real_bottleneck(self, linear_flow):
        from repro.engines.flink import FlinkCluster

        engine = FlinkCluster(seed=3, noise_std=0.0)
        capacity = engine.perf.processing_ability(linear_flow.operator("filter"), 1)
        deployment = engine.deploy(
            linear_flow, {"src": 10, "filter": 1, "sink": 10},
            {"src": 3 * capacity},
        )
        telemetry = engine.measure(deployment)
        labels = label_operators(linear_flow, telemetry, "flink")
        assert labels["filter"] == 1

    def test_timely_pipeline_labels_real_bottleneck(self, linear_flow):
        from repro.engines.timely import TimelyCluster

        engine = TimelyCluster(seed=3, noise_std=0.0)
        capacity = engine.perf.processing_ability(linear_flow.operator("filter"), 1)
        deployment = engine.deploy(
            linear_flow, {"src": 2, "filter": 1, "sink": 4},
            {"src": 3 * capacity},
        )
        telemetry = engine.measure(deployment)
        labels = label_operators(linear_flow, telemetry, "timely")
        assert labels["filter"] == 1
        assert labels["src"] == 0
