"""Tests for the soak plane: churn schedules, invariants, the supervisor.

Covers the seeded :class:`ChurnSpec` kill schedules (coverage,
clamping, replay), :class:`RestartPolicy` backoff, the
:class:`SoakReport` verdict and deterministic view, the standing
post-episode invariants of :mod:`repro.faults.invariants`, spool
hygiene under clock skew and torn files, the retry helper's total-time
deadline, the lease-lost abandon path at N>2 workers (property test
with a hostile reclaimer), and one end-to-end supervised fleet episode.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import shutil
import tempfile
import threading
import time
from collections import Counter
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distributed import Spool, SpoolError, WorkerAgent
from repro.faults.invariants import (
    check_spool,
    compare_event_streams,
    load_event_log,
    shm_segments,
)
from repro.faults.plan import FaultError
from repro.faults.supervisor import (
    ChurnSpec,
    FleetSupervisor,
    KillTrigger,
    RestartPolicy,
    SoakReport,
)
from repro.utils.retry import with_retries
from tests.test_distributed import make_cells, tiny_plan


# ----------------------------------------------------------------------
# churn schedules
# ----------------------------------------------------------------------

class TestChurnSpec:
    def test_validation(self):
        with pytest.raises(FaultError, match="kills_per_worker"):
            ChurnSpec(kills_per_worker=-1)
        with pytest.raises(FaultError, match="max_gap_cells"):
            ChurnSpec(min_gap_cells=5, max_gap_cells=2)
        with pytest.raises(FaultError, match="seed"):
            ChurnSpec(seed="7")
        with pytest.raises(FaultError, match=">= 1 worker"):
            ChurnSpec().schedule(0, 10)

    def test_schedule_covers_every_slot_exactly(self):
        spec = ChurnSpec(kills_per_worker=3, seed=4)
        schedule = spec.schedule(4, 200)
        assert len(schedule) == 12
        per_slot = Counter(trigger.slot for trigger in schedule)
        assert per_slot == {0: 3, 1: 3, 2: 3, 3: 3}
        thresholds = [trigger.after_done for trigger in schedule]
        assert thresholds == sorted(thresholds)
        assert thresholds[0] >= spec.warmup_cells

    def test_schedule_is_seed_deterministic(self):
        spec = ChurnSpec(kills_per_worker=2, seed=9)
        assert spec.schedule(4, 100) == spec.schedule(4, 100)
        other = ChurnSpec(kills_per_worker=2, seed=10)
        assert spec.schedule(4, 100) != other.schedule(4, 100)

    def test_thresholds_clamp_below_the_final_cell(self):
        # Far more kills than cells: every trigger must still land while
        # the fleet has work left.
        schedule = ChurnSpec(kills_per_worker=5, seed=1).schedule(4, 3)
        assert all(trigger.after_done <= 2 for trigger in schedule)
        # Degenerate zero-cell plan: nothing below zero.
        schedule = ChurnSpec(kills_per_worker=1, seed=1).schedule(2, 0)
        assert all(trigger.after_done == 0 for trigger in schedule)

    def test_round_trip_and_unknown_fields(self):
        spec = ChurnSpec(kills_per_worker=1, min_gap_cells=2,
                         max_gap_cells=4, warmup_cells=3, seed=11)
        assert ChurnSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(FaultError, match="understand"):
            ChurnSpec.from_dict({"kills": 2})


class TestRestartPolicy:
    def test_backoff_doubles_to_a_cap_without_jitter(self):
        policy = RestartPolicy(backoff_base_seconds=0.05,
                               backoff_cap_seconds=0.4)
        assert [policy.delay(n) for n in range(5)] == \
            [0.05, 0.1, 0.2, 0.4, 0.4]

    def test_validation(self):
        with pytest.raises(FaultError, match="max_restarts"):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(FaultError, match="backoff"):
            RestartPolicy(backoff_base_seconds=0.0)


class TestSoakReport:
    def report(self, **overrides) -> SoakReport:
        trigger = KillTrigger(after_done=1, slot=0)
        settings = dict(
            n_cells=2, workers=2, churn=ChurnSpec(kills_per_worker=1),
            schedule=(trigger,), kills=(trigger,),
            statuses={"a": "ok", "b": "ok"}, stream_failures=[],
        )
        settings.update(overrides)
        return SoakReport(**settings)

    def test_verdict(self):
        assert self.report().ok
        assert not self.report(error="Boom: died").ok
        assert not self.report(kills=()).ok
        assert not self.report(statuses={"a": "ok", "b": "failed"}).ok
        assert not self.report(invariant_failures=["cell never done"]).ok
        assert not self.report(shm_leaked=["reprocache-x"]).ok
        # No reference run (None) is fine; recorded mismatches are not.
        assert self.report(stream_failures=None).ok
        assert not self.report(stream_failures=["payload differs"]).ok

    def test_deterministic_view_excludes_host_noise(self):
        report = self.report(restarts={0: 3}, unplanned_respawns=2,
                             swept_leases=1, wall_seconds=12.5,
                             record_path="/tmp/x.jsonl")
        view = report.deterministic_view()
        for field in ("restarts", "unplanned_respawns", "swept_leases",
                      "wall_seconds", "record_path", "reference_path"):
            assert field not in view
            assert field in report.to_dict()
        assert view["ok"] is True
        assert view["kills"] == [{"after_done": 1, "slot": 0}]


# ----------------------------------------------------------------------
# standing invariants
# ----------------------------------------------------------------------

def completed_spool(root: Path, n: int = 2) -> Spool:
    """A spool where every cell completed cleanly (status ok, ledger)."""
    spool = Spool(root, ttl_seconds=0.5).ensure()
    cells = make_cells(n)
    spool.seed(cells)
    for cell in cells:
        assert spool.claim(cell.id, "w1")
        ledger = spool.ledger_path(cell.id, "w1")
        ledger.write_text("{}\n", encoding="utf-8")
        assert spool.mark_done(cell.id, {
            "cell": cell.id, "status": "ok", "owner": "w1",
            "ledger": ledger.name,
        })
        spool.release(cell.id, "w1")
    return spool


class TestCheckSpool:
    def test_clean_episode_has_no_violations(self, tmp_path):
        spool = completed_spool(tmp_path / "spool", 2)
        assert check_spool(spool, 2) == []

    def test_violations_are_named(self, tmp_path):
        spool = completed_spool(tmp_path / "spool", 3)
        cell_ids = spool.cell_ids()
        # A cell that never completed.
        (spool.done_dir / f"{cell_ids[0]}.json").unlink()
        # A completion that was not ok.
        done = spool.done_dir / f"{cell_ids[1]}.json"
        payload = json.loads(done.read_text(encoding="utf-8"))
        done.write_text(
            json.dumps({**payload, "status": "failed"}), encoding="utf-8"
        )
        # A ledger the marker names but nobody wrote.
        done = spool.done_dir / f"{cell_ids[2]}.json"
        payload = json.loads(done.read_text(encoding="utf-8"))
        done.write_text(
            json.dumps({**payload, "ledger": "ghost.jsonl"}), encoding="utf-8"
        )
        # A lease left standing.
        assert spool.claim(cell_ids[1], "w9")
        failures = "\n".join(check_spool(spool, 4))
        assert "never completed" in failures
        assert "status 'failed'" in failures
        assert "missing ledger" in failures
        assert "left standing" in failures
        assert "expected 4" in failures


class TestCompareEventStreams:
    def finished(self, campaign: str, seq: int, backend: str,
                 value: float = 1.0) -> dict:
        return {
            "event": "CampaignFinished", "seq": seq, "campaign": campaign,
            "backend": backend, "scenario": None, "cell_key": campaign,
            "result": {"processes": [{"steps": [
                {"multiplier": value, "recommendation_seconds": seq * 0.1},
            ]}]},
        }

    def test_identical_streams_pass(self):
        reference = [self.finished("q1", 0, "sequential")]
        candidate = [self.finished("q1", 5, "distributed")]
        # recommendation_seconds differs (seq-derived) — a wall-clock
        # field, stripped before comparison.
        assert compare_event_streams(reference, candidate) == []

    def test_each_violation_is_reported(self):
        reference = [self.finished("q1", 0, "sequential"),
                     self.finished("q2", 1, "sequential")]
        candidate = [
            self.finished("q1", 3, "distributed", value=2.0),
            {"event": "CampaignFailed", "seq": 3, "campaign": "q2",
             "backend": "sequential"},
        ]
        failures = "\n".join(compare_event_streams(reference, candidate))
        assert "CampaignFailed" in failures
        assert "non-distributed backend" in failures
        assert "seq is not strictly increasing" in failures
        assert "campaign sets differ" in failures

    def test_payload_differences_are_caught(self):
        reference = [self.finished("q1", 0, "sequential")]
        candidate = [self.finished("q1", 1, "distributed", value=2.0)]
        failures = compare_event_streams(reference, candidate)
        assert failures == ["result payload differs for /q1"]


class TestShmSegments:
    def test_returns_sorted_names(self):
        segments = shm_segments()
        assert segments == sorted(segments)
        assert shm_segments(prefix="no-such-prefix-ever") == []


# ----------------------------------------------------------------------
# spool hygiene (clock skew, torn files, done-lease debris)
# ----------------------------------------------------------------------

class TestSpoolHygiene:
    def test_far_future_heartbeat_is_stale(self, tmp_path):
        # A lease mtime further ahead of our clock than any live
        # heartbeater plus skew could produce can never be refreshed —
        # it must be reclaimable, not fresh forever.
        spool = Spool(tmp_path / "spool", ttl_seconds=0.5).ensure()
        (cell,) = make_cells(1)
        spool.seed([cell])
        assert spool.claim(cell.id, "w1")
        lease = spool.leases_dir / f"{cell.id}.lease"
        skewed = time.time() + 60.0
        os.utime(lease, (skewed, skewed))
        assert spool.stale_leases() == [cell.id]
        assert not spool.has_live_activity()
        assert spool.claim(cell.id, "w2")       # steals the dead lease

    def test_small_future_skew_is_fresh(self, tmp_path):
        # Skew within one TTL is plausible (NFS server clock ahead); the
        # lease stays fresh and the claim is refused.
        spool = Spool(tmp_path / "spool", ttl_seconds=0.5).ensure()
        (cell,) = make_cells(1)
        spool.seed([cell])
        assert spool.claim(cell.id, "w1")
        lease = spool.leases_dir / f"{cell.id}.lease"
        skewed = time.time() + 0.3
        os.utime(lease, (skewed, skewed))
        assert spool.stale_leases() == []
        assert not spool.claim(cell.id, "w2")

    def test_far_future_worker_heartbeat_is_not_live(self, tmp_path):
        spool = Spool(tmp_path / "spool", ttl_seconds=0.5).ensure()
        spool.worker_heartbeat("w1")
        assert spool.live_workers() == ["w1"]
        path = spool.workers_dir / "w1.json"
        skewed = time.time() + 60.0
        os.utime(path, (skewed, skewed))
        assert spool.live_workers() == []

    def test_corrupt_cell_file_names_the_file(self, tmp_path):
        spool = Spool(tmp_path / "spool").ensure()
        (cell,) = make_cells(1)
        spool.seed([cell])
        path = spool.cells_dir / f"{cell.id}.json"
        path.write_text('{"torn', encoding="utf-8")
        with pytest.raises(SpoolError, match=str(path)):
            spool.cell(cell.id)

    def test_corrupt_done_marker_names_the_file(self, tmp_path):
        spool = completed_spool(tmp_path / "spool", 1)
        (cell_id,) = spool.cell_ids()
        path = spool.done_dir / f"{cell_id}.json"
        path.write_text('{"status": "o', encoding="utf-8")
        with pytest.raises(SpoolError, match=str(path)):
            spool.done_payload(cell_id)

    def test_sweep_removes_only_done_cell_leases(self, tmp_path):
        spool = Spool(tmp_path / "spool", ttl_seconds=0.5).ensure()
        cells = make_cells(2)
        spool.seed(cells)
        done, pending = cells
        # SIGKILL between mark_done and release: done marker present,
        # lease left behind.
        assert spool.claim(done.id, "w1")
        assert spool.mark_done(done.id, {"cell": done.id, "status": "ok"})
        assert spool.claim(pending.id, "w2")
        assert spool.sweep_done_leases() == [done.id]
        assert spool.leases() == [pending.id]
        assert spool.sweep_done_leases() == []      # idempotent


# ----------------------------------------------------------------------
# retry deadline (total-time cap)
# ----------------------------------------------------------------------

class TestRetryDeadline:
    def test_deadline_stops_before_the_attempt_budget(self):
        clock = {"now": 0.0}
        sleeps = []

        def sleep(delay):
            sleeps.append(delay)
            clock["now"] += delay

        calls = []

        def always_fails():
            calls.append(1)
            raise OSError("transient")

        with pytest.raises(OSError):
            with_retries(
                always_fails,
                retryable=(OSError,),
                attempts=50,
                base=0.1, jitter=0.0,
                deadline_seconds=1.0,
                clock=lambda: clock["now"],
                sleep=sleep,
            )
        # 0.1 + 0.2 + 0.4 = 0.7; the next 0.8 sleep would end past the
        # 1.0s deadline, so the error propagates after 4 attempts — far
        # short of the 50 the attempt budget alone would allow.
        assert len(calls) == 4
        assert sum(sleeps) == pytest.approx(0.7)

    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError, match="deadline_seconds"):
            with_retries(
                lambda: None, retryable=(OSError,), deadline_seconds=0.0
            )


# ----------------------------------------------------------------------
# lease-lost abandonment at N>2 (the hostile-reclaimer property)
# ----------------------------------------------------------------------

class TestLeaseLostAbandonment:
    @settings(
        max_examples=3, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_hostile_reclaims_never_break_publish_once(self, seed):
        """Three racing agents plus a reclaimer that force-steals live
        leases: every cell still completes exactly once with status ok,
        robbed attempts abandon cleanly, and no lease survives."""
        root = Path(tempfile.mkdtemp(prefix="repro-reclaim-"))
        try:
            spool = Spool(root / "spool", ttl_seconds=5.0).ensure()
            cells = make_cells(4)
            spool.seed(cells)
            agents = [
                WorkerAgent(
                    spool, worker_id=f"agent-{index}", poll_seconds=0.01,
                    exit_when_done=True, fsync=False,
                    heartbeat_seconds=0.02,
                )
                for index in range(3)
            ]
            rng = random.Random(seed)
            stop = threading.Event()

            def reclaim_loop():
                # Force-steal leases regardless of TTL — the worst
                # reclaimer a partitioned fleet could produce.
                while not stop.is_set() and not spool.all_done():
                    time.sleep(rng.uniform(0.01, 0.08))
                    leases = spool.leases()
                    if not leases:
                        continue
                    victim = rng.choice(leases)
                    aside = spool.leases_dir / f".stolen-{rng.random()}"
                    try:
                        os.rename(
                            spool.leases_dir / f"{victim}.lease", aside
                        )
                    except FileNotFoundError:
                        continue
                    aside.unlink(missing_ok=True)

            threads = [
                threading.Thread(target=agent.run, daemon=True)
                for agent in agents
            ]
            reclaimer = threading.Thread(target=reclaim_loop, daemon=True)
            for thread in threads:
                thread.start()
            reclaimer.start()
            for thread in threads:
                thread.join(timeout=120)
                assert not thread.is_alive(), "worker agent hung"
            stop.set()
            reclaimer.join(timeout=10)

            # Publish-once: the done markers are the single source of
            # truth, and only publishing attempts count as completions.
            assert sum(agent.n_completed for agent in agents) == len(cells)
            for cell in cells:
                payload = spool.done_payload(cell.id)
                assert payload is not None and payload["status"] == "ok"
                assert (spool.ledgers_dir / payload["ledger"]).is_file()
            # Robbed attempts abandoned cleanly rather than double-
            # publishing; debris leases (if any) are done-cell only.
            assert all(agent.n_abandoned >= 0 for agent in agents)
            spool.sweep_done_leases()
            assert check_spool(spool, len(cells)) == []
        finally:
            shutil.rmtree(root, ignore_errors=True)


# ----------------------------------------------------------------------
# the supervised fleet, end to end
# ----------------------------------------------------------------------

class TestFleetSupervisor:
    def test_needs_at_least_one_worker(self):
        with pytest.raises(FaultError, match=">= 1 worker"):
            FleetSupervisor(tiny_plan(), workers=0)

    def test_churned_episode_is_ok_and_replayable(self, tmp_path):
        plan = tiny_plan(
            queries=("q1", "q2", "q3", "q5"), backend="distributed"
        )

        def episode(tag: str):
            supervisor = FleetSupervisor(
                plan,
                workers=3,
                churn=ChurnSpec(kills_per_worker=1, seed=5),
                ttl_seconds=1.5,
                fsync=False,
                spool_dir=tmp_path / f"spool-{tag}",
            )
            return supervisor.run(
                record=tmp_path / f"events-{tag}.jsonl", reference=True
            )

        first = episode("a")
        assert first.error is None, first.error
        assert first.invariant_failures == []
        assert first.stream_failures == []
        assert first.ok, first.to_dict()
        assert first.kills == first.schedule
        assert len(first.kills) == 3
        assert set(first.statuses.values()) == {"ok"}
        assert len(first.statuses) == 4
        # The record really is a parseable event log with one finish per
        # campaign.
        records = load_event_log(first.record_path)
        finished = [r for r in records if r["event"] == "CampaignFinished"]
        assert len(finished) == 4

        second = episode("b")
        assert second.ok, second.to_dict()
        assert first.deterministic_view() == second.deterministic_view()
