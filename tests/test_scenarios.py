"""Tests for the scenario plane: trace families, specs, chaos schedules.

The contract under test: a :class:`TraceSpec` *is* its trace (equal specs
materialize bit-identically, across dict/JSON/TOML round-trips), raw rate
lists keep their pre-scenario ``cell_key`` byte-identically, and chaos
schedules validate eagerly against the engine registry's traits.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    ENGINES,
    CampaignPlan,
    ChaosSpec,
    LatencySpike,
    OperatorLoss,
    PlanError,
    ScenarioError,
    SweepPlan,
    TRACES,
    TraceSpec,
    TuningPlan,
    engine_family,
    plan_from_dict,
    save_plan,
    load_plan,
)
from repro.api.components import ENGINE_FAMILIES
from repro.scenarios import ChaosInjector
from repro.scenarios.library import BASIC_CYCLE, periodic_multipliers

#: Every non-inline family with params that exercise its seeded path.
FAMILY_CASES = [
    ("periodic", {"n_permutations": 2}, 3),
    ("diurnal", {"n_steps": 12, "jitter": 0.2}, 5),
    ("bursty", {"n_steps": 10}, 11),
    ("ramp", {"n_steps": 6, "start": 2.0, "stop": 9.0}, None),
    ("sinusoid-noise", {"n_steps": 10}, 7),
    ("adversarial", {"n_steps": 9}, 13),
]


# ----------------------------------------------------------------------
# the trace library
# ----------------------------------------------------------------------

class TestTraceFamilies:
    def test_registry_lists_every_family(self):
        names = set(TRACES.names())
        assert {
            "inline", "periodic", "diurnal", "bursty", "ramp",
            "sinusoid-noise", "adversarial",
        } <= names

    def test_sinusoid_alias_resolves(self):
        spec = TraceSpec(family="sinusoid", params={"n_steps": 4})
        assert spec.family == "sinusoid-noise"

    def test_periodic_family_matches_legacy_generator(self):
        spec = TraceSpec(family="periodic", seed=3)
        legacy = periodic_multipliers(seed=3)
        assert spec.materialize() == tuple(float(x) for x in legacy)

    def test_relocated_generator_still_importable_from_workloads(self):
        from repro.workloads import rates as workload_rates

        assert workload_rates.periodic_multipliers is periodic_multipliers
        assert workload_rates.BASIC_CYCLE == BASIC_CYCLE == (3, 7, 4, 2, 1, 10, 8, 5, 6, 9)

    @pytest.mark.parametrize("family,params,seed", FAMILY_CASES)
    def test_equal_specs_materialize_bit_identically(self, family, params, seed):
        first = TraceSpec(family=family, params=params, seed=seed)
        second = TraceSpec(family=family, params=dict(reversed(list(params.items()))), seed=seed)
        assert first == second
        assert hash(first) == hash(second)
        assert first.materialize() == second.materialize()

    @pytest.mark.parametrize("family,params,seed", FAMILY_CASES)
    def test_rates_are_positive_finite_floats(self, family, params, seed):
        rates = TraceSpec(family=family, params=params, seed=seed).materialize()
        assert rates
        assert all(isinstance(rate, float) and rate > 0 for rate in rates)

    @pytest.mark.parametrize(
        "family,params",
        [
            ("bursty", {"n_steps": 16}),
            ("adversarial", {"n_steps": 10}),
            ("diurnal", {"n_steps": 16, "jitter": 0.3}),
            ("sinusoid-noise", {"n_steps": 16}),
        ],
    )
    def test_seed_drives_the_stochastic_families(self, family, params):
        traces = {
            TraceSpec(family=family, params=params, seed=seed).materialize()
            for seed in range(6)
        }
        assert len(traces) > 1

    def test_bursty_always_contains_a_burst(self):
        # Even a seed whose draws never start a burst gets one forced
        # mid-trace: a flash-crowd trace with no crowd tests nothing.
        for seed in range(20):
            spec = TraceSpec(
                family="bursty",
                params={"n_steps": 8, "p_burst": 0.01, "spike": 9.0},
                seed=seed,
            )
            assert 9.0 in spec.materialize()

    def test_trace_length_honours_n_steps(self):
        for family, params, seed in FAMILY_CASES:
            if "n_steps" not in params:
                continue
            rates = TraceSpec(family=family, params=params, seed=seed).materialize()
            assert len(rates) == params["n_steps"]

    def test_unknown_family_is_a_scenario_error(self):
        with pytest.raises(ScenarioError, match="unknown trace family"):
            TraceSpec(family="tsunami")

    def test_unknown_param_is_a_scenario_error(self):
        with pytest.raises(ScenarioError, match="wavelength"):
            TraceSpec(family="ramp", params={"wavelength": 3})

    @pytest.mark.parametrize(
        "family,params,match",
        [
            ("ramp", {"n_steps": 0}, "n_steps"),
            ("diurnal", {"low": -1.0}, "low"),
            ("diurnal", {"low": 5.0, "high": 2.0}, "high"),
            ("bursty", {"p_burst": 1.5}, "p_burst"),
            ("sinusoid-noise", {"mean": 2.0, "amplitude": 3.0}, "amplitude"),
        ],
    )
    def test_bad_params_fail_at_materialize_with_context(self, family, params, match):
        spec = TraceSpec(family=family, params=params)
        with pytest.raises(ScenarioError, match=match):
            spec.materialize()


class TestTraceSpecRoundTrip:
    @pytest.mark.parametrize("family,params,seed", FAMILY_CASES)
    def test_dict_round_trip(self, family, params, seed):
        spec = TraceSpec(family=family, params=params, seed=seed)
        clone = TraceSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.materialize() == spec.materialize()

    @pytest.mark.parametrize("family,params,seed", FAMILY_CASES)
    def test_json_round_trip(self, family, params, seed):
        spec = TraceSpec(family=family, params=params, seed=seed)
        clone = TraceSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.materialize() == spec.materialize()

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ScenarioError, match="'flavor'"):
            TraceSpec.from_dict({"family": "ramp", "flavor": "mild"})

    def test_labels_are_unique_and_stable(self):
        specs = [TraceSpec(family=f, params=p, seed=s) for f, p, s in FAMILY_CASES]
        labels = [spec.label() for spec in specs]
        assert len(set(labels)) == len(labels)
        assert labels == [spec.label() for spec in specs]
        assert TraceSpec(family="bursty", seed=11).label().startswith("bursty#s11.")

    @given(
        n_steps=st.integers(min_value=1, max_value=40),
        start=st.floats(min_value=0.1, max_value=50, allow_nan=False),
        stop=st.floats(min_value=0.1, max_value=50, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_ramp_property_round_trip_and_bounds(self, n_steps, start, stop):
        spec = TraceSpec(
            family="ramp", params={"n_steps": n_steps, "start": start, "stop": stop}
        )
        rates = spec.materialize()
        assert len(rates) == n_steps
        assert all(rate > 0 for rate in rates)
        assert rates[0] == pytest.approx(start)
        clone = TraceSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.materialize() == rates

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_every_seed_yields_a_valid_bursty_trace(self, seed):
        spec = TraceSpec(family="bursty", params={"n_steps": 6}, seed=seed)
        rates = spec.materialize()
        assert rates == spec.materialize()
        assert len(rates) == 6
        assert all(rate > 0 for rate in rates)


# ----------------------------------------------------------------------
# plans: raw lists stay raw, specs materialize, chaos validates
# ----------------------------------------------------------------------

class TestPlansWithTraces:
    def test_raw_rate_list_cell_key_is_byte_identical_to_pre_scenario_runs(self):
        # The resume contract: ledgers recorded before the scenario plane
        # existed must keep matching.  Golden string, do not update.
        plan = CampaignPlan(
            queries=("q1",), rates=(3.0, 7.0, 4.0), engine="flink",
            tuner="streamtune", scale="smoke", seed=17,
        )
        assert plan.cell_keys() == [
            "flink:streamtune:nexmark_q1_flink:x3.0-7.0-4.0:lsvm:s17:e17"
        ]

    def test_trace_spec_in_rates_materializes(self):
        plan = TuningPlan(
            query="q1", rates={"family": "ramp", "params": {"n_steps": 4}},
            tuner="ds2", scale="smoke",
        )
        assert plan.rates == TraceSpec(
            family="ramp", params={"n_steps": 4}
        ).materialize()
        assert plan.trace == TraceSpec(family="ramp", params={"n_steps": 4})

    def test_non_finite_rates_rejected(self):
        for bad in (float("inf"), float("nan"), -1.0, 0.0):
            with pytest.raises(PlanError, match="finite and > 0"):
                TuningPlan(query="q1", rates=(3.0, bad), tuner="ds2")

    def test_trace_plan_round_trips_through_toml(self, tmp_path):
        plan = SweepPlan(
            queries=("q1",),
            tuners=("ds2",),
            engines=("flink-faulty",),
            rate_traces=(
                (3.0, 7.0),
                {"family": "bursty", "params": {"n_steps": 3}, "seed": 11},
            ),
            chaos=({}, {"operator_loss": [{"step": 1}]}),
            scale="smoke",
        )
        path = tmp_path / "matrix.toml"
        save_plan(plan, path)
        assert load_plan(path) == plan

    def test_chaos_axis_multiplies_scenarios_and_keys(self):
        plan = SweepPlan(
            queries=("q1",), tuners=("ds2",), engines=("flink-faulty",),
            rate_traces=((3.0, 7.0),),
            chaos=({}, {"operator_loss": [{"step": 1}]}),
            scale="smoke",
        )
        assert plan.n_scenarios == 2
        cells = list(plan.expand())
        labels = [plan.scenario_label(cell) for cell in cells]
        assert labels == [
            "ds2@flink-faulty/x3-7+none",
            "ds2@flink-faulty/x3-7+loss@1x1",
        ]
        assert cells[0].cell_keys()[0] + ":closs@1x1" == cells[1].cell_keys()[0]

    def test_chaos_free_sweep_labels_carry_no_suffix(self):
        plan = SweepPlan(
            queries=("q1",), tuners=("ds2",), engines=("flink",),
            rate_traces=((3.0, 7.0),), scale="smoke",
        )
        cell = next(iter(plan.expand()))
        assert plan.scenario_label(cell) == "ds2@flink/x3-7"

    def test_chaos_needs_a_capable_engine(self):
        with pytest.raises(PlanError, match="faults.*flink-faulty"):
            CampaignPlan(
                queries=("q1",), rates=(3.0, 7.0), engine="flink", tuner="ds2",
                chaos={"operator_loss": [{"step": 0}]}, scale="smoke",
            )

    def test_chaos_step_must_exist_in_the_trace(self):
        with pytest.raises(PlanError, match="step 5"):
            CampaignPlan(
                queries=("q1",), rates=(3.0, 7.0), engine="flink-faulty",
                tuner="ds2", chaos={"operator_loss": [{"step": 5}]},
                scale="smoke",
            )

    def test_noop_chaos_normalizes_to_none(self):
        plan = CampaignPlan(
            queries=("q1",), rates=(3.0, 7.0), engine="flink", tuner="ds2",
            chaos={}, scale="smoke",
        )
        assert plan.chaos is None
        assert ":c" not in plan.cell_keys()[0]

    def test_sweep_chaos_must_be_a_list(self):
        with pytest.raises(PlanError, match="list"):
            SweepPlan(
                queries=("q1",), tuners=("ds2",), engines=("flink-faulty",),
                rate_traces=((3.0, 7.0),),
                chaos={"operator_loss": [{"step": 0}]},
                scale="smoke",
            )

    def test_plan_from_dict_dispatches_sweeps_on_chaos(self):
        plan = plan_from_dict({
            "queries": ["q1"], "tuners": ["ds2"], "engines": ["flink-faulty"],
            "rate_traces": [[3.0, 7.0]],
            "chaos": [{}, {"operator_loss": [{"step": 1}]}],
            "scale": "smoke",
        })
        assert isinstance(plan, SweepPlan)


# ----------------------------------------------------------------------
# chaos specs and the injector
# ----------------------------------------------------------------------

class TestChaosSpec:
    def test_labels(self):
        assert ChaosSpec().label() == "none"
        spec = ChaosSpec(
            operator_loss=({"step": 1, "count": 2},),
            latency_spikes=({"step": 0, "seconds": 0.05},),
        )
        assert spec.label() == "loss@1x2+spike@0x0.05"
        assert spec.max_step == 1
        assert spec.required_traits() == {"faults", "paced"}

    def test_dict_round_trip(self):
        spec = ChaosSpec(
            operator_loss=(OperatorLoss(step=2, count=1, operator="sink"),),
            latency_spikes=(LatencySpike(step=0, seconds=0.1),),
        )
        assert ChaosSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"operator_loss": [{"step": -1}]}, "step"),
            ({"operator_loss": [{"step": 0, "count": 0}]}, "count"),
            ({"operator_loss": [{"count": 1}]}, "'step'"),
            ({"operator_loss": [{"step": 0, "node": "x"}]}, "'node'"),
            ({"latency_spikes": [{"step": 0, "seconds": 0.0}]}, "seconds"),
            ({"latency_spikes": "at step 3"}, "list"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ScenarioError, match=match):
            ChaosSpec(**kwargs)


class TestChaosInjector:
    def _deployed(self, parallelism=3):
        from repro.api import build_engine, resolve_query

        engine = build_engine("flink-faulty", seed=7)
        query = resolve_query("q1", "flink-faulty")
        flow = query.flow
        deployment = engine.deploy(
            flow,
            dict.fromkeys(flow.operator_names, parallelism),
            query.rates_at(3.0),
        )
        return engine, query, deployment

    def test_loss_clamps_so_one_instance_survives(self):
        engine, _, deployment = self._deployed(parallelism=3)
        injector = ChaosInjector(ChaosSpec(operator_loss=({"step": 0, "count": 99},)))
        events = injector.begin_step(engine, deployment, 0)
        assert len(events) == 1
        assert events[0].count == 2      # 3 configured, >= 1 survives
        lost = engine.lost_instances(deployment)
        assert lost[events[0].operator] == 2

    def test_off_step_injects_nothing(self):
        engine, _, deployment = self._deployed()
        injector = ChaosInjector(ChaosSpec(operator_loss=({"step": 1},)))
        assert injector.begin_step(engine, deployment, 0) == []

    def test_latency_spike_restores_on_end_step(self):
        from repro.api import build_engine, resolve_query

        engine = build_engine("flink-paced", seed=7)
        query = resolve_query("q1", "flink-paced")
        deployment = engine.deploy(
            query.flow,
            dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(3.0),
        )
        base = engine.telemetry_seconds
        injector = ChaosInjector(
            ChaosSpec(latency_spikes=({"step": 0, "seconds": 0.25},))
        )
        events = injector.begin_step(engine, deployment, 0)
        assert events[0].effect == "latency-spike"
        assert engine.telemetry_seconds == pytest.approx(base + 0.25)
        injector.end_step(engine)
        assert engine.telemetry_seconds == pytest.approx(base)


# ----------------------------------------------------------------------
# registry satellites: engine families and traits come from the registry
# ----------------------------------------------------------------------

class TestEngineFamilies:
    def test_families_derive_from_registry_attribute(self):
        for name in ENGINES.names():
            entry = ENGINES.entry(name)
            assert engine_family(name) == (entry.family or entry.name)
        assert ENGINE_FAMILIES == {
            name: engine_family(name) for name in ENGINES.names()
        }

    def test_variant_engines_keep_their_base_family(self):
        assert ENGINE_FAMILIES["flink-faulty"] == "flink"
        assert ENGINE_FAMILIES["flink-paced"] == "flink"
        assert ENGINE_FAMILIES["timely-scheduled"] == "timely"

    def test_traits_mark_chaos_capability(self):
        assert "faults" in ENGINES.entry("flink-faulty").traits
        assert "paced" in ENGINES.entry("flink-paced").traits
        assert ENGINES.entry("flink").traits == ()
