"""Tests for similarity search, caching, similarity centers and k-means."""

from __future__ import annotations

import pytest

from repro.clustering.center import appearance_counts, similarity_center
from repro.clustering.elbow import choose_k_elbow
from repro.clustering.kmeans import GEDKMeans
from repro.ged.exact import exact_ged
from repro.ged.search import GEDCache, similarity_search
from repro.workloads.nexmark import nexmark_queries
from repro.workloads.pqp import pqp_query_set


@pytest.fixture(scope="module")
def flows():
    queries = nexmark_queries("flink") + [
        q for qs in pqp_query_set().values() for q in qs
    ]
    return [q.flow for q in queries]


class TestSimilaritySearch:
    def test_matches_brute_force(self, flows):
        query = flows[0]
        dataset = flows[:20]
        expected = [
            i for i, g in enumerate(dataset) if exact_ged(query, g) <= 5.0
        ]
        assert similarity_search(query, dataset, 5.0) == expected

    def test_lsa_and_direct_agree(self, flows):
        query = flows[10]
        dataset = flows[:15]
        assert similarity_search(query, dataset, 4.0, use_lsa=True) == (
            similarity_search(query, dataset, 4.0, use_lsa=False)
        )

    def test_zero_threshold_finds_structural_twins(self, flows):
        query = flows[0]
        matches = similarity_search(query, flows, 0.0)
        for index in matches:
            assert (
                flows[index].structural_signature()
                == query.structural_signature()
            )

    def test_negative_threshold_rejected(self, flows):
        with pytest.raises(ValueError):
            similarity_search(flows[0], flows, -1.0)


class TestGEDCache:
    def test_distance_cached(self, flows):
        cache = GEDCache()
        a = cache.distance(flows[0], flows[1])
        misses = cache.misses
        b = cache.distance(flows[1], flows[0])   # symmetric lookup
        assert a == b
        assert cache.misses == misses
        assert cache.hits >= 1

    def test_within_consistent_with_distance(self, flows):
        cache = GEDCache()
        d = cache.distance(flows[2], flows[7])
        assert cache.within(flows[2], flows[7], d)
        assert not cache.within(flows[2], flows[7], d - 0.5)

    def test_pruned_verification_records_lower_bound(self, flows):
        cache = GEDCache()
        assert not cache.within(flows[0], flows[30], 0.5)
        # Re-verifying below the recorded bound is a cache hit.
        hits = cache.hits
        assert not cache.within(flows[0], flows[30], 0.25)
        assert cache.hits == hits + 1


class TestSimilarityCenter:
    def test_counts_match_definition(self, flows):
        cluster = flows[:10]
        counts = appearance_counts(cluster, tau=5.0)
        for g_index, graph in enumerate(cluster):
            expected = sum(
                1 for other in cluster if exact_ged(other, graph) <= 5.0
            )
            assert counts[g_index] == expected

    def test_center_maximises_count(self, flows):
        cluster = flows[:10]
        counts = appearance_counts(cluster, tau=5.0)
        center = similarity_center(cluster, tau=5.0)
        assert counts[center] == max(counts)

    def test_weights_shift_center(self, flows):
        # Put overwhelming weight behind the last member's neighbourhood.
        cluster = [flows[0], flows[1], flows[40], flows[41], flows[42]]
        weights = [1.0, 1.0, 100.0, 100.0, 100.0]
        weighted_center = similarity_center(cluster, tau=5.0, weights=weights)
        assert weighted_center >= 2

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            similarity_center([])

    def test_lsa_and_direct_centers_agree(self, flows):
        cluster = flows[5:20]
        assert similarity_center(cluster, use_lsa=True) == similarity_center(
            cluster, use_lsa=False
        )


class TestGEDKMeans:
    def test_assignments_cover_all_inputs(self, flows):
        result = GEDKMeans(3, seed=2).fit(flows[:30])
        assert len(result.assignments) == 30
        assert set(result.assignments) <= set(range(result.n_clusters))

    def test_members_partition(self, flows):
        result = GEDKMeans(3, seed=2).fit(flows[:30])
        all_members = sorted(
            i for c in range(result.n_clusters) for i in result.members(c)
        )
        assert all_members == list(range(30))

    def test_deterministic_with_seed(self, flows):
        a = GEDKMeans(3, seed=9).fit(flows[:25])
        b = GEDKMeans(3, seed=9).fit(flows[:25])
        assert a.assignments == b.assignments

    def test_assigned_center_is_nearest(self, flows):
        result = GEDKMeans(3, seed=2).fit(flows[:30])
        cache = result.cache
        for index, cluster in enumerate(result.assignments):
            own = cache.distance(flows[index], result.center_graphs[cluster])
            for other in range(result.n_clusters):
                assert own <= cache.distance(
                    flows[index], result.center_graphs[other]
                ) + 1e-9

    def test_predict_matches_training_assignment_for_duplicates(self, flows):
        result = GEDKMeans(3, seed=2).fit(flows[:30])
        # A structural twin of a training graph lands in its cluster.
        predicted = result.predict(flows[0].copy("twin"))
        assert predicted == result.assignments[0]

    def test_single_cluster_bypass(self, flows):
        result = GEDKMeans(1, seed=2).fit(flows[:20])
        assert result.n_clusters == 1
        assert set(result.assignments) == {0}

    def test_k_larger_than_uniques_shrinks(self, flows):
        result = GEDKMeans(10, seed=2).fit(flows[:4])
        assert result.n_clusters <= 4

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GEDKMeans(0)
        with pytest.raises(ValueError):
            GEDKMeans(2, max_iterations=0)
        with pytest.raises(ValueError):
            GEDKMeans(2, n_init=0)
        with pytest.raises(ValueError):
            GEDKMeans(2).fit([])

    def test_duplicates_share_assignment(self, flows):
        doubled = flows[:10] + [f.copy(f"{f.name}_dup") for f in flows[:10]]
        result = GEDKMeans(3, seed=2).fit(doubled)
        for i in range(10):
            assert result.assignments[i] == result.assignments[10 + i]


class TestElbow:
    def test_returns_valid_k(self, flows):
        k, curve = choose_k_elbow(flows[:25], k_max=5, seed=3)
        assert 1 <= k <= 5
        assert len(curve) == 5

    def test_invalid_k_max(self, flows):
        with pytest.raises(ValueError):
            choose_k_elbow(flows[:5], k_max=0)

    def test_handles_tiny_datasets(self, flows):
        k, curve = choose_k_elbow(flows[:2], k_max=6, seed=3)
        assert k <= 2
