"""Extra property-based and failure-injection tests.

Deeper hypothesis coverage of the invariants the tuning stack rests on:
flow-solver conservation laws, GED metric axioms against the full corpus,
model monotonicity under adversarial datasets, and engine behaviour at
noise extremes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.labeling import label_operators
from repro.dataflow.graph import LogicalDataflow
from repro.dataflow.operators import OperatorSpec, OperatorType
from repro.engines.flink import FlinkCluster
from repro.engines.flow import solve_flow
from repro.engines.perf import PerformanceModel
from repro.models import MonotonicGBDT, MonotonicSVM, check_monotonicity
from tests.conftest import build_diamond_flow, build_linear_flow

PERF = PerformanceModel()


class TestFlowConservation:
    @settings(max_examples=40, deadline=None)
    @given(
        rate=st.floats(min_value=1e3, max_value=2e7),
        p_left=st.integers(min_value=1, max_value=40),
        p_right=st.integers(min_value=1, max_value=40),
        p_join=st.integers(min_value=1, max_value=40),
    )
    def test_served_rates_conserve_selectivity(self, rate, p_left, p_right, p_join):
        flow = build_diamond_flow()
        parallelisms = {
            "src": 10, "left": p_left, "right": p_right,
            "join": p_join, "sink": 30,
        }
        result = solve_flow(flow, parallelisms, {"src": rate}, PERF)
        for name in flow.operator_names:
            spec = flow.operator(name)
            op = result[name]
            assert op.served_out == pytest.approx(spec.selectivity * op.served_in)
            # Flow in equals the sum of upstream flows out.
            upstream = flow.upstream(name)
            if upstream:
                assert op.served_in == pytest.approx(
                    sum(result[u].served_out for u in upstream)
                )

    @settings(max_examples=40, deadline=None)
    @given(rate=st.floats(min_value=1e3, max_value=2e7))
    def test_served_never_exceeds_demand_or_capacity(self, rate):
        flow = build_linear_flow()
        result = solve_flow(
            flow, {"src": 3, "filter": 2, "sink": 5}, {"src": rate}, PERF
        )
        for op in result.operators.values():
            assert op.served_in <= op.demand_in * (1 + 1e-9)
            assert op.served_in <= op.capacity * (1 + 1e-6)

    @settings(max_examples=30, deadline=None)
    @given(rate=st.floats(min_value=1e3, max_value=2e7))
    def test_binding_bottleneck_runs_at_capacity(self, rate):
        flow = build_linear_flow()
        result = solve_flow(
            flow, {"src": 3, "filter": 1, "sink": 5}, {"src": rate}, PERF
        )
        for name in result.saturated:
            op = result[name]
            assert op.served_in == pytest.approx(op.capacity, rel=1e-6)
            assert op.busy_fraction == 1.0


class TestLabelingInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        rate=st.floats(min_value=1e4, max_value=1e7),
        p=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_labels_always_well_formed(self, rate, p, seed):
        flow = build_diamond_flow()
        engine = FlinkCluster(seed=seed)
        deployment = engine.deploy(
            flow, dict.fromkeys(flow.operator_names, p), {"src": rate}
        )
        telemetry = engine.measure(deployment)
        labels = label_operators(flow, telemetry, "flink")
        assert set(labels) == set(flow.operator_names)
        assert set(labels.values()) <= {-1, 0, 1}
        if not telemetry.has_backpressure:
            assert set(labels.values()) == {0}

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_bottleneck_label_only_on_hot_operators(self, seed):
        flow = build_linear_flow()
        engine = FlinkCluster(seed=seed)
        capacity = engine.perf.processing_ability(flow.operator("filter"), 1)
        deployment = engine.deploy(
            flow, {"src": 10, "filter": 1, "sink": 10}, {"src": 4 * capacity}
        )
        telemetry = engine.measure(deployment)
        labels = label_operators(flow, telemetry, "flink")
        for name, label in labels.items():
            if label == 1:
                assert telemetry[name].cpu_load > 0.6


class TestModelAdversarialMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_svm_monotone_on_label_noise(self, seed):
        """Even with contradictory labels the constraint must hold."""
        rng = np.random.default_rng(seed)
        X = rng.uniform(size=(120, 3))
        y = rng.integers(0, 2, size=120)   # pure noise labels
        model = MonotonicSVM(seed=seed, epochs=60).fit(X, y)
        assert check_monotonicity(model, X[:15]).is_monotone

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_gbdt_monotone_on_label_noise(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.uniform(size=(120, 3))
        y = rng.integers(0, 2, size=120)
        model = MonotonicGBDT(seed=seed, n_estimators=20).fit(X, y)
        assert check_monotonicity(model, X[:15]).is_monotone

    def test_svm_monotone_on_anti_monotone_data(self):
        """Labels engineered to *reward* violating the constraint."""
        rng = np.random.default_rng(3)
        X = rng.uniform(size=(300, 2))
        y = (X[:, -1] > 0.5).astype(int)   # bottleneck at HIGH parallelism
        model = MonotonicSVM(seed=3).fit(X, y)
        assert check_monotonicity(model, X[:30]).is_monotone


class TestNoiseExtremes:
    def test_zero_noise_engine_is_deterministic(self, linear_flow):
        results = []
        for _ in range(2):
            engine = FlinkCluster(seed=9, noise_std=0.0)
            deployment = engine.deploy(
                linear_flow, {"src": 2, "filter": 10, "sink": 2}, {"src": 1e6}
            )
            telemetry = engine.measure(deployment)
            results.append(telemetry["filter"].input_rate)
        assert results[0] == results[1]

    def test_heavy_noise_does_not_break_tuning(self, linear_flow):
        from repro.baselines import DS2Tuner

        engine = FlinkCluster(seed=9, noise_std=0.30)
        tuner = DS2Tuner(engine)
        deployment = engine.deploy(
            linear_flow, dict.fromkeys(linear_flow.operator_names, 1), {"src": 1e6}
        )
        result = tuner.tune(deployment, {"src": 3e6})
        assert result.steps
        assert all(
            1 <= p <= engine.max_parallelism
            for step in result.steps
            for p in step.parallelisms.values()
        )

    def test_extreme_rates_stay_finite(self, linear_flow):
        engine = FlinkCluster(seed=9)
        deployment = engine.deploy(
            linear_flow, {"src": 100, "filter": 100, "sink": 100}, {"src": 1e12}
        )
        telemetry = engine.measure(deployment)
        assert np.isfinite(telemetry.job_latency_seconds)
        for metrics in telemetry.operators.values():
            assert np.isfinite(metrics.input_rate)


class TestDegenerateGraphs:
    def test_single_source_job(self):
        flow = LogicalDataflow("lonely")
        flow.add_operator(OperatorSpec(name="src", op_type=OperatorType.SOURCE))
        flow.validate()
        engine = FlinkCluster(seed=1)
        deployment = engine.deploy(flow, {"src": 1}, {"src": 1e5})
        telemetry = engine.measure(deployment)
        assert not telemetry.has_backpressure

    def test_two_node_job_tunes(self):
        flow = LogicalDataflow("tiny")
        flow.chain(
            OperatorSpec(name="src", op_type=OperatorType.SOURCE),
            OperatorSpec(name="agg", op_type=OperatorType.FILTER, selectivity=0.1),
        )
        flow.validate()
        from repro.baselines import OracleTuner

        engine = FlinkCluster(seed=1)
        deployment = engine.deploy(flow, {"src": 1, "agg": 1}, {"src": 1e5})
        result = OracleTuner(engine).tune(deployment, {"src": 8e6})
        assert not engine.ground_truth(deployment).has_backpressure
        assert result.converged
