"""Round-trip tests for feature-encoder persistence.

A pre-trained artifact's behaviour depends on the exact feature encoder
it was trained with; loading a semantic-encoder artifact with one-hot
features would silently mis-shape every embedding.  These tests pin the
encoder round-trip introduced for the §VII extension.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import pretrain
from repro.core.persistence import (
    encoder_from_dict,
    encoder_to_dict,
    load_pretrained,
    save_pretrained,
)
from repro.dataflow.embeddings import (
    OperatorTaxonomy,
    SemanticFeatureEncoder,
    interpolate_properties,
)
from repro.dataflow.features import FeatureEncoder
from repro.dataflow.operators import OperatorSpec, OperatorType


class TestEncoderDictRoundTrip:
    def test_one_hot_round_trip(self):
        original = FeatureEncoder(max_source_rate=5e6)
        restored = encoder_from_dict(encoder_to_dict(original))
        assert type(restored) is FeatureEncoder
        assert restored.max_source_rate == original.max_source_rate
        assert restored.dimension == original.dimension

    def test_semantic_round_trip(self):
        original = SemanticFeatureEncoder(max_tuple_width=2048.0)
        restored = encoder_from_dict(encoder_to_dict(original))
        assert isinstance(restored, SemanticFeatureEncoder)
        assert restored.max_tuple_width == original.max_tuple_width
        assert restored.dimension == original.dimension

    def test_semantic_custom_kinds_survive(self):
        taxonomy = OperatorTaxonomy()
        dedupe = interpolate_properties(taxonomy, {"filter": 0.5, "aggregate": 0.5})
        taxonomy.register("dedupe", dedupe)
        original = SemanticFeatureEncoder(taxonomy=taxonomy)
        restored = encoder_from_dict(encoder_to_dict(original))
        assert "dedupe" in restored.taxonomy
        assert np.allclose(
            restored.taxonomy.vector_for("dedupe"),
            original.taxonomy.vector_for("dedupe"),
        )

    def test_encodings_identical_after_round_trip(self):
        original = SemanticFeatureEncoder()
        restored = encoder_from_dict(encoder_to_dict(original))
        spec = OperatorSpec(name="w", op_type=OperatorType.FILTER)
        assert np.allclose(
            original.encode_operator(spec, 1234.0),
            restored.encode_operator(spec, 1234.0),
        )

    def test_unknown_kind_rejected(self):
        meta = encoder_to_dict(FeatureEncoder())
        meta["kind"] = "quantum"
        with pytest.raises(ValueError, match="unknown feature-encoder kind"):
            encoder_from_dict(meta)


class TestArtifactRoundTrip:
    def test_semantic_artifact_round_trips(self, tiny_history, tmp_path):
        artifact = pretrain(
            tiny_history[:60],
            max_parallelism=100,
            n_clusters=1,
            epochs=2,
            seed=3,
            feature_encoder=SemanticFeatureEncoder(),
        )
        save_pretrained(artifact, tmp_path / "model")
        restored = load_pretrained(tmp_path / "model")
        assert isinstance(restored.feature_encoder, SemanticFeatureEncoder)
        assert (
            restored.feature_encoder.dimension == artifact.feature_encoder.dimension
        )
        # The restored encoder must produce embeddings the restored GNN
        # accepts (input dimension agreement).
        record = tiny_history[0]
        sample = restored.sample_for(record)
        probabilities = restored.encoders[0].predict_probabilities(sample)
        assert probabilities.shape == (sample.n_nodes,)

    def test_legacy_artifact_defaults_to_one_hot(self, tiny_history, tmp_path):
        import json

        artifact = pretrain(
            tiny_history[:60], max_parallelism=100, n_clusters=1, epochs=2, seed=3
        )
        save_pretrained(artifact, tmp_path / "model")
        meta_path = tmp_path / "model" / "meta.json"
        meta = json.loads(meta_path.read_text())
        del meta["feature_encoder"]          # simulate a pre-extension artifact
        meta_path.write_text(json.dumps(meta))
        restored = load_pretrained(tmp_path / "model")
        assert type(restored.feature_encoder) is FeatureEncoder
