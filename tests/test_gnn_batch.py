"""Batched GNN inference: block-diagonal packing and grid probing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.finetune import build_warmup_dataset, distill_rows
from repro.dataflow.features import FeatureEncoder
from repro.gnn.batch import encode_samples, merge_samples
from repro.gnn.data import build_sample
from repro.gnn.model import BottleneckGNN, EncoderConfig
from tests.conftest import build_diamond_flow, build_linear_flow, build_window_flow


@pytest.fixture(scope="module")
def encoder_setup():
    feature_encoder = FeatureEncoder()
    flows = [build_linear_flow(), build_diamond_flow(), build_window_flow()]
    samples = []
    for flow in flows:
        rates = {source: 1000.0 for source in flow.sources()}
        samples.append(
            build_sample(
                flow,
                rates,
                dict.fromkeys(flow.operator_names, 2),
                labels={},
                encoder=feature_encoder,
                max_parallelism=100,
            )
        )
    config = EncoderConfig(input_dim=samples[0].features.shape[1], seed=3)
    return BottleneckGNN(config), samples


class TestMergeSamples:
    def test_offsets_and_shapes(self, encoder_setup):
        _, samples = encoder_setup
        batch = merge_samples(samples)
        total = sum(sample.n_nodes for sample in samples)
        assert batch.merged.n_nodes == total
        assert batch.offsets == [0, 3, 8, 11]
        assert batch.merged.agg_in.shape == (total, total)

    def test_block_diagonal_no_cross_edges(self, encoder_setup):
        _, samples = encoder_setup
        batch = merge_samples(samples)
        agg = batch.merged.agg_in + batch.merged.agg_out
        for i, start in enumerate(batch.offsets[:-1]):
            stop = batch.offsets[i + 1]
            outside = agg[start:stop, :].copy()
            outside[:, start:stop] = 0.0
            assert not outside.any()

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            merge_samples([])


class TestEncodeSamples:
    def test_matches_per_sample_encoding(self, encoder_setup):
        model, samples = encoder_setup
        batched = encode_samples(model, samples)
        for sample, block in zip(samples, batched):
            solo = model.encode(sample, parallelism_aware=False)
            assert block.shape == solo.shape
            np.testing.assert_allclose(block, solo, rtol=1e-10, atol=1e-12)

    def test_respects_max_batch_nodes(self, encoder_setup):
        model, samples = encoder_setup
        # Forcing one sample per batch degenerates to the per-sample path.
        solo_batches = encode_samples(model, samples, max_batch_nodes=1)
        for sample, block in zip(samples, solo_batches):
            np.testing.assert_array_equal(
                block, model.encode(sample, parallelism_aware=False)
            )
        with pytest.raises(ValueError):
            encode_samples(model, samples, max_batch_nodes=0)


class TestGridProbing:
    def test_grid_matches_per_degree_forwards(self, encoder_setup):
        model, samples = encoder_setup
        sample = samples[1]
        p_norms = np.array([0.01, 0.05, 0.2, 0.6, 1.0])
        grid = model.predict_probabilities_grid(sample, p_norms)
        assert grid.shape == (len(p_norms), sample.n_nodes)
        for row, p_norm in zip(grid, p_norms):
            sample.parallelism = np.full(sample.n_nodes, p_norm)
            reference = model.predict_probabilities(sample, parallelism_aware=True)
            np.testing.assert_array_equal(row, reference)

    def test_fuse_per_step_fallback(self, encoder_setup):
        _, samples = encoder_setup
        sample = samples[0]
        config = EncoderConfig(
            input_dim=sample.features.shape[1], fuse_per_step=True, seed=5
        )
        model = BottleneckGNN(config)
        p_norms = np.array([0.1, 0.5])
        grid = model.predict_probabilities_grid(sample, p_norms)
        original = sample.parallelism.copy()
        for row, p_norm in zip(grid, p_norms):
            sample.parallelism = np.full(sample.n_nodes, p_norm)
            reference = model.predict_probabilities(sample, parallelism_aware=True)
            np.testing.assert_array_equal(row, reference)
        sample.parallelism = original


class TestWarmupBatchEncode:
    def test_batched_warmup_equivalent_to_sequential(self, tiny_pretrained):
        sequential = build_warmup_dataset(tiny_pretrained, 0, max_rows=80, seed=9)
        batched = build_warmup_dataset(
            tiny_pretrained, 0, max_rows=80, seed=9, batch_encode=True
        )
        assert len(batched) == len(sequential)
        assert batched.labels == sequential.labels
        np.testing.assert_allclose(
            np.stack(batched.features),
            np.stack(sequential.features),
            rtol=1e-9,
            atol=1e-11,
        )

    def test_distill_rows_unchanged_by_grid_batching(self, tiny_pretrained):
        # distill_rows now uses the one-pass grid probe; its output must be
        # exactly what the per-degree forwards produced (fuse-after-readout
        # makes the readout degree-independent).
        record = tiny_pretrained.records_by_cluster[0][0]
        encoder = tiny_pretrained.encoders[0]
        rows = distill_rows(
            tiny_pretrained, encoder, record.flow, record.source_rates
        )
        assert len(rows) > 0
        grid_degrees = [d for d in (1, 2, 3, 4, 6, 8, 11, 16, 22, 32, 45, 60)
                        if d <= tiny_pretrained.max_parallelism]
        n_ops = len(record.flow.operator_names)
        assert len(rows) == n_ops * len(grid_degrees)
