"""Unit and property tests for the steady-state flow solver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.engines.flow import solve_flow
from repro.engines.perf import PerformanceModel
from tests.conftest import build_diamond_flow, build_linear_flow

PERF = PerformanceModel()


def filter_capacity(flow, p: int) -> float:
    return PERF.processing_ability(flow.operator("filter"), p)


class TestDemandPropagation:
    def test_selectivity_chains(self, linear_flow):
        result = solve_flow(
            linear_flow, {"src": 1, "filter": 50, "sink": 1}, {"src": 1e5}, PERF
        )
        assert result["src"].demand_in == 1e5
        assert result["filter"].demand_in == pytest.approx(1e5)
        assert result["sink"].demand_in == pytest.approx(0.5 * 1e5)

    def test_join_sums_inputs(self, diamond_flow):
        parallelisms = dict.fromkeys(diamond_flow.operator_names, 50)
        result = solve_flow(diamond_flow, parallelisms, {"src": 1e5}, PERF)
        expected = 1e5 * 0.6 + 1e5 * 0.4
        assert result["join"].demand_in == pytest.approx(expected)

    def test_missing_source_rate_is_zero(self, linear_flow):
        result = solve_flow(
            linear_flow, dict.fromkeys(linear_flow.operator_names, 1), {}, PERF
        )
        assert result["sink"].demand_in == 0.0
        assert not result.has_backpressure

    def test_missing_parallelism_rejected(self, linear_flow):
        with pytest.raises(ValueError, match="missing parallelism"):
            solve_flow(linear_flow, {"src": 1}, {"src": 1e3}, PERF)


class TestSaturationAndBackpressure:
    def test_no_backpressure_when_capacity_sufficient(self, linear_flow):
        result = solve_flow(
            linear_flow, {"src": 1, "filter": 60, "sink": 10}, {"src": 1e6}, PERF
        )
        assert not result.has_backpressure
        assert result.theta == 1.0
        assert result.saturated == ()

    def test_undersized_filter_saturates(self, linear_flow):
        rate = 3 * filter_capacity(linear_flow, 1)
        result = solve_flow(
            linear_flow, {"src": 50, "filter": 1, "sink": 10}, {"src": rate}, PERF
        )
        assert result.has_backpressure
        assert "filter" in result.saturated
        assert result["filter"].utilization == 1.0

    def test_backpressure_propagates_to_ancestors(self, diamond_flow):
        parallelisms = dict.fromkeys(diamond_flow.operator_names, 60)
        parallelisms["join"] = 1
        rate = 40 * PERF.processing_ability(diamond_flow.operator("join"), 1)
        result = solve_flow(diamond_flow, parallelisms, {"src": rate}, PERF)
        assert "join" in result.saturated
        assert set(result.backpressured) == {"src", "left", "right"}
        assert not result["sink"].backpressured

    def test_theta_reflects_worst_bottleneck(self, linear_flow):
        capacity = filter_capacity(linear_flow, 1)
        result = solve_flow(
            linear_flow, {"src": 50, "filter": 1, "sink": 10},
            {"src": 2 * capacity}, PERF,
        )
        assert result.theta == pytest.approx(0.5, rel=1e-6)

    def test_served_rates_throttled(self, linear_flow):
        capacity = filter_capacity(linear_flow, 1)
        result = solve_flow(
            linear_flow, {"src": 50, "filter": 1, "sink": 10},
            {"src": 4 * capacity}, PERF,
        )
        assert result["filter"].served_in == pytest.approx(capacity, rel=1e-6)
        assert result["sink"].served_in == pytest.approx(0.5 * capacity, rel=1e-6)


class TestTimeFractions:
    def test_fractions_partition_unity(self, diamond_flow):
        parallelisms = dict.fromkeys(diamond_flow.operator_names, 2)
        parallelisms["join"] = 1
        rate = 30 * PERF.processing_ability(diamond_flow.operator("join"), 1)
        result = solve_flow(diamond_flow, parallelisms, {"src": rate}, PERF)
        for op_flow in result.operators.values():
            total = (
                op_flow.busy_fraction
                + op_flow.idle_fraction
                + op_flow.backpressure_fraction
            )
            assert total == pytest.approx(1.0, abs=1e-9)
            assert op_flow.busy_fraction >= 0
            assert op_flow.idle_fraction >= 0
            assert op_flow.backpressure_fraction >= 0

    def test_saturated_operator_fully_busy(self, linear_flow):
        rate = 5 * filter_capacity(linear_flow, 1)
        result = solve_flow(
            linear_flow, {"src": 50, "filter": 1, "sink": 10}, {"src": rate}, PERF
        )
        assert result["filter"].busy_fraction == 1.0
        assert result["filter"].backpressure_fraction == 0.0

    def test_backpressured_ancestor_blocked(self, linear_flow):
        rate = 5 * filter_capacity(linear_flow, 1)
        result = solve_flow(
            linear_flow, {"src": 50, "filter": 1, "sink": 10}, {"src": rate}, PERF
        )
        assert result["src"].backpressure_fraction > 0.3


class TestResultHelpers:
    def test_total_parallelism(self, linear_flow):
        result = solve_flow(
            linear_flow, {"src": 2, "filter": 3, "sink": 4}, {"src": 1e3}, PERF
        )
        assert result.total_parallelism() == 9

    def test_sink_throughput(self, linear_flow):
        result = solve_flow(
            linear_flow, {"src": 10, "filter": 60, "sink": 10}, {"src": 1e5}, PERF
        )
        assert result.sink_throughput(linear_flow) == pytest.approx(5e4, rel=1e-6)


class TestMonotonicityProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        rate=st.floats(min_value=1e4, max_value=5e6),
        p_filter=st.integers(min_value=1, max_value=50),
    )
    def test_more_parallelism_never_hurts(self, rate, p_filter):
        """Raising one operator's degree never lowers theta."""
        flow = build_linear_flow()
        base = solve_flow(
            flow, {"src": 10, "filter": p_filter, "sink": 20}, {"src": rate}, PERF
        )
        bigger = solve_flow(
            flow, {"src": 10, "filter": p_filter + 1, "sink": 20}, {"src": rate}, PERF
        )
        assert bigger.theta >= base.theta - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(rate=st.floats(min_value=1e3, max_value=1e7))
    def test_theta_bounded(self, rate):
        flow = build_diamond_flow()
        result = solve_flow(
            flow, dict.fromkeys(flow.operator_names, 3), {"src": rate}, PERF
        )
        assert 0 < result.theta <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(rate=st.floats(min_value=1e3, max_value=1e7))
    def test_saturation_consistency(self, rate):
        """Job backpressure iff some operator is saturated."""
        flow = build_diamond_flow()
        result = solve_flow(
            flow, dict.fromkeys(flow.operator_names, 2), {"src": rate}, PERF
        )
        assert result.has_backpressure == bool(result.saturated)
