"""Unit tests for the Flink and Timely engine adapters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines.base import STABILIZATION_MINUTES, EngineError
from repro.engines.flink import FlinkCluster
from repro.engines.timely import (
    STATEFUL_SPIN_INFLATION,
    STATELESS_SPIN_INFLATION,
    TimelyCluster,
    aggregate_message_rates,
)
from repro.engines.perf import PerformanceModel
from tests.conftest import build_diamond_flow, build_linear_flow


class TestLifecycle:
    def test_deploy_requires_all_parallelisms(self, flink, linear_flow):
        with pytest.raises(EngineError, match="no parallelism"):
            flink.deploy(linear_flow, {"src": 1}, {"src": 1e3})

    def test_deploy_rejects_out_of_range(self, flink, linear_flow):
        with pytest.raises(EngineError, match="outside"):
            flink.deploy(
                linear_flow, {"src": 1, "filter": 101, "sink": 1}, {"src": 1e3}
            )

    def test_deploy_rejects_non_integer(self, flink, linear_flow):
        with pytest.raises(EngineError, match="int"):
            flink.deploy(
                linear_flow, {"src": 1, "filter": 2.5, "sink": 1}, {"src": 1e3}
            )

    def test_reconfigure_counts_and_waits(self, flink, linear_flow):
        deployment = flink.deploy(
            linear_flow, {"src": 1, "filter": 1, "sink": 1}, {"src": 1e3}
        )
        flink.reconfigure(deployment, {"src": 1, "filter": 4, "sink": 1})
        flink.reconfigure(deployment, {"src": 1, "filter": 4, "sink": 1})
        assert deployment.n_reconfigurations == 2
        assert deployment.sim_minutes == pytest.approx(2 * STABILIZATION_MINUTES)
        assert len(deployment.history) == 3

    def test_set_source_rates_validates_names(self, flink, linear_flow):
        deployment = flink.deploy(
            linear_flow, {"src": 1, "filter": 1, "sink": 1}, {"src": 1e3}
        )
        with pytest.raises(EngineError, match="non-source"):
            flink.set_source_rates(deployment, {"filter": 1e3})

    def test_stopped_job_rejects_operations(self, flink, linear_flow):
        deployment = flink.deploy(
            linear_flow, {"src": 1, "filter": 1, "sink": 1}, {"src": 1e3}
        )
        flink.stop(deployment)
        with pytest.raises(EngineError, match="not running"):
            flink.measure(deployment)

    def test_max_parallelism_from_slots(self):
        assert FlinkCluster(task_managers=50, slots_per_task_manager=2).max_parallelism == 100
        assert FlinkCluster(task_managers=10, slots_per_task_manager=4).max_parallelism == 40


class TestFlinkBackpressureRule:
    def test_flags_backpressured_upstream(self, linear_flow):
        engine = FlinkCluster(seed=8)
        capacity = engine.perf.processing_ability(linear_flow.operator("filter"), 1)
        deployment = engine.deploy(
            linear_flow, {"src": 10, "filter": 1, "sink": 10},
            {"src": 3 * capacity},
        )
        telemetry = engine.measure(deployment)
        assert telemetry.has_backpressure
        assert telemetry["src"].is_backpressured       # stalled by the filter
        assert not telemetry["filter"].is_backpressured  # the bottleneck itself

    def test_no_flags_when_healthy(self, linear_flow):
        engine = FlinkCluster(seed=8)
        deployment = engine.deploy(
            linear_flow, {"src": 4, "filter": 50, "sink": 10}, {"src": 1e6}
        )
        telemetry = engine.measure(deployment)
        assert not telemetry.has_backpressure
        assert telemetry.backpressured_operators() == []

    def test_small_overload_below_ten_percent_not_flagged(self, linear_flow):
        """theta > 0.9 keeps backPressuredTime under the 10% rule."""
        engine = FlinkCluster(seed=8, noise_std=0.0)
        capacity = engine.perf.processing_ability(linear_flow.operator("filter"), 10)
        deployment = engine.deploy(
            linear_flow, {"src": 10, "filter": 10, "sink": 10},
            {"src": capacity * 1.05},
        )
        telemetry = engine.measure(deployment)
        assert telemetry.has_backpressure           # truth: saturated
        assert not telemetry["src"].is_backpressured  # but below the 10% rule


class TestTimely:
    def test_spin_inflation_by_statefulness(self, timely, diamond_flow):
        join_spec = diamond_flow.operator("join")
        filter_spec = diamond_flow.operator("left")
        assert timely.busy_inflation(join_spec) == STATEFUL_SPIN_INFLATION
        assert timely.busy_inflation(filter_spec) == STATELESS_SPIN_INFLATION

    def test_85_percent_rule_flags_bottleneck_itself(self, linear_flow):
        engine = TimelyCluster(seed=5, noise_std=0.0)
        capacity = engine.perf.processing_ability(linear_flow.operator("filter"), 1)
        deployment = engine.deploy(
            linear_flow, {"src": 10, "filter": 1, "sink": 10},
            {"src": 2 * capacity},
        )
        telemetry = engine.measure(deployment)
        assert telemetry.has_backpressure
        assert telemetry["filter"].is_backpressured   # consumes < 85% of offer

    def test_dead_band_below_85(self, linear_flow):
        engine = TimelyCluster(seed=5, noise_std=0.0)
        capacity = engine.perf.processing_ability(linear_flow.operator("filter"), 4)
        deployment = engine.deploy(
            linear_flow, {"src": 4, "filter": 4, "sink": 10},
            {"src": capacity * 1.08},
        )
        telemetry = engine.measure(deployment)
        # 1/1.08 = 0.93 > 0.85: the rule cannot see this mild overload.
        assert not telemetry.has_backpressure

    def test_message_events_cover_all_operators(self, timely, linear_flow):
        deployment = timely.deploy(
            linear_flow, {"src": 1, "filter": 2, "sink": 1}, {"src": 1e6}
        )
        events = timely.collect_message_events(deployment)
        operators = {event.operator for event in events}
        assert operators == set(linear_flow.operator_names)
        workers = {event.worker for event in events}
        assert workers == set(range(timely.workers))

    def test_aggregate_message_rates(self):
        from repro.engines.timely import MessagesEvent

        events = [
            MessagesEvent(worker=0, operator="op", records_received=500,
                          records_sent=250, interval_seconds=1.0),
            MessagesEvent(worker=1, operator="op", records_received=300,
                          records_sent=150, interval_seconds=1.0),
        ]
        rates = aggregate_message_rates(events)
        assert rates["op"] == (800.0, 400.0)

    def test_epoch_latencies_blow_up_under_saturation(self, linear_flow):
        engine = TimelyCluster(seed=5)
        capacity = engine.perf.processing_ability(linear_flow.operator("filter"), 1)
        ok = engine.deploy(
            linear_flow, {"src": 2, "filter": 10, "sink": 2}, {"src": capacity}
        )
        saturated = engine.deploy(
            linear_flow, {"src": 2, "filter": 1, "sink": 2}, {"src": 3 * capacity}
        )
        ok_latency = float(np.median(engine.sample_epoch_latencies(ok, 50)))
        bad_latency = float(np.median(engine.sample_epoch_latencies(saturated, 50)))
        assert bad_latency > 10 * ok_latency

    def test_latency_grows_with_utilisation(self, linear_flow):
        engine = TimelyCluster(seed=5)
        capacity = engine.perf.processing_ability(linear_flow.operator("filter"), 8)
        low = engine.deploy(
            linear_flow, {"src": 2, "filter": 8, "sink": 2}, {"src": 0.2 * capacity}
        )
        high = engine.deploy(
            linear_flow, {"src": 2, "filter": 8, "sink": 2}, {"src": 0.9 * capacity}
        )
        low_latency = float(np.median(engine.sample_epoch_latencies(low, 80)))
        high_latency = float(np.median(engine.sample_epoch_latencies(high, 80)))
        assert high_latency > low_latency


class TestJobLatencyMetric:
    def test_latency_has_parallelism_knee(self, linear_flow):
        """Over-provisioning raises latency (the ZeroTune training signal)."""
        engine = FlinkCluster(seed=8, noise_std=0.0)
        lean = engine.deploy(
            linear_flow, {"src": 2, "filter": 10, "sink": 2}, {"src": 1e6}
        )
        bloated = engine.deploy(
            linear_flow, {"src": 80, "filter": 90, "sink": 80}, {"src": 1e6}
        )
        assert (
            engine.measure(bloated).job_latency_seconds
            > engine.measure(lean).job_latency_seconds
        )

    def test_latency_pinned_under_backpressure(self, linear_flow):
        engine = FlinkCluster(seed=8, noise_std=0.0)
        capacity = engine.perf.processing_ability(linear_flow.operator("filter"), 1)
        deployment = engine.deploy(
            linear_flow, {"src": 10, "filter": 1, "sink": 10}, {"src": 5 * capacity}
        )
        assert engine.measure(deployment).job_latency_seconds == pytest.approx(60.0)
