"""Tests for the fine-tuning prediction models and the min-p search."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import (
    MLPClassifier,
    MonotonicGBDT,
    MonotonicSVM,
    check_monotonicity,
    make_prediction_model,
)
from repro.models.base import validate_training_inputs
from repro.models.gp import GaussianProcess1D
from repro.models.search import feasibility_profile, min_feasible_parallelism


def threshold_dataset(seed=5, n=500, dim=4):
    """Bottleneck iff p below a threshold driven by the first feature."""
    rng = np.random.default_rng(seed)
    h = rng.uniform(0, 1, size=(n, dim))
    p = rng.uniform(0, 1, size=n)
    thresholds = 0.2 + 0.5 * h[:, 0]
    y = (p < thresholds).astype(int)
    return np.column_stack([h, p]), y


class TestValidation:
    def test_shape_checks(self):
        with pytest.raises(ValueError):
            validate_training_inputs(np.ones(3), np.ones(3))
        with pytest.raises(ValueError):
            validate_training_inputs(np.ones((3, 2)), np.ones(4))
        with pytest.raises(ValueError):
            validate_training_inputs(np.empty((0, 2)), np.empty(0))

    def test_label_checks(self):
        with pytest.raises(ValueError, match="binary"):
            validate_training_inputs(np.ones((2, 2)), np.array([0, 2]))

    def test_nan_rejected(self):
        bad = np.ones((2, 2))
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            validate_training_inputs(bad, np.array([0, 1]))


class TestMonotonicSVM:
    def test_learns_threshold_rule(self):
        X, y = threshold_dataset()
        model = MonotonicSVM(seed=1).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9

    def test_w_p_nonpositive(self):
        X, y = threshold_dataset()
        model = MonotonicSVM(seed=1).fit(X, y)
        assert model.parallelism_weight <= 0.0

    def test_monotone_along_parallelism(self):
        X, y = threshold_dataset()
        model = MonotonicSVM(seed=1).fit(X, y)
        report = check_monotonicity(model, X[:50])
        assert report.is_monotone

    def test_probabilities_in_unit_interval(self):
        X, y = threshold_dataset()
        model = MonotonicSVM(seed=1).fit(X, y)
        probs = model.predict_proba(X)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_proba_increases_with_margin(self):
        X, y = threshold_dataset()
        model = MonotonicSVM(seed=1).fit(X, y)
        margins = model.decision_function(X)
        probs = model.predict_proba(X)
        order = np.argsort(margins)
        assert np.all(np.diff(probs[order]) >= -1e-12)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MonotonicSVM().predict(np.ones((1, 3)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            MonotonicSVM(c=0.0)
        with pytest.raises(ValueError):
            MonotonicSVM(gamma=-1.0)
        with pytest.raises(ValueError):
            MonotonicSVM(n_fourier_features=0)


class TestMonotonicGBDT:
    def test_learns_threshold_rule(self):
        X, y = threshold_dataset()
        model = MonotonicGBDT(seed=1).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_monotone_along_parallelism(self):
        X, y = threshold_dataset()
        model = MonotonicGBDT(seed=1).fit(X, y)
        report = check_monotonicity(model, X[:50])
        assert report.is_monotone

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_monotone_for_any_seed(self, seed):
        X, y = threshold_dataset(seed=seed, n=150)
        model = MonotonicGBDT(seed=seed, n_estimators=25).fit(X, y)
        report = check_monotonicity(
            model, X[:10], parallelism_grid=np.linspace(0, 1, 11)
        )
        assert report.is_monotone

    def test_subsample_variant_stays_monotone(self):
        X, y = threshold_dataset()
        model = MonotonicGBDT(seed=1, subsample=0.6).fit(X, y)
        assert check_monotonicity(model, X[:30]).is_monotone

    def test_single_class_degenerates_gracefully(self):
        X = np.random.default_rng(0).uniform(size=(50, 3))
        model = MonotonicGBDT(seed=1).fit(X, np.zeros(50))
        assert np.all(model.predict(X) == 0)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            MonotonicGBDT(n_estimators=0)
        with pytest.raises(ValueError):
            MonotonicGBDT(subsample=0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MonotonicGBDT().predict_proba(np.ones((1, 3)))


class TestMLP:
    def test_learns_threshold_rule(self):
        X, y = threshold_dataset()
        model = MLPClassifier(seed=1, epochs=80).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9

    def test_no_monotonicity_guarantee_enforced(self):
        """The NN trains fine but nothing constrains it (Fig. 11a point)."""
        X, y = threshold_dataset()
        model = MLPClassifier(seed=1, epochs=30).fit(X, y)
        report = check_monotonicity(model, X[:30])
        assert report.n_probes > 0   # the probe itself runs; outcome is free

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict_proba(np.ones((1, 3)))

    def test_invalid_hidden_dim(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_dim=0)


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("svm", MonotonicSVM),
        ("xgboost", MonotonicGBDT),
        ("gbdt", MonotonicGBDT),
        ("nn", MLPClassifier),
        ("mlp", MLPClassifier),
    ])
    def test_known_kinds(self, kind, cls):
        assert isinstance(make_prediction_model(kind), cls)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_prediction_model("forest")


class TestMinFeasibleSearch:
    class StepModel:
        """Bottleneck iff normalised p < cut — ideal monotone predictor."""

        def __init__(self, cut: float) -> None:
            self.cut = cut

        def predict(self, rows: np.ndarray) -> np.ndarray:
            return (rows[:, -1] < self.cut).astype(np.int64)

        def predict_proba(self, rows: np.ndarray) -> np.ndarray:
            return np.where(rows[:, -1] < self.cut, 0.9, 0.1)

    def test_binary_search_matches_linear_scan(self):
        normalize = lambda p: p / 50  # noqa: E731
        for cut in (0.0, 0.12, 0.5, 0.99):
            model = self.StepModel(cut)
            expected = next(
                (p for p in range(1, 51) if model.predict(
                    np.array([[0.0, normalize(p)]]))[0] == 0),
                50,
            )
            found = min_feasible_parallelism(model, np.zeros(1), 50, normalize)
            assert found == expected

    def test_all_bottleneck_returns_p_max(self):
        model = self.StepModel(cut=2.0)
        assert min_feasible_parallelism(model, np.zeros(1), 30, lambda p: p / 30) == 30

    def test_probability_threshold_mode(self):
        model = self.StepModel(cut=0.5)
        found = min_feasible_parallelism(
            model, np.zeros(1), 50, lambda p: p / 50, probability_threshold=0.95
        )
        assert found == 1    # 0.9 < 0.95 everywhere -> never "bottleneck"

    def test_invalid_p_max(self):
        with pytest.raises(ValueError):
            min_feasible_parallelism(self.StepModel(0.5), np.zeros(1), 0, lambda p: p)

    def test_feasibility_profile_shape(self):
        model = self.StepModel(cut=0.3)
        profile = feasibility_profile(model, np.zeros(1), 20, lambda p: p / 20)
        assert profile.shape == (20,)
        assert np.all(np.diff(profile) <= 1e-12)


class TestGaussianProcess:
    def test_interpolates_observations(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x
        gp = GaussianProcess1D(length_scale=2.0, noise_variance=1e-6).fit(x, y)
        mean, std = gp.predict(x)
        assert np.allclose(mean, y, rtol=0.05)
        assert np.all(std < 1.0)

    def test_uncertainty_grows_off_data(self):
        x = np.array([1.0, 2.0, 3.0])
        gp = GaussianProcess1D(length_scale=1.0).fit(x, np.array([1.0, 2.0, 3.0]))
        _, near = gp.predict(np.array([2.0]))
        _, far = gp.predict(np.array([30.0]))
        assert far[0] > near[0]

    def test_lcb_below_mean(self):
        x = np.array([1.0, 5.0, 9.0])
        gp = GaussianProcess1D().fit(x, np.array([2.0, 3.0, 2.5]))
        grid = np.linspace(0, 12, 20)
        mean, _ = gp.predict(grid)
        lcb = gp.lower_confidence_bound(grid, alpha=3.0)
        assert np.all(lcb <= mean + 1e-12)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess1D().predict(np.array([1.0]))

    def test_input_validation(self):
        with pytest.raises(ValueError):
            GaussianProcess1D(length_scale=0.0)
        with pytest.raises(ValueError):
            GaussianProcess1D().fit(np.array([1.0]), np.array([1.0, 2.0]))
