"""Tests for the experiment harness (scales, context, campaigns, figures)."""

from __future__ import annotations

import pytest

from repro.experiments import context
from repro.experiments.campaigns import CampaignResult, run_campaign
from repro.experiments.fig4_processing_ability import run as run_fig4
from repro.experiments.fig5_history_distribution import PAPER_DISTRIBUTION
from repro.experiments.scale import DEFAULT, PAPER, SMOKE, ExperimentScale, resolve_scale
from repro.baselines.api import TuningResult, TuningStep


class TestScale:
    def test_presets_resolvable(self):
        assert resolve_scale("smoke") is SMOKE
        assert resolve_scale("default") is DEFAULT
        assert resolve_scale("paper") is PAPER

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert resolve_scale() is SMOKE

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            resolve_scale("galactic")

    def test_paper_scale_matches_protocol(self):
        assert PAPER.n_rate_changes == 120
        assert PAPER.n_permutations == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(
                name="bad", n_history_records=5, gnn_epochs=1, n_clusters=1,
                n_permutations=1, n_rate_changes=1, queries_per_template=1,
                n_latency_epochs=1, zerotune_epochs=1, zerotune_history=1,
            )
        with pytest.raises(ValueError):
            ExperimentScale(
                name="bad", n_history_records=100, gnn_epochs=1, n_clusters=1,
                n_permutations=1, n_rate_changes=40, queries_per_template=1,
                n_latency_epochs=1, zerotune_epochs=1, zerotune_history=1,
            )


class TestContext:
    def test_engines(self):
        assert context.make_engine("flink", SMOKE).name == "flink"
        assert context.make_engine("timely", SMOKE).name == "timely"
        with pytest.raises(KeyError):
            context.make_engine("storm", SMOKE)

    def test_corpus_sizes(self):
        assert len(context.corpus("flink")) == 61
        assert len(context.corpus("timely")) == 5

    def test_evaluation_groups(self):
        flink_groups = context.evaluation_queries("flink", SMOKE)
        assert set(flink_groups) == {
            "q1", "q2", "q3", "q5", "q8", "linear", "2-way-join", "3-way-join"
        }
        timely_groups = context.evaluation_queries("timely", SMOKE)
        assert set(timely_groups) == {"q3", "q5", "q8"}

    def test_tuner_factory(self, tiny_history):
        engine = context.make_engine("flink", SMOKE)
        for method in ("DS2", "ContTune", "Oracle"):
            assert context.make_tuner(method, engine, SMOKE).name == method
        with pytest.raises(KeyError):
            context.make_tuner("magic", engine, SMOKE)

    def test_cache_is_keyed_and_clearable(self):
        context._CACHE["probe"] = 1
        assert context._cached("probe", lambda: 2) == 1
        context.clear_cache()
        assert context._cached("probe", lambda: 2) == 2
        context.clear_cache()


class TestCampaignResult:
    def _result(self, reconfigs: int, bp: int, total: int) -> TuningResult:
        result = TuningResult(query_name="q", tuner_name="t")
        for i in range(max(reconfigs, 1)):
            result.steps.append(
                TuningStep(
                    parallelisms={"op": total},
                    reconfigured=i < reconfigs,
                    backpressure_after=i < bp,
                    recommendation_seconds=0.01,
                    mean_cpu_utilisation=0.5,
                )
            )
        return result

    def test_aggregations(self):
        campaign = CampaignResult(query_name="q", method="t")
        campaign.multipliers = [3, 10, 3]
        campaign.processes = [
            self._result(2, 1, 5),
            self._result(1, 0, 9),
            self._result(1, 0, 5),
        ]
        assert campaign.average_reconfigurations == pytest.approx(4 / 3)
        assert campaign.total_backpressure_events == 1
        assert campaign.final_parallelism_at(10) == 9.0
        assert campaign.final_parallelism_at(3) == 5.0
        assert campaign.final_parallelisms_at(10) == {"op": 9}
        with pytest.raises(ValueError):
            campaign.final_parallelism_at(7)

    def test_cpu_trace_and_boundaries(self):
        campaign = CampaignResult(query_name="q", method="t")
        campaign.multipliers = [3, 10]
        campaign.processes = [self._result(2, 0, 5), self._result(1, 0, 5)]
        assert len(campaign.cpu_trace()) == 3
        assert campaign.process_boundaries() == [0, 2]


class TestRunCampaign:
    def test_oracle_micro_campaign(self):
        engine = context.make_engine("flink", SMOKE)
        tuner = context.make_tuner("Oracle", engine, SMOKE)
        query = context.evaluation_queries("flink", SMOKE)["q1"][0]
        result = run_campaign(engine, tuner, query, [3, 10, 5])
        assert result.n_processes == 3
        assert result.multipliers == [3, 10, 5]
        assert result.total_backpressure_events == 0
        assert result.final_parallelism_at(10) >= result.final_parallelism_at(5)


class TestFigureModules:
    def test_fig4_reproduces_paper_thresholds(self):
        result = run_fig4()
        assert result.filter_threshold == 14
        assert result.window_threshold == 10

    def test_fig5_paper_distribution_sums_to_100(self):
        assert sum(PAPER_DISTRIBUTION.values()) == pytest.approx(100.0, abs=0.1)
