"""Tests for warm-up datasets, distillation, and the Algorithm 2 tuner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.finetune import (
    DISTILLATION_GRID,
    PredictionDataset,
    build_warmup_dataset,
    distill_rows,
    rows_from_record,
)
from repro.core.tuner import StreamTuneTuner, _ConstantModel
from repro.engines.flink import FlinkCluster
from repro.workloads.nexmark import nexmark_query


class TestPredictionDataset:
    def test_append_and_matrices(self):
        ds = PredictionDataset()
        ds.append(np.array([1.0, 0.5]), 1)
        ds.append(np.array([0.0, 0.9]), 0)
        X, y = ds.matrices()
        assert X.shape == (2, 2)
        assert list(y) == [1, 0]

    def test_rejects_undefined_labels(self):
        ds = PredictionDataset()
        with pytest.raises(ValueError):
            ds.append(np.zeros(2), -1)

    def test_empty_matrices_rejected(self):
        with pytest.raises(ValueError):
            PredictionDataset().matrices()

    def test_extend_and_class_balance(self):
        a = PredictionDataset()
        a.append(np.zeros(2), 1)
        b = PredictionDataset()
        b.append(np.ones(2), 0)
        a.extend(b)
        assert len(a) == 2
        assert a.has_both_classes()
        assert a.n_positive == 1


class TestWarmup:
    def test_rows_from_record_uses_labelled_only(self, tiny_pretrained, tiny_history):
        record = next(r for r in tiny_history if 0 < r.n_labelled < len(r.labels))
        encoder = tiny_pretrained.encoders[
            tiny_pretrained.assign_cluster(record.flow)
        ]
        rows = rows_from_record(tiny_pretrained, encoder, record)
        assert len(rows) == record.n_labelled

    def test_feature_layout(self, tiny_pretrained, tiny_history):
        record = next(r for r in tiny_history if r.n_labelled > 0)
        encoder = tiny_pretrained.encoders[
            tiny_pretrained.assign_cluster(record.flow)
        ]
        rows = rows_from_record(tiny_pretrained, encoder, record)
        X, _ = rows.matrices()
        embedding_dim = tiny_pretrained.encoders[0].config.embedding_dim
        assert X.shape[1] == embedding_dim + 1
        assert np.all((X[:, -1] >= 0) & (X[:, -1] <= 1))

    def test_warmup_dataset_nonempty(self, tiny_pretrained):
        ds = build_warmup_dataset(tiny_pretrained, 0, max_rows=200, seed=1)
        assert len(ds) > 0

    def test_warmup_cluster_bounds(self, tiny_pretrained):
        with pytest.raises(ValueError):
            build_warmup_dataset(tiny_pretrained, 99)

    def test_distill_rows_cover_grid(self, tiny_pretrained, corpus):
        query = corpus[0]
        cluster, encoder = tiny_pretrained.encoder_for(query.flow)
        rows = distill_rows(
            tiny_pretrained, encoder, query.flow, query.rates_at(5)
        )
        valid_grid = [p for p in DISTILLATION_GRID if p <= 100]
        assert len(rows) == len(valid_grid) * len(query.flow)


class TestConstantModel:
    def test_constant_predictions(self):
        model = _ConstantModel(1.0)
        rows = np.zeros((3, 4))
        assert list(model.predict(rows)) == [1, 1, 1]
        assert list(_ConstantModel(0.0).predict(rows)) == [0, 0, 0]


class TestStreamTuneTuner:
    @pytest.fixture
    def setup(self, tiny_pretrained):
        engine = FlinkCluster(seed=31)
        tuner = StreamTuneTuner(engine, tiny_pretrained, seed=32, max_iterations=6)
        query = nexmark_query("q2", "flink")
        return engine, tuner, query

    def test_tune_produces_steps(self, setup):
        engine, tuner, query = setup
        tuner.prepare(query)
        deployment = engine.deploy(
            query.flow, dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(3),
        )
        result = tuner.tune(deployment, query.rates_at(3))
        assert result.steps
        assert result.tuner_name == "StreamTune"
        assert all(
            1 <= p <= engine.max_parallelism
            for step in result.steps
            for p in step.parallelisms.values()
        )

    def test_backpressure_eventually_cleared(self, setup):
        engine, tuner, query = setup
        tuner.prepare(query)
        deployment = engine.deploy(
            query.flow, dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(5),
        )
        tuner.tune(deployment, query.rates_at(5))
        final = engine.measure(deployment)
        assert not final.has_backpressure

    def test_feedback_accumulates(self, setup):
        engine, tuner, query = setup
        tuner.prepare(query)
        deployment = engine.deploy(
            query.flow, dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(3),
        )
        tuner.tune(deployment, query.rates_at(3))
        first = len(tuner._feedback_of[query.flow.name])
        tuner.tune(deployment, query.rates_at(7))
        assert len(tuner._feedback_of[query.flow.name]) > first

    def test_prepare_idempotent(self, setup):
        engine, tuner, query = setup
        tuner.prepare(query)
        dataset = tuner._dataset_of[query.flow.name]
        tuner.prepare(query)
        assert tuner._dataset_of[query.flow.name] is dataset

    def test_unprepared_query_lazily_initialised(self, setup, tiny_pretrained):
        engine, _, query = setup
        tuner = StreamTuneTuner(engine, tiny_pretrained, seed=33)
        deployment = engine.deploy(
            query.flow, dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(2),
        )
        result = tuner.tune(deployment, query.rates_at(2))
        assert result.steps

    def test_invalid_max_iterations(self, tiny_pretrained):
        with pytest.raises(ValueError):
            StreamTuneTuner(FlinkCluster(seed=1), tiny_pretrained, max_iterations=0)

    def test_rebalance_caps_imbalance(self, setup):
        engine, tuner, _ = setup
        features = np.random.default_rng(0).uniform(size=(100, 3))
        labels = np.zeros(100)
        labels[:2] = 1
        rebalanced_X, rebalanced_y = tuner._rebalance(features, labels, "job")
        n_pos = int(rebalanced_y.sum())
        n_neg = len(rebalanced_y) - n_pos
        assert n_neg / n_pos <= tuner.max_class_imbalance + 1


class TestTuningResultAccounting:
    def test_result_metrics(self, tiny_pretrained):
        engine = FlinkCluster(seed=41)
        tuner = StreamTuneTuner(engine, tiny_pretrained, seed=42)
        query = nexmark_query("q1", "flink")
        tuner.prepare(query)
        deployment = engine.deploy(
            query.flow, dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(4),
        )
        result = tuner.tune(deployment, query.rates_at(4))
        assert result.n_reconfigurations <= len(result.steps)
        assert result.recommendation_seconds > 0
        minutes = result.tuning_minutes(10.0)
        assert minutes >= result.n_reconfigurations * 10.0
        assert len(result.cpu_trace()) == len(result.steps)
        assert result.final_parallelisms == result.steps[-1].parallelisms
