#!/usr/bin/env python
"""Unseen operators: semantic embeddings vs one-hot features (paper §VII).

The paper notes that one-hot operator-type features "requir[e] retraining
when entirely new operators are introduced" and proposes embedding-based
representations as future work.  This example runs that study:

1. generate a Flink execution history and *remove every dataflow that
   contains an incremental join* — the held-out operator kind (rare in
   the corpus, so pre-training stays representative);
2. pre-train two global encoders on the censored history, one with the
   paper's one-hot features, one with the semantic property-vector
   features of :mod:`repro.dataflow.embeddings`;
3. score both encoders on the held-out kind's operators and compare
   bottleneck-prediction quality;
4. show how a genuinely new operator kind would be registered without any
   retraining.

Run:  python examples/unseen_operators.py
"""

from repro import FlinkCluster, HistoryGenerator, nexmark_queries, pqp_query_set, pretrain
from repro.dataflow.embeddings import (
    OperatorTaxonomy,
    SemanticFeatureEncoder,
    embedding_generalisation_gap,
    interpolate_properties,
)
from repro.dataflow.features import FeatureEncoder
from repro.experiments.ablations import (
    HELDOUT_TYPE,
    _contains_heldout,
    _heldout_scores,
    heldout_evaluation_records,
    ranking_auc,
)
from repro.experiments.scale import SMOKE


def main() -> None:
    # -- 1. history with the held-out kind censored ----------------------
    engine = FlinkCluster(seed=23)
    corpus = nexmark_queries("flink") + [
        q for qs in pqp_query_set().values() for q in qs
    ]
    records = HistoryGenerator(engine, seed=11).generate(corpus, 1200)
    train = [r for r in records if not _contains_heldout(r)]
    # Evaluation: a stress sweep over the held-out kind's degree, so both
    # label classes appear (random runs almost never bottleneck a join).
    heldout = heldout_evaluation_records(SMOKE)
    print(
        f"history: {len(records)} runs -> {len(train)} training "
        f"(no {HELDOUT_TYPE.value}); {len(heldout)} stress-sweep runs held out"
    )

    # -- 2. pre-train one encoder per feature scheme --------------------
    models = {}
    for name, feature_encoder in (
        ("one-hot", FeatureEncoder()),
        ("semantic", SemanticFeatureEncoder()),
    ):
        print(f"pre-training with {name} features ...")
        models[name] = pretrain(
            train,
            max_parallelism=engine.max_parallelism,
            n_clusters=1,
            epochs=15,
            seed=29,
            feature_encoder=feature_encoder,
        )

    # -- 3. score the held-out operator kind ----------------------------
    scores = {}
    for name, model in models.items():
        probabilities, labels = _heldout_scores(model, heldout)
        scores[name] = probabilities
    report = embedding_generalisation_gap(scores["one-hot"], scores["semantic"], labels)
    print(
        f"\nheld-out {HELDOUT_TYPE.value} operators: {int(report['n_heldout'])}\n"
        f"  one-hot  BCE: {report['one_hot_bce']:.3f}  "
        f"AUC: {ranking_auc(scores['one-hot'], labels):.3f}\n"
        f"  semantic BCE: {report['semantic_bce']:.3f}  "
        f"AUC: {ranking_auc(scores['semantic'], labels):.3f}\n"
        f"  BCE gap (positive = semantic better): {report['gap']:+.3f}\n"
        "interpretation: in this simulator Table I's shared features\n"
        "(window config, tuple widths, rates) already transfer across\n"
        "kinds, so both encoders rank the unseen kind usefully; the\n"
        "semantic taxonomy's value is the registration path below."
    )

    # -- 4. registering a brand-new operator kind, no retraining --------
    taxonomy = OperatorTaxonomy()
    dedupe = interpolate_properties(taxonomy, {"filter": 0.6, "aggregate": 0.4})
    taxonomy.register("dedupe", dedupe)
    print(
        f"\nregistered new kind 'dedupe' "
        f"(nearest known behaviour: {taxonomy.nearest_known('dedupe')}); "
        "existing encoders consume it through its property vector."
    )


if __name__ == "__main__":
    main()
