#!/usr/bin/env python
"""Quickstart: tune one streaming job with StreamTune in ~a minute.

Walks the full pipeline on a small scale:

1. build a streaming query (Nexmark Q2 on the simulated Flink cluster),
2. generate an execution history and pre-train StreamTune,
3. react to a source-rate spike with Algorithm 2 online tuning,
4. compare the recommendation against the ground-truth oracle.

Run:  python examples/quickstart.py
"""

from repro import (
    FlinkCluster,
    HistoryGenerator,
    OracleTuner,
    StreamTuneTuner,
    nexmark_queries,
    pqp_query_set,
    pretrain,
)
from repro.workloads import nexmark_query


def main() -> None:
    # -- 1. the engine and the target job ------------------------------
    engine = FlinkCluster(seed=42)
    query = nexmark_query("q2", "flink")
    print(f"target job: {query.name} ({len(query.flow)} operators)")

    # -- 2. histories + pre-training -----------------------------------
    corpus = nexmark_queries("flink") + [
        q for qs in pqp_query_set().values() for q in qs
    ]
    print("generating execution history (1500 runs) ...")
    records = HistoryGenerator(engine, seed=7).generate(corpus, 1500)
    print(f"  {sum(r.n_bottlenecks for r in records)} bottleneck labels collected")

    print("pre-training per-cluster GNN encoders ...")
    pretrained = pretrain(
        records, max_parallelism=engine.max_parallelism,
        n_clusters=3, epochs=20, seed=7,
    )
    for i, report in enumerate(pretrained.reports):
        print(f"  cluster {i}: accuracy {report.final_accuracy:.3f}")

    # -- 3. online tuning through a rate spike -------------------------
    tuner = StreamTuneTuner(engine, pretrained, model_kind="svm", seed=17)
    tuner.prepare(query)
    deployment = engine.deploy(
        query.flow,
        dict.fromkeys(query.flow.operator_names, 1),
        query.rates_at(3),
    )
    for multiplier in (3, 10, 5):
        result = tuner.tune(deployment, query.rates_at(multiplier))
        final = engine.measure(deployment)
        print(
            f"rate {multiplier:>2} x Wu: parallelisms={result.final_parallelisms} "
            f"reconfigs={result.n_reconfigurations} "
            f"backpressure={'yes' if final.has_backpressure else 'no'}"
        )

    # -- 4. sanity: how close to the hidden optimum? -------------------
    oracle = OracleTuner(engine).optimal_parallelisms(deployment, query.rates_at(5))
    print(f"oracle optimum at 5 x Wu: {oracle}")
    engine.stop(deployment)


if __name__ == "__main__":
    main()
