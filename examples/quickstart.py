#!/usr/bin/env python
"""Quickstart: tune one streaming job with StreamTune in ~a minute.

Walks the full pipeline on a small scale through the declarative
``repro.api`` session layer:

1. generate an execution history and pre-train StreamTune (offline),
2. declare what to tune as a :class:`TuningPlan` (one query, a rate
   spike trace) — the same plan could live in a JSON/TOML file,
3. execute it with a :class:`TuningSession`,
4. scale out: run a two-query fleet concurrently from a
   :class:`CampaignPlan`,
5. compare the recommendation against the ground-truth oracle.

Run:  python examples/quickstart.py
"""

from repro.api import (
    CampaignPlan,
    TuningPlan,
    TuningSession,
    build_engine,
    build_tuner,
    resolve_query,
)
from repro.core import HistoryGenerator, pretrain
from repro.workloads import nexmark_queries, pqp_query_set


def main() -> None:
    # -- 1. histories + pre-training (offline, once) -------------------
    engine = build_engine("flink", seed=42)
    corpus = nexmark_queries("flink") + [
        q for qs in pqp_query_set().values() for q in qs
    ]
    print("generating execution history (1500 runs) ...")
    records = HistoryGenerator(engine, seed=7).generate(corpus, 1500)
    print(f"  {sum(r.n_bottlenecks for r in records)} bottleneck labels collected")

    print("pre-training per-cluster GNN encoders ...")
    pretrained = pretrain(
        records, max_parallelism=engine.max_parallelism,
        n_clusters=3, epochs=20, seed=7,
    )
    for i, report in enumerate(pretrained.reports):
        print(f"  cluster {i}: accuracy {report.final_accuracy:.3f}")

    # -- 2 + 3. declare the scenario, execute it ------------------------
    # `pretrained=` injects the artifact built above; drop it (and add
    # `model="model_dir"` or `scale="smoke"`) to load or build one.
    session = TuningSession(pretrained=pretrained)
    plan = TuningPlan(query="q2", rates=(3, 10, 5), engine="flink", seed=17)
    result = session.run(plan)
    campaign = result.result
    for multiplier, process in zip(campaign.multipliers, campaign.processes):
        print(
            f"rate {multiplier:>4g} x Wu: parallelisms={process.final_parallelisms} "
            f"reconfigs={process.n_reconfigurations} "
            f"backpressure={'yes' if process.n_backpressure_events else 'no'}"
        )

    # -- 4. the same API drives a concurrent fleet ----------------------
    fleet = CampaignPlan(queries=("q1", "q5"), rates=(3, 7), backend="thread")
    fleet_result = session.run(fleet)
    for outcome in fleet_result.outcomes:
        print(
            f"fleet {outcome.spec_name}: "
            f"avg reconfigs {outcome.result.average_reconfigurations:.2f} "
            f"({outcome.wall_seconds:.1f}s)"
        )

    # -- 5. sanity: how close to the hidden optimum? --------------------
    query = resolve_query("q2", "flink")
    oracle = build_tuner("oracle", engine)
    deployment = engine.deploy(
        query.flow,
        campaign.processes[-1].final_parallelisms,
        query.rates_at(5),
    )
    optimum = oracle.optimal_parallelisms(deployment, query.rates_at(5))
    print(f"oracle optimum at 5 x Wu: {optimum}")
    engine.stop(deployment)


if __name__ == "__main__":
    main()
