#!/usr/bin/env python
"""Scheduling-aware tuning on a placement-sensitive Timely cluster (§VII).

Timely Dataflow has no built-in load balancing: where operator instances
land determines how much CPU they actually get.  This example deploys the
same Nexmark Q5 job on a two-machine topology under both placement
strategies and shows:

1. contention is real — the compact placement saturates machine 0 and
   slows every operator placed there;
2. the tuning loop compensates — under compact placement DS2-style
   feedback demands *more* parallelism for the same source rate;
3. :func:`repro.engines.choose_strategy` picks the placement with the
   least worst-case contention before deploying a recommendation.

Run:  python examples/scheduling_aware.py
"""

from repro.engines import ClusterTopology, SchedulingAwareTimely, choose_strategy
from repro.workloads import nexmark_query


def main() -> None:
    query = nexmark_query("q5", "timely")
    topology = ClusterTopology.uniform(n_machines=2, cores_each=4)
    parallelisms = dict.fromkeys(query.flow.operator_names, 4)
    rates = query.rates_at(10)

    print(f"job: {query.name} ({len(query.flow)} operators, 4 instances each)")
    print(f"topology: {len(topology.machines)} machines x 4 cores\n")

    # -- 1+2. the same deployment under both strategies -----------------
    for strategy in ("spread", "compact"):
        engine = SchedulingAwareTimely(
            topology=topology, strategy=strategy, seed=31
        )
        deployment = engine.deploy(query.flow, dict(parallelisms), rates)
        plan = engine.placement_for(deployment)
        slowdowns = plan.operator_slowdowns()
        truth = engine.ground_truth(deployment)
        print(f"strategy = {strategy}")
        print(f"  per-machine threads: "
              + ", ".join(f"{m.name}={plan.threads_on(m.name)}" for m in topology.machines))
        print(f"  placement imbalance: {plan.imbalance():.2f}")
        print(f"  worst operator slowdown: {max(slowdowns.values()):.2f}x")
        print(f"  backpressure: {'yes' if truth.has_backpressure else 'no'}\n")
        engine.stop(deployment)

    # -- 3. the scheduling-aware decision --------------------------------
    best = choose_strategy(query.flow, parallelisms, topology)
    print(f"choose_strategy() picks: {best}")

    # How much extra parallelism does the bad placement force?  Probe the
    # hottest operator (largest demand per unit of single-instance ability)
    # for its minimum feasible degree under each strategy.
    probe = SchedulingAwareTimely(topology=topology, strategy="spread", seed=31)
    probe_deployment = probe.deploy(query.flow, dict(parallelisms), rates)
    probe_truth = probe.ground_truth(probe_deployment)
    hottest = max(
        (name for name in query.flow.operator_names
         if not query.flow.operator(name).is_source),
        key=lambda name: probe_truth[name].demand_in
        / probe.perf.per_instance_rate(query.flow.operator(name)),
    )
    probe.stop(probe_deployment)
    for strategy in ("spread", "compact"):
        engine = SchedulingAwareTimely(topology=topology, strategy=strategy, seed=31)
        deployment = engine.deploy(query.flow, dict(parallelisms), rates)
        perf = engine.perf_for(deployment)
        demand = engine.ground_truth(deployment)[hottest].demand_in
        needed = perf.min_parallelism_for(
            query.flow.operator(hottest), demand, engine.max_parallelism
        )
        print(
            f"  {strategy:>8}: operator {hottest!r} needs >= {needed} instances "
            f"for demand {demand:,.0f} rec/s"
        )
        engine.stop(deployment)


if __name__ == "__main__":
    main()
