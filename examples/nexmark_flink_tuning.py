#!/usr/bin/env python
"""Scenario: a day of fluctuating traffic on Nexmark Q5 (Flink).

Drives the paper's periodic source-rate pattern (one permutation, 20
changes) through all four tuning methods on the sliding-window "hot items"
query and reports, per method:

* total reconfigurations and backpressure events,
* average and final total parallelism,
* average recommendation latency.

This mirrors the Fig. 6 / Fig. 7a / Table III protocol on a single query.

Run:  python examples/nexmark_flink_tuning.py
"""

import numpy as np

from repro import (
    ContTuneTuner,
    DS2Tuner,
    FlinkCluster,
    HistoryGenerator,
    OracleTuner,
    StreamTuneTuner,
    nexmark_queries,
    pqp_query_set,
    pretrain,
)
from repro.utils.tables import format_table
from repro.workloads import nexmark_query
from repro.workloads.rates import periodic_multipliers


def run_campaign(engine, tuner, query, multipliers):
    tuner.prepare(query)
    deployment = engine.deploy(
        query.flow,
        dict.fromkeys(query.flow.operator_names, 1),
        query.rates_at(multipliers[0]),
    )
    processes = [tuner.tune(deployment, query.rates_at(m)) for m in multipliers]
    engine.stop(deployment)
    return processes


def main() -> None:
    query = nexmark_query("q5", "flink")
    multipliers = periodic_multipliers(n_permutations=1)

    corpus = nexmark_queries("flink") + [
        q for qs in pqp_query_set().values() for q in qs
    ]
    base_engine = FlinkCluster(seed=42)
    print("pre-training StreamTune (3000 history records) ...")
    records = HistoryGenerator(base_engine, seed=7).generate(corpus, 3000)
    pretrained = pretrain(
        records, max_parallelism=base_engine.max_parallelism,
        n_clusters=4, epochs=30, seed=7,
    )

    rows = []
    for make in (
        lambda e: OracleTuner(e),
        lambda e: DS2Tuner(e),
        lambda e: ContTuneTuner(e),
        lambda e: StreamTuneTuner(e, pretrained, seed=17),
    ):
        engine = FlinkCluster(seed=42)
        tuner = make(engine)
        processes = run_campaign(engine, tuner, query, multipliers)
        totals = [p.final_total_parallelism for p in processes]
        rows.append(
            (
                tuner.name,
                f"{np.mean([p.n_reconfigurations for p in processes]):.2f}",
                sum(p.n_backpressure_events for p in processes),
                f"{np.mean(totals):.1f}",
                totals[multipliers.index(10)],
                f"{np.mean([p.recommendation_seconds for p in processes]):.3f}",
            )
        )

    print()
    print(
        format_table(
            [
                "method",
                "avg reconfigs",
                "bp events",
                "avg parallelism",
                "parallelism @10Wu",
                "avg rec time (s)",
            ],
            rows,
            title=f"Nexmark Q5 on Flink - {len(multipliers)} rate changes",
        )
    )


if __name__ == "__main__":
    main()
