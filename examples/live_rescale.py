#!/usr/bin/env python
"""Live reconfiguration vs stop-and-restart (paper §VII).

The paper's evaluation uses stop-and-restart reconfiguration with a
10-minute stabilisation wait between changes; §VII describes the live
alternative deployed at ByteDance, where "operators are assigned
parallelism dynamically through APIs, enabling the Flink JobManager to
apply changes at runtime".

This example runs the same StreamTune tuning campaign twice — once on a
stock Flink cluster (stop-and-restart) and once on a live-reconfiguration
variant — and compares the *downtime budget* each spends across a cycle
of source-rate changes.  The recommendations are identical; only the
settling accounting differs.

Run:  python examples/live_rescale.py
"""

from repro import FlinkCluster, HistoryGenerator, StreamTuneTuner, pretrain
from repro.engines.base import LIVE_SETTLING_MINUTES, STABILIZATION_MINUTES
from repro.workloads import nexmark_queries, nexmark_query, pqp_query_set


class LiveFlinkCluster(FlinkCluster):
    """A Flink cluster with the §VII operator-level rescale API enabled."""

    name = "flink-live"
    supports_live_reconfigure = True


class LiveStreamTuneTuner(StreamTuneTuner):
    """StreamTune issuing live rescales when the engine supports them."""

    name = "StreamTune-live"

    def apply(self, deployment, parallelisms) -> bool:
        if parallelisms == deployment.parallelisms:
            return False
        self.engine.live_reconfigure(deployment, parallelisms)
        return True


def build_pretrained(engine, seed: int = 7):
    corpus = nexmark_queries("flink") + [
        q for qs in pqp_query_set().values() for q in qs
    ]
    records = HistoryGenerator(engine, seed=seed).generate(corpus, 1200)
    return pretrain(
        records, max_parallelism=engine.max_parallelism,
        n_clusters=2, epochs=15, seed=seed,
    )


def run_campaign(engine, tuner_cls, pretrained, multipliers):
    query = nexmark_query("q5", "flink")
    tuner = tuner_cls(engine, pretrained, model_kind="svm", seed=17)
    tuner.prepare(query)
    deployment = engine.deploy(
        query.flow,
        dict.fromkeys(query.flow.operator_names, 1),
        query.rates_at(multipliers[0]),
    )
    total_reconfigs = 0
    for multiplier in multipliers:
        result = tuner.tune(deployment, query.rates_at(multiplier))
        total_reconfigs += result.n_reconfigurations
    downtime = deployment.sim_minutes
    engine.stop(deployment)
    return total_reconfigs, downtime


def main() -> None:
    multipliers = [3, 7, 4, 10, 5]
    print(f"campaign: Nexmark Q5 through rate multipliers {multipliers}\n")

    stock = FlinkCluster(seed=42)
    pretrained = build_pretrained(stock)
    reconfigs, downtime = run_campaign(stock, StreamTuneTuner, pretrained, multipliers)
    print(
        f"stop-and-restart: {reconfigs} reconfigurations x "
        f"{STABILIZATION_MINUTES:.0f} min wait = {downtime:.0f} simulated minutes"
    )

    live = LiveFlinkCluster(seed=42)
    live_pretrained = build_pretrained(live)
    live_reconfigs, live_downtime = run_campaign(
        live, LiveStreamTuneTuner, live_pretrained, multipliers
    )
    print(
        f"live rescale:     {live_reconfigs} reconfigurations x "
        f"{LIVE_SETTLING_MINUTES:.0f} min settle = {live_downtime:.0f} simulated minutes"
    )

    if live_downtime < downtime:
        saved = downtime - live_downtime
        print(
            f"\nlive reconfiguration saves {saved:.0f} simulated minutes "
            f"({100 * saved / downtime:.0f}% of the settling budget) on this cycle."
        )


if __name__ == "__main__":
    main()
