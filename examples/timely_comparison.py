#!/usr/bin/env python
"""Scenario: resource efficiency on Timely Dataflow (paper §V-F).

Timely workers busy-spin, so useful-time-based tuners (DS2) systematically
over-provision there, while StreamTune's rate-derived bottleneck labels are
immune.  This example tunes Nexmark Q8 (tumbling-window join) at 10 x Wu
with both methods, then compares

* the recommended parallelism (resource cost), and
* the per-epoch latency distribution (performance) under each config —

reproducing the Fig. 8 story: far fewer workers, comparable latency.

Run:  python examples/timely_comparison.py
"""

import numpy as np

from repro import (
    DS2Tuner,
    HistoryGenerator,
    StreamTuneTuner,
    TimelyCluster,
    nexmark_queries,
    pretrain,
)
from repro.utils.tables import format_table
from repro.workloads import nexmark_query


def main() -> None:
    query = nexmark_query("q8", "timely")
    print("pre-training StreamTune on Timely histories ...")
    engine = TimelyCluster(seed=42)
    records = HistoryGenerator(engine, seed=7).generate(
        nexmark_queries("timely"), 2000
    )
    pretrained = pretrain(
        records, max_parallelism=engine.max_parallelism,
        n_clusters=2, epochs=25, seed=7,
    )

    rows = []
    latencies = {}
    for make in (lambda e: DS2Tuner(e), lambda e: StreamTuneTuner(e, pretrained, seed=17)):
        cluster = TimelyCluster(seed=42)
        tuner = make(cluster)
        tuner.prepare(query)
        deployment = cluster.deploy(
            query.flow,
            dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(3),
        )
        tuner.tune(deployment, query.rates_at(3))
        result = tuner.tune(deployment, query.rates_at(10))
        sample = cluster.sample_epoch_latencies(deployment, n_epochs=300)
        latencies[tuner.name] = sample
        rows.append(
            (
                tuner.name,
                result.final_total_parallelism,
                f"{np.percentile(sample, 50):.2f}",
                f"{np.percentile(sample, 90):.2f}",
                f"{np.percentile(sample, 99):.2f}",
            )
        )
        cluster.stop(deployment)

    print()
    print(
        format_table(
            ["method", "total parallelism @10Wu", "p50 (s)", "p90 (s)", "p99 (s)"],
            rows,
            title="Nexmark Q8 on Timely Dataflow",
        )
    )
    ds2_total = rows[0][1]
    st_total = rows[1][1]
    saved = 100.0 * (1 - st_total / ds2_total)
    print(f"\nStreamTune uses {saved:.1f}% less parallelism than DS2 "
          f"(paper reports up to 83.3% on Q8).")


if __name__ == "__main__":
    main()
