#!/usr/bin/env python
"""Scenario: tuning a fleet of synthetic PQP join queries.

The PQP workload (from ZeroTune) stresses structural generalisation:
2-way and 3-way windowed joins with heterogeneous windows, selectivities
and costs.  This example

1. pre-trains StreamTune on the full corpus,
2. tunes three *different* 3-way-join queries through a rate sweep,
3. shows how the GED clustering routes each query to its encoder and how
   recommendations track each query's individual bottleneck structure.

Run:  python examples/pqp_campaign.py
"""

from repro import (
    FlinkCluster,
    HistoryGenerator,
    OracleTuner,
    StreamTuneTuner,
    nexmark_queries,
    pqp_query_set,
    pretrain,
)
from repro.utils.tables import format_table


def main() -> None:
    engine = FlinkCluster(seed=42)
    corpus = nexmark_queries("flink") + [
        q for qs in pqp_query_set().values() for q in qs
    ]
    print("pre-training on the 61-query corpus (3000 records) ...")
    records = HistoryGenerator(engine, seed=7).generate(corpus, 3000)
    pretrained = pretrain(
        records, max_parallelism=engine.max_parallelism,
        n_clusters=4, epochs=30, seed=7,
    )
    print(f"clusters: {pretrained.n_clusters}; centers: "
          f"{[g.name for g in pretrained.clustering.center_graphs]}")

    tuner = StreamTuneTuner(engine, pretrained, seed=17)
    oracle = OracleTuner(engine)
    targets = pqp_query_set()["3-way-join"][:3]

    rows = []
    for query in targets:
        cluster = pretrained.assign_cluster(query.flow)
        tuner.prepare(query)
        deployment = engine.deploy(
            query.flow,
            dict.fromkeys(query.flow.operator_names, 1),
            query.rates_at(2),
        )
        for multiplier in (2, 6, 10):
            result = tuner.tune(deployment, query.rates_at(multiplier))
            optimal = oracle.optimal_parallelisms(deployment, query.rates_at(multiplier))
            rows.append(
                (
                    query.name,
                    cluster,
                    multiplier,
                    result.final_total_parallelism,
                    sum(optimal.values()),
                    result.n_reconfigurations,
                    "yes" if result.converged else "no",
                )
            )
        engine.stop(deployment)

    print()
    print(
        format_table(
            ["query", "cluster", "rate (xWu)", "StreamTune total",
             "oracle total", "reconfigs", "converged"],
            rows,
            title="3-way-join campaign (Flink)",
        )
    )


if __name__ == "__main__":
    main()
